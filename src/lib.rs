//! # igp — Parallel Incremental Graph Partitioning Using Linear Programming
//!
//! Umbrella crate re-exporting the full reproduction of Ou & Ranka
//! (Supercomputing '94). See `README.md` for a tour of the workspace.
//!
//! * [`graph`] — CSR/dynamic graphs, incremental deltas, partitions, cut
//!   metrics (`igp-graph`).
//! * [`mesh`] — DIME-like adaptive triangular meshes (`igp-mesh`).
//! * [`lp`] — dense two-phase simplex + network-flow oracles (`igp-lp`).
//! * [`spectral`] — recursive spectral bisection baseline (`igp-spectral`).
//! * [`runtime`] — the `Executor` SPMD abstraction with two backends:
//!   the simulated-CM-5 machine and the shared-memory machine
//!   (`igp-runtime`).
//! * [`service`] — the serving layer: multi-tenant session registry,
//!   delta coalescing, policy-driven repartition triggers, the
//!   `igp-serve`/`igp-cli` TCP daemon pair, and WAL streaming
//!   replication with follower failover (`igp-service`).
//! * [`store`] — durability for the serving layer: per-session delta
//!   write-ahead log, partition+graph snapshots, crash recovery
//!   (`igp-store`).
//! * [`obs`] — observability: lock-free metrics with a Prometheus-style
//!   exposition, leveled structured logging, span timers (`igp-obs`).
//! * `core` — the four-phase incremental partitioner, sequential and
//!   parallel over either backend (`igp-core`), re-exported at the top
//!   level.
//!
//! ## Quickstart
//!
//! ```
//! use igp::{IgpConfig, IncrementalPartitioner};
//! use igp::graph::{generators, Partitioning};
//!
//! // A 16×16 grid split into 4 vertical bands.
//! let g = generators::grid(16, 16);
//! let assign = (0..256).map(|v| ((v % 16) / 4) as u32).collect();
//! let old = Partitioning::from_assignment(&g, 4, assign);
//!
//! // The application refines near one corner: 30 new vertices appear.
//! let delta = generators::localized_growth_delta(&g, 0, 30, 7);
//! let inc = delta.apply(&g);
//!
//! // Repartition incrementally instead of from scratch.
//! let igp = IncrementalPartitioner::igpr(IgpConfig::new(4));
//! let (new_part, report) = igp.repartition(&inc, &old);
//! assert!(report.balance.balanced);
//! assert!(new_part.count_imbalance() < 1.02);
//! ```

pub use igp_core::*;

/// Graph substrate (`igp-graph`).
pub use igp_graph as graph;
/// Linear programming (`igp-lp`).
pub use igp_lp as lp;
/// Adaptive meshes (`igp-mesh`).
pub use igp_mesh as mesh;
/// Readiness poller (epoll/poll), event-loop waker, worker pool (`igp-net`).
pub use igp_net as net;
/// Observability: metrics, structured logging, span timers (`igp-obs`).
pub use igp_obs as obs;
/// SPMD runtime (`igp-runtime`).
pub use igp_runtime as runtime;
/// Partitioning daemon: session registry, delta coalescing, repartition
/// policies, TCP protocol (`igp-service`).
pub use igp_service as service;
/// Spectral bisection baseline (`igp-spectral`).
pub use igp_spectral as spectral;
/// Durability: delta WAL, snapshots, crash recovery (`igp-store`).
pub use igp_store as store;
