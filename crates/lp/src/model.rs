//! LP model builder.
//!
//! Variables are non-negative reals `x_i ≥ 0`, optionally with an upper
//! bound `x_i ≤ u_i` (the paper's `l_ij ≤ λ_ij` caps). Constraints are
//! sparse rows compared against a right-hand side with `≤`, `=` or `≥`.

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective (paper's load-balance step, eq. 10).
    Minimize,
    /// Maximize the objective (paper's refinement step, eq. 14).
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// One sparse constraint row.
#[derive(Clone, Debug, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` — indices must be strictly
    /// increasing (enforced by [`LpModel`]'s adders).
    pub coeffs: Vec<(usize, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct LpModel {
    num_vars: usize,
    sense: Sense,
    objective: Vec<f64>,
    upper: Vec<Option<f64>>,
    constraints: Vec<Constraint>,
}

impl LpModel {
    /// A minimization model with `num_vars` variables (objective all-zero).
    pub fn minimize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Minimize)
    }

    /// A maximization model with `num_vars` variables.
    pub fn maximize(num_vars: usize) -> Self {
        Self::new(num_vars, Sense::Maximize)
    }

    fn new(num_vars: usize, sense: Sense) -> Self {
        LpModel {
            num_vars,
            sense,
            objective: vec![0.0; num_vars],
            upper: vec![None; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Optimization sense.
    #[inline]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients.
    #[inline]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint rows (upper bounds not included — see
    /// [`LpModel::upper_bounds`]).
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Per-variable upper bounds (`None` = unbounded above).
    #[inline]
    pub fn upper_bounds(&self) -> &[Option<f64>] {
        &self.upper
    }

    /// Number of constraint rows including materialized upper bounds —
    /// the paper's `c`.
    pub fn num_rows_expanded(&self) -> usize {
        self.constraints.len() + self.upper.iter().filter(|u| u.is_some()).count()
    }

    /// Set the objective coefficient of variable `i`.
    pub fn set_objective(&mut self, i: usize, c: f64) {
        self.objective[i] = c;
    }

    /// Set `x_i ≤ u` (`u ≥ 0`; `u = 0` fixes the variable at zero).
    pub fn set_upper_bound(&mut self, i: usize, u: f64) {
        assert!(
            u >= 0.0,
            "upper bound must be non-negative (variables are ≥ 0)"
        );
        self.upper[i] = Some(u);
    }

    fn add(&mut self, mut coeffs: Vec<(usize, f64)>, cmp: Cmp, rhs: f64) {
        coeffs.retain(|&(_, a)| a != 0.0);
        coeffs.sort_unstable_by_key(|&(i, _)| i);
        for w in coeffs.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "duplicate variable {} in constraint",
                w[0].0
            );
        }
        if let Some(&(i, _)) = coeffs.last() {
            assert!(i < self.num_vars, "variable {i} out of range");
        }
        self.constraints.push(Constraint { coeffs, cmp, rhs });
    }

    /// Add `Σ aᵢxᵢ ≤ rhs`.
    pub fn add_le(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add(coeffs, Cmp::Le, rhs);
    }

    /// Add `Σ aᵢxᵢ = rhs`.
    pub fn add_eq(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add(coeffs, Cmp::Eq, rhs);
    }

    /// Add `Σ aᵢxᵢ ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: Vec<(usize, f64)>, rhs: f64) {
        self.add(coeffs, Cmp::Ge, rhs);
    }

    /// Evaluate the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check primal feasibility of `x` within tolerance `eps`.
    /// Returns the first violation description, if any.
    pub fn check_feasible(&self, x: &[f64], eps: f64) -> Result<(), String> {
        if x.len() != self.num_vars {
            return Err(format!("solution length {} != {}", x.len(), self.num_vars));
        }
        for (i, &v) in x.iter().enumerate() {
            if v < -eps {
                return Err(format!("x[{i}] = {v} negative"));
            }
            if let Some(u) = self.upper[i] {
                if v > u + eps {
                    return Err(format!("x[{i}] = {v} exceeds upper bound {u}"));
                }
            }
        }
        for (r, c) in self.constraints.iter().enumerate() {
            let lhs: f64 = c.coeffs.iter().map(|&(i, a)| a * x[i]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + eps,
                Cmp::Eq => (lhs - c.rhs).abs() <= eps,
                Cmp::Ge => lhs >= c.rhs - eps,
            };
            if !ok {
                return Err(format!(
                    "constraint {r}: lhs {lhs} {:?} rhs {} violated",
                    c.cmp, c.rhs
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut m = LpModel::maximize(3);
        m.set_objective(0, 1.0);
        m.set_objective(2, 2.0);
        m.set_upper_bound(1, 4.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 5.0);
        m.add_eq(vec![(2, 1.0)], 2.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.constraints().len(), 2);
        assert_eq!(m.num_rows_expanded(), 3);
        assert_eq!(m.objective_value(&[1.0, 0.0, 2.0]), 5.0);
    }

    #[test]
    fn feasibility_checker() {
        let mut m = LpModel::minimize(2);
        m.add_ge(vec![(0, 1.0), (1, 1.0)], 2.0);
        m.set_upper_bound(0, 1.0);
        assert!(m.check_feasible(&[1.0, 1.0], 1e-9).is_ok());
        assert!(m.check_feasible(&[2.0, 0.0], 1e-9).is_err()); // ub violated
        assert!(m.check_feasible(&[0.5, 0.5], 1e-9).is_err()); // ge violated
        assert!(m.check_feasible(&[-0.1, 2.2], 1e-9).is_err()); // negative
    }

    #[test]
    fn zero_coeffs_dropped_and_sorted() {
        let mut m = LpModel::minimize(3);
        m.add_le(vec![(2, 1.0), (0, 0.0), (1, -1.0)], 1.0);
        assert_eq!(m.constraints()[0].coeffs, vec![(1, -1.0), (2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_var_rejected() {
        let mut m = LpModel::minimize(2);
        m.add_le(vec![(0, 1.0), (0, 2.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_var_rejected() {
        let mut m = LpModel::minimize(2);
        m.add_le(vec![(5, 1.0)], 1.0);
    }
}
