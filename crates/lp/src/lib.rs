//! # igp-lp — linear programming for incremental graph partitioning
//!
//! Ou & Ranka solve both the load-balancing step and the refinement step of
//! their incremental partitioner as linear programs, "using a dense version
//! of \[the\] simplex algorithm" (§2.3, footnote 1). This crate provides:
//!
//! * [`LpModel`] — a small builder for LPs with non-negative variables,
//!   optional upper bounds, and `≤ / = / ≥` constraints.
//! * [`solve`] / [`Simplex`] — a dense **two-phase primal simplex** with
//!   Dantzig pricing and Bland's-rule anti-cycling fallback, faithful to
//!   the paper's solver choice.
//! * [`flow`] — network-flow solvers (Edmonds–Karp max-flow, SPFA-based
//!   min-cost flow, cycle-cancelling max circulation). Both of the paper's
//!   LPs are integral network problems, so these serve as independent
//!   oracles in tests *and* as an ablation comparator for the simplex.
//!
//! The paper reports that for 32 partitions the load-balance LP has
//! `v = 188` variables and `c = 126` constraints and that each dense
//! iteration costs `O(v·c)` — sizes this implementation handles in
//! microseconds, while keeping the same dense-tableau structure that the
//! paper parallelizes across processors (see `igp-runtime`/`igp-core` for
//! the distributed-column version).
//!
//! ```
//! use igp_lp::{LpModel, solve};
//!
//! // max 3x + 2y  s.t.  x + y ≤ 4,  x + 3y ≤ 6,  x,y ≥ 0.
//! let mut m = LpModel::maximize(2);
//! m.set_objective(0, 3.0);
//! m.set_objective(1, 2.0);
//! m.add_le(vec![(0, 1.0), (1, 1.0)], 4.0);
//! m.add_le(vec![(0, 1.0), (1, 3.0)], 6.0);
//! let sol = solve(&m).unwrap();
//! assert!((sol.objective - 12.0).abs() < 1e-9);
//! ```

pub mod bounded;
pub mod flow;
pub mod model;
pub mod simplex;

pub use bounded::{solve_bounded, solve_bounded_with};
pub use model::{Cmp, Constraint, LpModel, Sense};
pub use simplex::{solve, LpError, LpSolution, Simplex, SimplexOptions, SimplexStats};
