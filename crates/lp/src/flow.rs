//! Network-flow solvers.
//!
//! Both LPs in the paper are integral network problems: the load-balancing
//! step (eq. 10–12) is a minimum-cost transshipment on the partition
//! adjacency graph (unit cost per moved vertex per hop), and the refinement
//! step (eq. 14–16) is a maximum circulation. This module provides direct
//! combinatorial solvers for both:
//!
//! * as **independent oracles** for property-testing the dense simplex, and
//! * as an **ablation comparator** (`bench ablation`): the paper remarks
//!   their dense simplex dominates total runtime and that sparse/structured
//!   approaches "can substantially reduce" the cost — these are that
//!   structured alternative.

/// A directed flow network with per-arc capacity and cost, stored as a
/// paired residual edge list (`edge ^ 1` is the reverse arc).
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    n: usize,
    first: Vec<Vec<u32>>,
    to: Vec<u32>,
    cap: Vec<i64>,
    cost: Vec<i64>,
}

impl FlowNetwork {
    /// An empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            n,
            first: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Add arc `u → v` with capacity `cap ≥ 0` and per-unit cost `cost`.
    /// Returns the arc id (use with [`FlowNetwork::flow_on`]).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> usize {
        assert!(u < self.n && v < self.n && u != v, "bad arc {u}->{v}");
        assert!(cap >= 0);
        let id = self.to.len();
        self.first[u].push(id as u32);
        self.to.push(v as u32);
        self.cap.push(cap);
        self.cost.push(cost);
        self.first[v].push(id as u32 + 1);
        self.to.push(u as u32);
        self.cap.push(0);
        self.cost.push(-cost);
        id
    }

    /// Flow currently routed on arc `id` (reverse residual capacity).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    /// Edmonds–Karp maximum flow from `s` to `t` (BFS augmenting paths).
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0i64;
        loop {
            // BFS for a shortest augmenting path.
            let mut pred_edge = vec![u32::MAX; self.n];
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            let mut seen = vec![false; self.n];
            seen[s] = true;
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.first[u] {
                    let v = self.to[e as usize] as usize;
                    if !seen[v] && self.cap[e as usize] > 0 {
                        seen[v] = true;
                        pred_edge[v] = e;
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !seen[t] {
                return total;
            }
            // Bottleneck along the path.
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let e = pred_edge[v] as usize;
                push = push.min(self.cap[e]);
                v = self.to[e ^ 1] as usize;
            }
            let mut v = t;
            while v != s {
                let e = pred_edge[v] as usize;
                self.cap[e] -= push;
                self.cap[e ^ 1] += push;
                v = self.to[e ^ 1] as usize;
            }
            total += push;
        }
    }

    /// Minimum-cost maximum flow from `s` to `t` via successive shortest
    /// paths (SPFA; arc costs may be negative as long as no negative cycle
    /// is reachable with residual capacity). Returns `(flow, cost)`.
    pub fn min_cost_max_flow(&mut self, s: usize, t: usize) -> (i64, i64) {
        let mut flow = 0i64;
        let mut cost = 0i64;
        loop {
            let (dist, pred) = self.spfa(s);
            if dist[t] == i64::MAX {
                return (flow, cost);
            }
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let e = pred[v] as usize;
                push = push.min(self.cap[e]);
                v = self.to[e ^ 1] as usize;
            }
            let mut v = t;
            while v != s {
                let e = pred[v] as usize;
                self.cap[e] -= push;
                self.cap[e ^ 1] += push;
                v = self.to[e ^ 1] as usize;
            }
            flow += push;
            cost += push * dist[t];
        }
    }

    /// SPFA single-source shortest residual distances and predecessor arcs.
    fn spfa(&self, s: usize) -> (Vec<i64>, Vec<u32>) {
        let mut dist = vec![i64::MAX; self.n];
        let mut pred = vec![u32::MAX; self.n];
        let mut inq = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        inq[s] = true;
        while let Some(u) = queue.pop_front() {
            inq[u] = false;
            for &e in &self.first[u] {
                let ei = e as usize;
                if self.cap[ei] <= 0 {
                    continue;
                }
                let v = self.to[ei] as usize;
                let nd = dist[u] + self.cost[ei];
                if nd < dist[v] {
                    dist[v] = nd;
                    pred[v] = e;
                    if !inq[v] {
                        inq[v] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        (dist, pred)
    }

    /// Cancel all negative-cost residual cycles (Klein's algorithm) and
    /// return the total cost improvement. Used for min-cost *circulation*
    /// problems (no source/sink).
    pub fn cancel_negative_cycles(&mut self) -> i64 {
        let mut improved = 0i64;
        while let Some(cycle) = self.find_negative_cycle() {
            let mut push = i64::MAX;
            for &e in &cycle {
                push = push.min(self.cap[e as usize]);
            }
            debug_assert!(push > 0);
            let mut gain = 0i64;
            for &e in &cycle {
                self.cap[e as usize] -= push;
                self.cap[e as usize ^ 1] += push;
                gain += self.cost[e as usize];
            }
            improved += gain * push;
        }
        improved
    }

    /// Bellman–Ford negative-cycle detection over the residual graph.
    /// Returns the arc ids of one negative cycle, if any.
    fn find_negative_cycle(&self) -> Option<Vec<u32>> {
        let n = self.n;
        // Virtual super-source: dist 0 everywhere.
        let mut dist = vec![0i64; n];
        let mut pred = vec![u32::MAX; n];
        let mut updated_node = None;
        for round in 0..n {
            updated_node = None;
            for u in 0..n {
                if dist[u] == i64::MAX {
                    continue;
                }
                for &e in &self.first[u] {
                    let ei = e as usize;
                    if self.cap[ei] <= 0 {
                        continue;
                    }
                    let v = self.to[ei] as usize;
                    let nd = dist[u] + self.cost[ei];
                    if nd < dist[v] {
                        dist[v] = nd;
                        pred[v] = e;
                        updated_node = Some(v);
                    }
                }
            }
            updated_node?;
            let _ = round;
        }
        // A node updated in round n lies on or downstream of a negative
        // cycle: walk predecessors n steps to land inside the cycle.
        let mut v = updated_node?;
        for _ in 0..n {
            v = self.to[pred[v] as usize ^ 1] as usize;
        }
        let start = v;
        let mut cycle = Vec::new();
        loop {
            let e = pred[v];
            cycle.push(e);
            v = self.to[e as usize ^ 1] as usize;
            if v == start {
                break;
            }
        }
        cycle.reverse();
        Some(cycle)
    }
}

/// Solve the paper's **load-balancing problem** combinatorially: given the
/// per-pair movement caps `caps[(i,j)]` and the per-partition surplus
/// `surplus[j] = |B'(j)| − target_j` (positive = must shed vertices),
/// find flows `l_ij` minimizing `Σ l_ij` (unit cost per hop).
///
/// Returns `None` if infeasible, else `(total_movement, l)` with `l`
/// aligned to `arcs`.
pub fn min_movement_transshipment(
    num_parts: usize,
    arcs: &[(usize, usize, i64)],
    surplus: &[i64],
) -> Option<(i64, Vec<i64>)> {
    assert_eq!(surplus.len(), num_parts);
    debug_assert_eq!(surplus.iter().sum::<i64>(), 0, "surpluses must net to zero");
    let s = num_parts;
    let t = num_parts + 1;
    let mut net = FlowNetwork::new(num_parts + 2);
    let ids: Vec<usize> = arcs
        .iter()
        .map(|&(u, v, cap)| net.add_edge(u, v, cap, 1))
        .collect();
    let mut need = 0i64;
    for (j, &b) in surplus.iter().enumerate() {
        if b > 0 {
            net.add_edge(s, j, b, 0);
            need += b;
        } else if b < 0 {
            net.add_edge(j, t, -b, 0);
        }
    }
    let (flow, cost) = net.min_cost_max_flow(s, t);
    if flow < need {
        return None;
    }
    let l = ids.iter().map(|&id| net.flow_on(id)).collect();
    Some((cost, l))
}

/// Solve the paper's **refinement problem** combinatorially: maximize
/// `Σ l_ij` subject to per-arc caps and zero net flow at every node —
/// a maximum-weight circulation (cost −1 per unit per arc, then cancel
/// negative cycles). Returns `(total_movement, l)` aligned to `arcs`.
pub fn max_circulation(num_parts: usize, arcs: &[(usize, usize, i64)]) -> (i64, Vec<i64>) {
    let mut net = FlowNetwork::new(num_parts);
    let ids: Vec<usize> = arcs
        .iter()
        .map(|&(u, v, cap)| net.add_edge(u, v, cap, -1))
        .collect();
    let improvement = net.cancel_negative_cycles();
    let l: Vec<i64> = ids.iter().map(|&id| net.flow_on(id)).collect();
    debug_assert_eq!(-improvement, l.iter().sum::<i64>());
    (-improvement, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_flow_classic() {
        // s=0, t=5; the classic CLRS network with max flow 23.
        let mut n = FlowNetwork::new(6);
        n.add_edge(0, 1, 16, 0);
        n.add_edge(0, 2, 13, 0);
        n.add_edge(1, 2, 10, 0);
        n.add_edge(2, 1, 4, 0);
        n.add_edge(1, 3, 12, 0);
        n.add_edge(3, 2, 9, 0);
        n.add_edge(2, 4, 14, 0);
        n.add_edge(4, 3, 7, 0);
        n.add_edge(3, 5, 20, 0);
        n.add_edge(4, 5, 4, 0);
        assert_eq!(n.max_flow(0, 5), 23);
    }

    #[test]
    fn max_flow_disconnected() {
        let mut n = FlowNetwork::new(3);
        n.add_edge(0, 1, 5, 0);
        assert_eq!(n.max_flow(0, 2), 0);
    }

    #[test]
    fn mcmf_prefers_cheap_path() {
        // Two parallel routes 0→3: via 1 (cost 1+1), via 2 (cost 5+5).
        let mut n = FlowNetwork::new(4);
        let a = n.add_edge(0, 1, 10, 1);
        n.add_edge(1, 3, 10, 1);
        let b = n.add_edge(0, 2, 10, 5);
        n.add_edge(2, 3, 10, 5);
        let (flow, cost) = n.min_cost_max_flow(0, 3);
        assert_eq!(flow, 20);
        assert_eq!(cost, 10 * 2 + 10 * 10);
        assert_eq!(n.flow_on(a), 10);
        assert_eq!(n.flow_on(b), 10);
    }

    #[test]
    fn transshipment_paper_figure5() {
        // Figure 5: caps on adjacent pairs, surplus (+8, +1, -1, -8).
        let arcs = [
            (0usize, 1usize, 9i64),
            (0, 2, 7),
            (0, 3, 12),
            (1, 0, 10),
            (1, 2, 11),
            (2, 0, 3),
            (2, 1, 7),
            (2, 3, 9),
            (3, 0, 7),
            (3, 2, 5),
        ];
        let (cost, l) = min_movement_transshipment(4, &arcs, &[8, 1, -1, -8]).unwrap();
        assert_eq!(cost, 9);
        assert_eq!(l[2], 8); // l03
        assert_eq!(l[4], 1); // l12
    }

    #[test]
    fn transshipment_infeasible_when_caps_too_small() {
        // Partition 0 must shed 5 but the only outgoing cap is 3.
        let arcs = [(0usize, 1usize, 3i64)];
        assert!(min_movement_transshipment(2, &arcs, &[5, -5]).is_none());
    }

    #[test]
    fn transshipment_multi_hop() {
        // 0 must shed 4, 2 must gain 4; only route is through 1.
        let arcs = [(0usize, 1usize, 4i64), (1, 2, 10)];
        let (cost, l) = min_movement_transshipment(3, &arcs, &[4, 0, -4]).unwrap();
        assert_eq!(cost, 8); // 4 units × 2 hops
        assert_eq!(l, vec![4, 4]);
    }

    #[test]
    fn circulation_paper_figure8() {
        let arcs = [
            (0usize, 1usize, 1i64),
            (0, 2, 1),
            (0, 3, 1),
            (1, 0, 2),
            (1, 2, 1),
            (2, 0, 0),
            (2, 1, 1),
            (2, 3, 1),
            (3, 0, 2),
            (3, 2, 1),
        ];
        let (total, l) = max_circulation(4, &arcs);
        assert_eq!(total, 9);
        // Conservation at every node.
        let mut net = vec![0i64; 4];
        for (k, &(u, v, _)) in arcs.iter().enumerate() {
            net[u] += l[k];
            net[v] -= l[k];
        }
        assert_eq!(net, vec![0, 0, 0, 0]);
        // Caps respected.
        for (k, &(_, _, c)) in arcs.iter().enumerate() {
            assert!(l[k] <= c);
        }
    }

    #[test]
    fn circulation_empty_when_no_cycles() {
        // A DAG has no circulation.
        let arcs = [(0usize, 1usize, 5i64), (1, 2, 5), (0, 2, 5)];
        let (total, l) = max_circulation(3, &arcs);
        assert_eq!(total, 0);
        assert_eq!(l, vec![0, 0, 0]);
    }

    #[test]
    fn circulation_simple_cycle() {
        let arcs = [(0usize, 1usize, 3i64), (1, 2, 4), (2, 0, 2)];
        let (total, l) = max_circulation(3, &arcs);
        assert_eq!(total, 6); // bottleneck 2, three arcs
        assert_eq!(l, vec![2, 2, 2]);
    }

    #[test]
    fn flow_on_reports_zero_initially() {
        let mut n = FlowNetwork::new(2);
        let e = n.add_edge(0, 1, 7, 0);
        assert_eq!(n.flow_on(e), 0);
        n.max_flow(0, 1);
        assert_eq!(n.flow_on(e), 7);
    }
}
