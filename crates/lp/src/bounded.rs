//! Bounded-variable primal simplex.
//!
//! The paper's LPs are box-constrained (`0 ≤ l_ij ≤ λ_ij` / `b_ij`), and
//! its footnote observes the dense solve "can be substantially reduced" by
//! exploiting structure. This solver is that improvement: variable bounds
//! are handled *natively* by the upper-bounding technique — non-basic
//! variables rest at either bound and "bound flips" move them across
//! without a pivot — so the tableau has one row per functional constraint
//! instead of one per cap. For the paper's 32-partition balance LP that is
//! ~32 rows instead of ~220, an ~7× smaller tableau at identical optima
//! (property-tested against [`crate::simplex`] and the flow oracles).
//!
//! Representation: `t = B⁻¹A` coefficient tableau (rows only), the basic
//! solution vector kept separately, and `at_upper` flags for non-basic
//! columns. Minimization with Dantzig pricing and a Bland fallback.

use crate::model::{Cmp, LpModel, Sense};
use crate::simplex::{LpError, LpSolution, SimplexOptions, SimplexStats};

/// Solve with the bounded-variable simplex (default options).
pub fn solve_bounded(model: &LpModel) -> Result<LpSolution, LpError> {
    solve_bounded_with(model, SimplexOptions::default())
}

/// Solve with explicit options.
pub fn solve_bounded_with(model: &LpModel, opts: SimplexOptions) -> Result<LpSolution, LpError> {
    let mut t = BTableau::build(model, opts.eps);
    let mut stats = SimplexStats {
        rows: t.rows.len(),
        cols: t.ncols,
        ..Default::default()
    };

    if t.n_art > 0 {
        let mut c1 = vec![0.0; t.ncols];
        for j in t.ncols - t.n_art..t.ncols {
            c1[j] = 1.0;
        }
        t.price_out(&c1);
        stats.phase1_iters = t.run(&opts, true)?;
        let infeas: f64 = (0..t.rows.len())
            .filter(|&i| t.active[i])
            .map(|i| c1[t.basis[i]] * t.xb[i])
            .sum();
        let scale = t.xb.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        if infeas > 1e-7 * (1.0 + scale) {
            return Err(LpError::Infeasible);
        }
        t.expel_artificials();
    }

    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut c2 = vec![0.0; t.ncols];
    for (j, &c) in model.objective().iter().enumerate() {
        c2[j] = flip * c;
    }
    t.price_out(&c2);
    stats.phase2_iters = t.run(&opts, false)?;

    let x = t.extract(model.num_vars());
    let objective = model.objective_value(&x);
    Ok(LpSolution {
        x,
        objective,
        stats,
    })
}

struct BTableau {
    /// `B⁻¹A` coefficient rows (length `ncols` each; no rhs column).
    rows: Vec<Vec<f64>>,
    /// Current values of the basic variables (aligned with `rows`).
    xb: Vec<f64>,
    basis: Vec<usize>,
    active: Vec<bool>,
    /// Reduced costs per column.
    red: Vec<f64>,
    /// Upper bound per column (`INFINITY` for slacks/artificials).
    upper: Vec<f64>,
    /// Non-basic-at-upper flags.
    at_upper: Vec<bool>,
    n_art: usize,
    ncols: usize,
    eps: f64,
}

impl BTableau {
    fn build(model: &LpModel, eps: f64) -> BTableau {
        let n = model.num_vars();
        struct Row {
            coeffs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = model
            .constraints()
            .iter()
            .map(|c| Row {
                coeffs: c.coeffs.clone(),
                cmp: c.cmp,
                rhs: c.rhs,
            })
            .collect();
        for r in &mut rows {
            if r.rhs < 0.0 {
                r.rhs = -r.rhs;
                r.cmp = match r.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Eq => Cmp::Eq,
                    Cmp::Ge => Cmp::Le,
                };
                for c in &mut r.coeffs {
                    c.1 = -c.1;
                }
            }
        }
        let m = rows.len();
        let n_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let ncols = n + n_slack + n_art;
        let mut mat = vec![vec![0.0; ncols]; m];
        let mut xb = vec![0.0; m];
        let mut basis = vec![usize::MAX; m];
        let mut upper = vec![f64::INFINITY; ncols];
        for (j, ub) in model.upper_bounds().iter().enumerate() {
            if let Some(u) = ub {
                upper[j] = *u;
            }
        }
        let mut next_slack = n;
        let mut next_art = n + n_slack;
        for (i, r) in rows.iter().enumerate() {
            for &(j, a) in &r.coeffs {
                mat[i][j] = a;
            }
            xb[i] = r.rhs;
            match r.cmp {
                Cmp::Le => {
                    mat[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    mat[i][next_slack] = -1.0;
                    next_slack += 1;
                    mat[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    mat[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        BTableau {
            rows: mat,
            xb,
            basis,
            active: vec![true; m],
            red: vec![0.0; ncols],
            upper,
            at_upper: vec![false; ncols],
            n_art,
            ncols,
            eps,
        }
    }

    fn price_out(&mut self, c: &[f64]) {
        self.red.copy_from_slice(c);
        for i in 0..self.rows.len() {
            if !self.active[i] {
                continue;
            }
            let cb = c[self.basis[i]];
            if cb != 0.0 {
                for j in 0..self.ncols {
                    self.red[j] -= cb * self.rows[i][j];
                }
            }
        }
    }

    fn is_basic(&self, j: usize) -> bool {
        self.basis
            .iter()
            .zip(&self.active)
            .any(|(&b, &a)| a && b == j)
    }

    /// Entering column: a non-basic variable whose reduced cost violates
    /// optimality in its resting direction.
    fn choose_entering(&self, bland: bool, phase1: bool) -> Option<usize> {
        let limit = if phase1 {
            self.ncols
        } else {
            self.ncols - self.n_art
        };
        let mut best: Option<(f64, usize)> = None;
        for j in 0..limit {
            if self.is_basic(j) {
                continue;
            }
            let r = self.red[j];
            let viol = if self.at_upper[j] { r } else { -r };
            if viol > self.eps {
                if bland {
                    return Some(j);
                }
                match best {
                    None => best = Some((viol, j)),
                    Some((bv, _)) if viol > bv => best = Some((viol, j)),
                    _ => {}
                }
            }
        }
        best.map(|(_, j)| j)
    }

    /// One bounded ratio test + pivot (or bound flip). Returns false when
    /// the problem is unbounded in the entering direction.
    fn step(&mut self, e: usize) -> Result<(), LpError> {
        // Direction: increasing from lower, or decreasing from upper.
        let d: f64 = if self.at_upper[e] { -1.0 } else { 1.0 };
        // Limits: entering's own opposite bound, or a basic hitting one.
        let mut t_max = self.upper[e]; // span of the entering variable
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..self.rows.len() {
            if !self.active[i] {
                continue;
            }
            let y = d * self.rows[i][e];
            if y > self.eps {
                // basic decreases toward 0
                let lim = self.xb[i] / y;
                if lim < t_max - self.eps
                    || (lim < t_max + self.eps
                        && leave
                            .map_or(t_max.is_infinite(), |(r, _)| self.basis[i] < self.basis[r]))
                {
                    t_max = lim.max(0.0);
                    leave = Some((i, false));
                }
            } else if y < -self.eps {
                let ub = self.upper[self.basis[i]];
                if ub.is_finite() {
                    // basic increases toward its upper bound
                    let lim = (ub - self.xb[i]) / (-y);
                    if lim < t_max - self.eps
                        || (lim < t_max + self.eps
                            && leave.map_or(t_max.is_infinite(), |(r, _)| {
                                self.basis[i] < self.basis[r]
                            }))
                    {
                        t_max = lim.max(0.0);
                        leave = Some((i, true));
                    }
                }
            }
        }
        if t_max.is_infinite() {
            return Err(LpError::Unbounded);
        }
        match leave {
            None => {
                // Bound flip: e crosses to its other bound, basis unchanged.
                for i in 0..self.rows.len() {
                    if self.active[i] {
                        self.xb[i] -= d * t_max * self.rows[i][e];
                    }
                }
                self.at_upper[e] = !self.at_upper[e];
            }
            Some((r, leaves_at_upper)) => {
                // Update basic values for the move, then pivot coefficients.
                let x_e_new = if self.at_upper[e] {
                    self.upper[e] - t_max
                } else {
                    t_max
                };
                for i in 0..self.rows.len() {
                    if i != r && self.active[i] {
                        self.xb[i] -= d * t_max * self.rows[i][e];
                    }
                }
                let old_basic = self.basis[r];
                self.at_upper[old_basic] = leaves_at_upper;
                self.at_upper[e] = false; // basic now
                self.pivot(r, e);
                self.xb[r] = x_e_new;
            }
        }
        Ok(())
    }

    fn pivot(&mut self, r: usize, e: usize) {
        let inv = 1.0 / self.rows[r][e];
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        self.rows[r][e] = 1.0;
        let prow = self.rows[r].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == r || !self.active[i] {
                continue;
            }
            let f = row[e];
            if f != 0.0 {
                for j in 0..self.ncols {
                    row[j] -= f * prow[j];
                }
                row[e] = 0.0;
            }
        }
        let f = self.red[e];
        if f != 0.0 {
            for j in 0..self.ncols {
                self.red[j] -= f * prow[j];
            }
            self.red[e] = 0.0;
        }
        self.basis[r] = e;
    }

    fn run(&mut self, opts: &SimplexOptions, phase1: bool) -> Result<usize, LpError> {
        for iter in 0..opts.max_iters {
            let bland = iter >= opts.bland_after;
            let Some(e) = self.choose_entering(bland, phase1) else {
                return Ok(iter);
            };
            self.step(e)?;
        }
        Err(LpError::IterationLimit)
    }

    fn expel_artificials(&mut self) {
        let art_lo = self.ncols - self.n_art;
        for r in 0..self.rows.len() {
            if !self.active[r] || self.basis[r] < art_lo {
                continue;
            }
            let mut col = None;
            for j in 0..art_lo {
                if !self.is_basic(j) && self.rows[r][j].abs() > 1e-7 {
                    col = Some(j);
                    break;
                }
            }
            match col {
                Some(j) => {
                    // Degenerate pivot: the artificial sits at 0, so the
                    // entering variable stays at its current bound value.
                    let x_e = if self.at_upper[j] { self.upper[j] } else { 0.0 };
                    self.at_upper[j] = false;
                    self.pivot(r, j);
                    self.xb[r] = x_e;
                }
                None => self.active[r] = false,
            }
        }
    }

    fn extract(&self, n: usize) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for j in 0..n.min(self.ncols) {
            if self.at_upper[j] {
                x[j] = self.upper[j];
            }
        }
        for (i, &b) in self.basis.iter().enumerate() {
            if self.active[i] && b < n {
                x[b] = self.xb[i];
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpModel;
    use crate::simplex::solve;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Helper: bounded solver must agree with the row-expansion solver.
    fn check_agrees(m: &LpModel) {
        let a = solve(m);
        let b = solve_bounded(m);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_close(x.objective, y.objective);
                m.check_feasible(&y.x, 1e-6).unwrap();
            }
            (Err(e1), Err(e2)) => assert_eq!(e1, e2),
            (a, b) => panic!("solvers disagree: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn simple_bounded_max() {
        // max x + y, x ≤ 1.5, y ≤ 2.5, x + y ≤ 3 → 3.
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.set_objective(1, 1.0);
        m.set_upper_bound(0, 1.5);
        m.set_upper_bound(1, 2.5);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 3.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.objective, 3.0);
        check_agrees(&m);
    }

    #[test]
    fn bound_flip_exercised() {
        // max 5x + y with x ≤ 2 and only a loose row constraint: the
        // optimal solution parks x at its upper bound via a bound flip.
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 5.0);
        m.set_objective(1, 1.0);
        m.set_upper_bound(0, 2.0);
        m.set_upper_bound(1, 3.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 10.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.objective, 13.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn tableau_is_smaller_than_expanded() {
        let mut m = LpModel::minimize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, 5.0);
        }
        m.add_ge(vec![(0, 1.0), (5, 1.0)], 3.0);
        let dense = solve(&m).unwrap();
        let bounded = solve_bounded(&m).unwrap();
        assert_close(dense.objective, bounded.objective);
        // Row-expansion pays 1 + 10 rows; bounded pays only 1.
        assert_eq!(dense.stats.rows, 11);
        assert_eq!(bounded.stats.rows, 1);
    }

    #[test]
    fn paper_figure5_bounded() {
        let caps = [9.0, 7.0, 12.0, 10.0, 11.0, 3.0, 7.0, 9.0, 7.0, 5.0];
        let mut m = LpModel::minimize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, caps[i]);
        }
        m.add_eq(
            vec![
                (0, 1.0),
                (1, 1.0),
                (2, 1.0),
                (3, -1.0),
                (5, -1.0),
                (8, -1.0),
            ],
            8.0,
        );
        m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 1.0);
        m.add_eq(
            vec![
                (5, 1.0),
                (6, 1.0),
                (7, 1.0),
                (1, -1.0),
                (4, -1.0),
                (9, -1.0),
            ],
            -1.0,
        );
        m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], -8.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.objective, 9.0);
        assert_close(s.x[2], 8.0);
        assert_close(s.x[4], 1.0);
    }

    #[test]
    fn paper_figure8_bounded() {
        let caps = [1.0, 1.0, 1.0, 2.0, 1.0, 0.0, 1.0, 1.0, 2.0, 1.0];
        let mut m = LpModel::maximize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, caps[i]);
        }
        m.add_eq(
            vec![
                (0, 1.0),
                (1, 1.0),
                (2, 1.0),
                (3, -1.0),
                (5, -1.0),
                (8, -1.0),
            ],
            0.0,
        );
        m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 0.0);
        m.add_eq(
            vec![
                (5, 1.0),
                (6, 1.0),
                (7, 1.0),
                (1, -1.0),
                (4, -1.0),
                (9, -1.0),
            ],
            0.0,
        );
        m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], 0.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.objective, 9.0);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut m = LpModel::minimize(1);
        m.set_upper_bound(0, 1.0);
        m.add_ge(vec![(0, 1.0)], 5.0);
        assert_eq!(solve_bounded(&m).unwrap_err(), LpError::Infeasible);

        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.add_ge(vec![(0, 1.0), (1, -1.0)], 0.0);
        assert_eq!(solve_bounded(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn equality_with_bounds() {
        // min x + 2y s.t. x + y = 5, x ≤ 3, y ≤ 4 → x = 3, y = 2.
        let mut m = LpModel::minimize(2);
        m.set_objective(0, 1.0);
        m.set_objective(1, 2.0);
        m.set_upper_bound(0, 3.0);
        m.set_upper_bound(1, 4.0);
        m.add_eq(vec![(0, 1.0), (1, 1.0)], 5.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.objective, 7.0);
        assert_close(s.x[0], 3.0);
        check_agrees(&m);
    }

    #[test]
    fn zero_upper_bound_fixes_variable() {
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 10.0);
        m.set_objective(1, 1.0);
        m.set_upper_bound(0, 0.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 4.0);
        let s = solve_bounded(&m).unwrap();
        assert_close(s.x[0], 0.0);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn random_instances_agree_with_dense() {
        let mut state = 1234u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 100.0
        };
        for trial in 0..40 {
            let n = 2 + (trial % 5);
            let mut m = if trial % 2 == 0 {
                LpModel::minimize(n)
            } else {
                LpModel::maximize(n)
            };
            for i in 0..n {
                m.set_objective(i, next() - 5.0);
                m.set_upper_bound(i, next() + 0.5);
            }
            for _ in 0..1 + trial % 3 {
                let row: Vec<(usize, f64)> = (0..n).map(|i| (i, next() - 5.0)).collect();
                match trial % 3 {
                    0 => m.add_le(row, next() + 1.0),
                    1 => m.add_ge(row, -(next())),
                    _ => m.add_eq(row, next() - 5.0),
                }
            }
            check_agrees(&m);
        }
    }
}
