//! Dense two-phase primal simplex.
//!
//! This mirrors the solver the paper used: a *dense tableau* ("We have used
//! a dense version of simplex algorithm", §2.3 fn. 1) where each iteration
//! costs `O(v·c)` for `v` variables and `c` constraints. Pricing is
//! Dantzig's rule (most negative reduced cost) with an automatic switch to
//! Bland's rule to guarantee termination on degenerate problems — the
//! paper's LPs are network-structured and highly degenerate.

use crate::model::{Cmp, LpModel, Sense};

/// Solver tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimplexOptions {
    /// Hard iteration cap per phase.
    pub max_iters: usize,
    /// Feasibility/optimality tolerance.
    pub eps: f64,
    /// Switch from Dantzig to Bland's rule after this many iterations.
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iters: 100_000,
            eps: 1e-9,
            bland_after: 2_000,
        }
    }
}

/// Iteration counters (the paper's E7 accounting: tableau size + pivots).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Pivots in phase 1 (feasibility).
    pub phase1_iters: usize,
    /// Pivots in phase 2 (optimality).
    pub phase2_iters: usize,
    /// Constraint rows after expansion (the paper's `c`).
    pub rows: usize,
    /// Total tableau columns (structural + slack + artificial).
    pub cols: usize,
}

impl SimplexStats {
    /// Total pivots.
    pub fn total_iters(&self) -> usize {
        self.phase1_iters + self.phase2_iters
    }
}

/// An optimal solution.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Optimal values of the structural variables.
    pub x: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Work counters.
    pub stats: SimplexStats,
}

/// Solver failure modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// No feasible point exists (phase-1 optimum > 0). The partitioner
    /// reacts to this by δ-scaling the balance RHS (multi-stage, §2.3).
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
    /// `max_iters` exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Solve with default options.
pub fn solve(model: &LpModel) -> Result<LpSolution, LpError> {
    Simplex::new(SimplexOptions::default()).solve(model)
}

/// Reusable dense simplex solver.
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    opts: SimplexOptions,
}

/// Dense working tableau: `rows` of length `cols + 1` (rhs last), plus a
/// reduced-cost row. Basis invariant: column `basis[i]` is the identity
/// unit vector `e_i` over the active rows.
struct Tableau {
    rows: Vec<Vec<f64>>,
    basis: Vec<usize>,
    active: Vec<bool>,
    red: Vec<f64>, // reduced costs, length cols (+ rhs slot for objective)

    n_art: usize,
    cols: usize,
    eps: f64,
}

impl Simplex {
    /// A solver with the given options.
    pub fn new(opts: SimplexOptions) -> Self {
        Simplex { opts }
    }

    /// Solve `model`; returns the optimum or the failure mode.
    pub fn solve(&self, model: &LpModel) -> Result<LpSolution, LpError> {
        let eps = self.opts.eps;
        let mut t = Tableau::build(model, eps);
        let mut stats = SimplexStats {
            rows: t.rows.len(),
            cols: t.cols,
            ..Default::default()
        };

        // Phase 1: minimize the sum of artificials.
        if t.n_art > 0 {
            let mut c1 = vec![0.0; t.cols];
            for j in t.cols - t.n_art..t.cols {
                c1[j] = 1.0;
            }
            t.price_out(&c1);
            stats.phase1_iters = self.run(&mut t, true)?;
            let infeas = t.objective_of(&c1);
            if infeas > 1e-7 * (1.0 + t.rhs_scale()) {
                return Err(LpError::Infeasible);
            }
            t.expel_artificials();
        }

        // Phase 2: the real objective (converted to minimization).
        let mut c2 = vec![0.0; t.cols];
        let flip = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for (j, &c) in model.objective().iter().enumerate() {
            c2[j] = flip * c;
        }
        t.price_out(&c2);
        stats.phase2_iters = self.run(&mut t, false)?;

        let mut x = vec![0.0; model.num_vars()];
        for (i, &bj) in t.basis.iter().enumerate() {
            if t.active[i] && bj < model.num_vars() {
                x[bj] = t.rows[i][t.cols].max(0.0);
            }
        }
        let objective = model.objective_value(&x);
        Ok(LpSolution {
            x,
            objective,
            stats,
        })
    }

    /// Run the simplex loop to optimality; returns the pivot count.
    fn run(&self, t: &mut Tableau, phase1: bool) -> Result<usize, LpError> {
        let eps = self.opts.eps;
        for iter in 0..self.opts.max_iters {
            let bland = iter >= self.opts.bland_after;
            let Some(enter) = t.choose_entering(bland, phase1) else {
                return Ok(iter);
            };
            let Some(leave) = t.ratio_test(enter) else {
                // In phase 1 the objective is bounded below by 0, so an
                // unbounded ray means numerical breakdown; report it as
                // Unbounded either way (callers treat both as fatal).
                return Err(LpError::Unbounded);
            };
            t.pivot(leave, enter);
            let _ = eps;
        }
        Err(LpError::IterationLimit)
    }
}

impl Tableau {
    /// Assemble the standard-form tableau.
    fn build(model: &LpModel, eps: f64) -> Tableau {
        let n = model.num_vars();
        // Expanded row list: (sparse coeffs, cmp, rhs) with rhs >= 0.
        struct Row<'a> {
            coeffs: std::borrow::Cow<'a, [(usize, f64)]>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(model.num_rows_expanded());
        for c in model.constraints() {
            rows.push(Row {
                coeffs: std::borrow::Cow::Borrowed(&c.coeffs),
                cmp: c.cmp,
                rhs: c.rhs,
            });
        }
        for (i, ub) in model.upper_bounds().iter().enumerate() {
            if let Some(u) = ub {
                rows.push(Row {
                    coeffs: std::borrow::Cow::Owned(vec![(i, 1.0)]),
                    cmp: Cmp::Le,
                    rhs: *u,
                });
            }
        }
        // Normalize signs so rhs >= 0.
        for r in &mut rows {
            if r.rhs < 0.0 {
                r.rhs = -r.rhs;
                r.cmp = match r.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Eq => Cmp::Eq,
                    Cmp::Ge => Cmp::Le,
                };
                let owned: Vec<(usize, f64)> = r.coeffs.iter().map(|&(i, a)| (i, -a)).collect();
                r.coeffs = std::borrow::Cow::Owned(owned);
            }
        }
        let m = rows.len();
        let n_slack = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let n_art = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let cols = n + n_slack + n_art;
        let mut mat = vec![vec![0.0; cols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut next_slack = n;
        let mut next_art = n + n_slack;
        for (i, r) in rows.iter().enumerate() {
            for &(j, a) in r.coeffs.iter() {
                mat[i][j] = a;
            }
            mat[i][cols] = r.rhs;
            match r.cmp {
                Cmp::Le => {
                    mat[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    mat[i][next_slack] = -1.0; // surplus
                    next_slack += 1;
                    mat[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
                Cmp::Eq => {
                    mat[i][next_art] = 1.0;
                    basis[i] = next_art;
                    next_art += 1;
                }
            }
        }
        Tableau {
            rows: mat,
            basis,
            active: vec![true; m],
            red: vec![0.0; cols + 1],

            n_art,
            cols,
            eps,
        }
    }

    /// Recompute the reduced-cost row for cost vector `c` over the current
    /// basis: `red = c − c_B·(current rows)`, `red[cols]` = −objective.
    fn price_out(&mut self, c: &[f64]) {
        self.red[..self.cols].copy_from_slice(c);
        self.red[self.cols] = 0.0;
        for i in 0..self.rows.len() {
            if !self.active[i] {
                continue;
            }
            let cb = c[self.basis[i]];
            if cb != 0.0 {
                let row = &self.rows[i];
                for j in 0..=self.cols {
                    self.red[j] -= cb * row[j];
                }
            }
        }
    }

    /// Current objective value for cost vector `c` (recomputed exactly).
    fn objective_of(&self, c: &[f64]) -> f64 {
        let mut obj = 0.0;
        for i in 0..self.rows.len() {
            if self.active[i] {
                obj += c[self.basis[i]] * self.rows[i][self.cols];
            }
        }
        obj
    }

    fn rhs_scale(&self) -> f64 {
        self.rows
            .iter()
            .zip(&self.active)
            .filter(|&(_, &a)| a)
            .map(|(r, _)| r[self.cols].abs())
            .fold(0.0, f64::max)
    }

    /// Entering column: Dantzig (most negative reduced cost) or Bland
    /// (lowest index with negative reduced cost). Artificials may never
    /// re-enter once phase 1 is over.
    fn choose_entering(&self, bland: bool, phase1: bool) -> Option<usize> {
        let limit = if phase1 {
            self.cols
        } else {
            self.cols - self.n_art
        };
        if bland {
            (0..limit).find(|&j| self.red[j] < -self.eps)
        } else {
            let mut best = None;
            let mut best_val = -self.eps;
            for j in 0..limit {
                if self.red[j] < best_val {
                    best_val = self.red[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Leaving row for entering column `enter`: minimum ratio `rhs / a`,
    /// ties broken by smallest basis index (lexicographic Bland tie-break,
    /// needed for termination under Bland's entering rule).
    fn ratio_test(&self, enter: usize) -> Option<usize> {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, basis, row)
        for i in 0..self.rows.len() {
            if !self.active[i] {
                continue;
            }
            let a = self.rows[i][enter];
            if a > self.eps {
                let ratio = self.rows[i][self.cols] / a;
                let key = (ratio, self.basis[i], i);
                match best {
                    None => best = Some(key),
                    Some((r, b, _)) => {
                        if ratio < r - self.eps || (ratio < r + self.eps && self.basis[i] < b) {
                            best = Some(key);
                        }
                    }
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Gauss-Jordan pivot on `(leave_row, enter_col)`.
    fn pivot(&mut self, leave: usize, enter: usize) {
        let cols = self.cols;
        let piv = self.rows[leave][enter];
        debug_assert!(piv.abs() > self.eps, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in self.rows[leave].iter_mut() {
            *v *= inv;
        }
        self.rows[leave][enter] = 1.0; // kill roundoff

        // Split borrow: copy the pivot row out once (rows are short-lived
        // buffers; this keeps the inner loop branch-free and vectorizable).
        let prow = self.rows[leave].clone();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if i == leave || !self.active[i] {
                continue;
            }
            let f = row[enter];
            if f != 0.0 {
                for j in 0..=cols {
                    row[j] -= f * prow[j];
                }
                row[enter] = 0.0;
            }
        }
        let f = self.red[enter];
        if f != 0.0 {
            for j in 0..=cols {
                self.red[j] -= f * prow[j];
            }
            self.red[enter] = 0.0;
        }
        self.basis[leave] = enter;
    }

    /// After phase 1: pivot basic artificials (all at value 0) out of the
    /// basis; rows that are zero over the non-artificial columns are
    /// redundant constraints and get deactivated.
    fn expel_artificials(&mut self) {
        let art_lo = self.cols - self.n_art;
        for i in 0..self.rows.len() {
            if !self.active[i] || self.basis[i] < art_lo {
                continue;
            }
            let mut pivot_col = None;
            for j in 0..art_lo {
                if self.rows[i][j].abs() > 1e-7 {
                    pivot_col = Some(j);
                    break;
                }
            }
            match pivot_col {
                Some(j) => self.pivot(i, j),
                None => self.active[i] = false, // redundant row
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpModel;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → x = 4, y = 0, obj 12.
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 3.0);
        m.set_objective(1, 2.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 4.0);
        m.add_le(vec![(0, 1.0), (1, 3.0)], 6.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.x[0], 4.0);
        assert_close(s.x[1], 0.0);
        m.check_feasible(&s.x, 1e-7).unwrap();
    }

    #[test]
    fn textbook_min_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → x = 7, y = 3, obj 23.
        let mut m = LpModel::minimize(2);
        m.set_objective(0, 2.0);
        m.set_objective(1, 3.0);
        m.add_ge(vec![(0, 1.0), (1, 1.0)], 10.0);
        m.add_ge(vec![(0, 1.0)], 2.0);
        m.add_ge(vec![(1, 1.0)], 3.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 23.0);
        assert_close(s.x[0], 7.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn equality_constraints() {
        // min x s.t. x + y = 2 → x = 0, y = 2.
        let mut m = LpModel::minimize(2);
        m.set_objective(0, 1.0);
        m.add_eq(vec![(0, 1.0), (1, 1.0)], 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x - y = -3  (i.e. y - x = 3), min y → y = 3, x = 0.
        let mut m = LpModel::minimize(2);
        m.set_objective(1, 1.0);
        m.add_eq(vec![(0, 1.0), (1, -1.0)], -3.0);
        let s = solve(&m).unwrap();
        assert_close(s.x[0], 0.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn upper_bounds_respected() {
        // max x + y, x <= 1.5, y <= 2.5, x + y <= 3 → obj 3.
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.set_objective(1, 1.0);
        m.set_upper_bound(0, 1.5);
        m.set_upper_bound(1, 2.5);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 3.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 3.0);
        assert!(s.x[0] <= 1.5 + 1e-9);
        assert!(s.x[1] <= 2.5 + 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = LpModel::minimize(1);
        m.add_le(vec![(0, 1.0)], 1.0);
        m.add_ge(vec![(0, 1.0)], 2.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn infeasible_by_upper_bound() {
        let mut m = LpModel::minimize(1);
        m.set_upper_bound(0, 1.0);
        m.add_ge(vec![(0, 1.0)], 5.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.add_ge(vec![(0, 1.0), (1, -1.0)], 0.0);
        assert_eq!(solve(&m).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn zero_variable_model() {
        let m = LpModel::minimize(0);
        let s = solve(&m).unwrap();
        assert!(s.x.is_empty());
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn fixed_variable_via_zero_upper_bound() {
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 5.0);
        m.set_objective(1, 1.0);
        m.set_upper_bound(0, 0.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 4.0);
        let s = solve(&m).unwrap();
        assert_close(s.x[0], 0.0);
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn redundant_equalities_handled() {
        // x + y = 2 stated twice plus its double: rank-1 system.
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.add_eq(vec![(0, 1.0), (1, 1.0)], 2.0);
        m.add_eq(vec![(0, 1.0), (1, 1.0)], 2.0);
        m.add_eq(vec![(0, 2.0), (1, 2.0)], 4.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 2.0);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Beale's classic cycling example (cycles under pure Dantzig
        // without anti-cycling): min -0.75x4 + 150x5 - 0.02x6 + 6x7 …
        let mut m = LpModel::minimize(4);
        m.set_objective(0, -0.75);
        m.set_objective(1, 150.0);
        m.set_objective(2, -0.02);
        m.set_objective(3, 6.0);
        m.add_le(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], 0.0);
        m.add_le(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], 0.0);
        m.add_le(vec![(2, 1.0)], 1.0);
        let opts = SimplexOptions {
            bland_after: 0,
            ..Default::default()
        }; // pure Bland
        let s = Simplex::new(opts).solve(&m).unwrap();
        assert_close(s.objective, -0.05);
    }

    #[test]
    fn paper_figure5_load_balance_lp() {
        // The exact LP printed in Figure 5 of the paper. Variables (order):
        // l01 l02 l03 l10 l12 l20 l21 l23 l30 l32 with caps
        // 9   7   12  10  11  3   7   9   7   5
        // Net-outflow equalities: part0 = +8, part1 = +1, part2 = -1,
        // part3 = -8. Optimal total movement = 9 (l03 = 8, l12 = 1).
        let caps = [9.0, 7.0, 12.0, 10.0, 11.0, 3.0, 7.0, 9.0, 7.0, 5.0];
        let mut m = LpModel::minimize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, caps[i]);
        }
        // out(0)=l01+l02+l03, in(0)=l10+l20+l30
        m.add_eq(
            vec![
                (0, 1.0),
                (1, 1.0),
                (2, 1.0),
                (3, -1.0),
                (5, -1.0),
                (8, -1.0),
            ],
            8.0,
        );
        // out(1)=l10+l12, in(1)=l01+l21
        m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 1.0);
        // out(2)=l20+l21+l23, in(2)=l02+l12+l32
        m.add_eq(
            vec![
                (5, 1.0),
                (6, 1.0),
                (7, 1.0),
                (1, -1.0),
                (4, -1.0),
                (9, -1.0),
            ],
            -1.0,
        );
        // out(3)=l30+l32, in(3)=l03+l23
        m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], -8.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 9.0);
        m.check_feasible(&s.x, 1e-7).unwrap();
        // Network LP with integer data → integral vertex optimum.
        for &v in &s.x {
            assert!((v - v.round()).abs() < 1e-6, "non-integral {v}");
        }
        // The unique minimum-movement routing is the direct one.
        assert_close(s.x[2], 8.0); // l03
        assert_close(s.x[4], 1.0); // l12
    }

    #[test]
    fn paper_figure8_refinement_lp() {
        // Figure 8: maximize total movement subject to zero net flow and
        // caps b01..b32 = [1,1,1,2,1,0,1,1,2,1]. The LP optimum is 9 (the
        // paper prints a solution summing to 8 with a per-node imbalance —
        // a typo; see EXPERIMENTS.md E5).
        let caps = [1.0, 1.0, 1.0, 2.0, 1.0, 0.0, 1.0, 1.0, 2.0, 1.0];
        let mut m = LpModel::maximize(10);
        for i in 0..10 {
            m.set_objective(i, 1.0);
            m.set_upper_bound(i, caps[i]);
        }
        m.add_eq(
            vec![
                (0, 1.0),
                (1, 1.0),
                (2, 1.0),
                (3, -1.0),
                (5, -1.0),
                (8, -1.0),
            ],
            0.0,
        );
        m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 0.0);
        m.add_eq(
            vec![
                (5, 1.0),
                (6, 1.0),
                (7, 1.0),
                (1, -1.0),
                (4, -1.0),
                (9, -1.0),
            ],
            0.0,
        );
        m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], 0.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 9.0);
        m.check_feasible(&s.x, 1e-7).unwrap();
    }

    #[test]
    fn stats_populated() {
        let mut m = LpModel::maximize(2);
        m.set_objective(0, 1.0);
        m.add_le(vec![(0, 1.0), (1, 1.0)], 1.0);
        let s = solve(&m).unwrap();
        assert!(s.stats.rows >= 1);
        assert!(s.stats.cols >= 3);
        assert!(s.stats.total_iters() >= 1);
    }

    #[test]
    fn maximization_sign_handling() {
        let mut m = LpModel::maximize(1);
        m.set_objective(0, -2.0); // max -2x → x = 0
        m.add_le(vec![(0, 1.0)], 10.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[0], 0.0);
    }
}
