//! Matrix-free graph Laplacian.
//!
//! `L = D − A` with `D` the (weighted) degree diagonal. RSB needs only
//! `y = Lx` products, so the Laplacian is never materialized: one fused
//! CSR sweep per product.

use igp_graph::CsrGraph;

/// The Laplacian operator of a graph.
pub struct Laplacian<'g> {
    graph: &'g CsrGraph,
    degree: Vec<f64>,
}

impl<'g> Laplacian<'g> {
    /// Wrap `graph` (precomputes weighted degrees).
    pub fn new(graph: &'g CsrGraph) -> Self {
        let degree = graph
            .vertices()
            .map(|v| graph.edge_weights(v).iter().map(|&w| w as f64).sum())
            .collect();
        Laplacian { graph, degree }
    }

    /// Dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.num_vertices()
    }

    /// `y ← Lx`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n());
        debug_assert_eq!(y.len(), self.n());
        for v in self.graph.vertices() {
            let mut acc = self.degree[v as usize] * x[v as usize];
            for (u, w) in self.graph.edges_of(v) {
                acc -= w as f64 * x[u as usize];
            }
            y[v as usize] = acc;
        }
    }

    /// Rayleigh quotient `xᵀLx / xᵀx` (0 for the constant vector).
    pub fn rayleigh(&self, x: &[f64]) -> f64 {
        let mut y = vec![0.0; self.n()];
        self.matvec(x, &mut y);
        let num: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let den: f64 = x.iter().map(|a| a * a).sum();
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;

    #[test]
    fn constant_vector_in_nullspace() {
        let g = generators::grid(4, 4);
        let l = Laplacian::new(&g);
        let x = vec![1.0; 16];
        let mut y = vec![9.0; 16];
        l.matvec(&x, &mut y);
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn path_laplacian_matvec() {
        // Path 0-1-2: L = [[1,-1,0],[-1,2,-1],[0,-1,1]].
        let g = generators::path(3);
        let l = Laplacian::new(&g);
        let mut y = vec![0.0; 3];
        l.matvec(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![1.0, -1.0, 0.0]);
        l.matvec(&[0.0, 1.0, 0.0], &mut y);
        assert_eq!(y, vec![-1.0, 2.0, -1.0]);
    }

    #[test]
    fn weighted_degrees() {
        let g = igp_graph::CsrGraph::from_weighted_edges(3, &[(0, 1, 2), (1, 2, 5)]);
        let l = Laplacian::new(&g);
        let mut y = vec![0.0; 3];
        l.matvec(&[0.0, 1.0, 0.0], &mut y);
        assert_eq!(y, vec![-2.0, 7.0, -5.0]);
    }

    #[test]
    fn rayleigh_positive_semidefinite() {
        let g = generators::cycle(8);
        let l = Laplacian::new(&g);
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        assert!(l.rayleigh(&x) >= -1e-12);
    }
}
