//! Fiedler vector extraction via Lanczos iteration.
//!
//! The Fiedler vector — eigenvector of the second-smallest eigenvalue
//! `λ₂` of the graph Laplacian — is the heart of spectral bisection.
//! Because the smallest eigenpair `(0, 𝟙)` is known, every working vector
//! is kept orthogonal to `𝟙` (deflation), so Lanczos converges to `λ₂` as
//! its *smallest* Ritz pair. Full reorthogonalization keeps the Krylov
//! basis clean (small subspaces: `m ≤ 120`), and the driver restarts on
//! the best Ritz vector until the eigen-residual passes the tolerance.

use crate::laplacian::Laplacian;
use crate::tridiag::eigen_tridiag;
use igp_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning parameters for [`fiedler_vector`].
#[derive(Clone, Copy, Debug)]
pub struct FiedlerOptions {
    /// Krylov subspace dimension per restart.
    pub subspace: usize,
    /// Maximum restarts.
    pub max_restarts: usize,
    /// Relative eigen-residual tolerance `‖Lx − λx‖ ≤ tol·max(λ, 1)`.
    pub tol: f64,
    /// RNG seed for the start vector.
    pub seed: u64,
}

impl Default for FiedlerOptions {
    fn default() -> Self {
        FiedlerOptions {
            subspace: 80,
            max_restarts: 12,
            tol: 1e-6,
            seed: 0x5eed,
        }
    }
}

/// Result of a Fiedler computation.
#[derive(Clone, Debug)]
pub struct FiedlerResult {
    /// The (approximate) Fiedler vector, unit norm, ⟂ 𝟙.
    pub vector: Vec<f64>,
    /// The Ritz estimate of `λ₂`.
    pub value: f64,
    /// Achieved residual `‖Lx − λx‖`.
    pub residual: f64,
    /// Matvec count (work accounting for the benches).
    pub matvecs: usize,
}

fn orthogonalize_against_ones(x: &mut [f64]) {
    let mean: f64 = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) -> f64 {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        let inv = 1.0 / norm;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
    norm
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Compute the Fiedler vector of a **connected** graph.
///
/// Panics (debug) if the graph has fewer than 2 vertices; for a
/// disconnected graph the returned vector approximates an indicator of a
/// component (λ₂ ≈ 0), which the RSB driver detects and handles upstream.
pub fn fiedler_vector(graph: &CsrGraph, opts: FiedlerOptions) -> FiedlerResult {
    let n = graph.num_vertices();
    assert!(n >= 2, "Fiedler vector needs at least 2 vertices");
    let lap = Laplacian::new(graph);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    orthogonalize_against_ones(&mut x);
    normalize(&mut x);
    let mut matvecs = 0usize;
    let mut best = FiedlerResult {
        vector: x.clone(),
        value: f64::INFINITY,
        residual: f64::INFINITY,
        matvecs: 0,
    };

    for restart in 0..opts.max_restarts {
        let m = opts.subspace.min(n - 1).max(2);
        // Lanczos with full reorthogonalization.
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut alpha = Vec::with_capacity(m);
        let mut beta: Vec<f64> = Vec::new();
        let mut v = x.clone();
        orthogonalize_against_ones(&mut v);
        if normalize(&mut v) == 0.0 {
            // Degenerate start (can happen on pathological graphs): reseed.
            v = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
            orthogonalize_against_ones(&mut v);
            normalize(&mut v);
        }
        let mut w = vec![0.0; n];
        for j in 0..m {
            basis.push(v.clone());
            lap.matvec(&v, &mut w);
            matvecs += 1;
            let a = dot(&v, &w);
            alpha.push(a);
            // w ← w − a·v − β·v_{j−1}, then full reorth (twice is enough).
            for i in 0..n {
                w[i] -= a * v[i];
            }
            if j > 0 {
                let b = beta[j - 1];
                let prev = &basis[j - 1];
                for i in 0..n {
                    w[i] -= b * prev[i];
                }
            }
            for _ in 0..2 {
                orthogonalize_against_ones(&mut w);
                for q in &basis {
                    let c = dot(q, &w);
                    if c != 0.0 {
                        for i in 0..n {
                            w[i] -= c * q[i];
                        }
                    }
                }
            }
            let b = w.iter().map(|t| t * t).sum::<f64>().sqrt();
            if j + 1 == m || b < 1e-12 {
                break;
            }
            beta.push(b);
            let inv = 1.0 / b;
            v = w.iter().map(|t| t * inv).collect();
        }
        let k = alpha.len();
        let eig = eigen_tridiag(&alpha, &beta[..k - 1]);
        // Smallest Ritz pair = λ₂ estimate (0-eigenvector deflated away).
        let s = &eig.vectors[0];
        let lam = eig.values[0];
        let mut y = vec![0.0; n];
        for (j, q) in basis.iter().enumerate() {
            let c = s[j];
            for i in 0..n {
                y[i] += c * q[i];
            }
        }
        orthogonalize_against_ones(&mut y);
        normalize(&mut y);
        // Residual check.
        lap.matvec(&y, &mut w);
        matvecs += 1;
        let res = (0..n)
            .map(|i| (w[i] - lam * y[i]) * (w[i] - lam * y[i]))
            .sum::<f64>()
            .sqrt();
        if res < best.residual {
            best = FiedlerResult {
                vector: y.clone(),
                value: lam,
                residual: res,
                matvecs,
            };
        }
        if res <= opts.tol * lam.abs().max(1.0) {
            break;
        }
        x = y;
        let _ = restart;
    }
    best.matvecs = matvecs;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;

    #[test]
    fn path_fiedler_value_matches_closed_form() {
        // λ₂(Pₙ) = 2(1 − cos(π/n)) = 4 sin²(π/2n).
        let n = 24;
        let g = generators::path(n);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        let expect = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!((r.value - expect).abs() < 1e-6, "{} vs {expect}", r.value);
        assert!(r.residual < 1e-5);
    }

    #[test]
    fn path_fiedler_vector_monotone() {
        // The Fiedler vector of a path is a sampled cosine — strictly
        // monotone along the path.
        let g = generators::path(17);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        let increasing = r.vector.windows(2).all(|w| w[0] < w[1]);
        let decreasing = r.vector.windows(2).all(|w| w[0] > w[1]);
        assert!(increasing || decreasing, "{:?}", r.vector);
    }

    #[test]
    fn cycle_fiedler_value() {
        // λ₂(Cₙ) = 2(1 − cos(2π/n)).
        let n = 20;
        let g = generators::cycle(n);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        let expect = 2.0 * (1.0 - (2.0 * std::f64::consts::PI / n as f64).cos());
        assert!((r.value - expect).abs() < 1e-5, "{} vs {expect}", r.value);
    }

    #[test]
    fn complete_graph_lambda2_equals_n() {
        // λ₂(Kₙ) = n (with multiplicity n−1).
        let g = generators::complete(9);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        assert!((r.value - 9.0).abs() < 1e-6, "{}", r.value);
    }

    #[test]
    fn vector_orthogonal_to_ones_and_unit() {
        let g = generators::grid(6, 7);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        let sum: f64 = r.vector.iter().sum();
        assert!(sum.abs() < 1e-8);
        let norm: f64 = r.vector.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-8);
    }

    #[test]
    fn grid_fiedler_splits_long_axis() {
        // On a 4×12 grid the Fiedler vector varies along the long axis:
        // the sign pattern separates left half from right half.
        let g = generators::grid(4, 12);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        let sign_of = |c: usize| {
            let mut s = 0.0;
            for row in 0..4 {
                s += r.vector[row * 12 + c];
            }
            s
        };
        assert!(
            sign_of(0) * sign_of(11) < 0.0,
            "ends must have opposite sign"
        );
        // Columns sorted by value should be monotone in column index or its
        // reverse; just check the middle splits the ends.
        assert!(sign_of(0).abs() > sign_of(5).abs() * 0.5);
    }

    #[test]
    fn disconnected_graph_yields_near_zero_lambda2() {
        let g = igp_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let r = fiedler_vector(&g, FiedlerOptions::default());
        assert!(
            r.value.abs() < 1e-8,
            "λ₂ of a disconnected graph is 0, got {}",
            r.value
        );
    }
}
