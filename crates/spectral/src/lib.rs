//! # igp-spectral — the Recursive Spectral Bisection baseline
//!
//! The paper benchmarks its incremental partitioner against **Recursive
//! Spectral Bisection** (RSB, Pothen–Simon–Liou 1990) applied from scratch,
//! "regarded as one of the best-known methods for graph partitioning".
//! This crate implements RSB from first principles:
//!
//! * [`laplacian`] — graph Laplacian operator (matrix-free matvec).
//! * [`lanczos`] — Lanczos iteration with full reorthogonalization and
//!   constant-vector deflation to extract the **Fiedler vector** (the
//!   eigenvector of the second-smallest Laplacian eigenvalue).
//! * [`tridiag`] — implicit-shift QL eigensolver for the symmetric
//!   tridiagonal Rayleigh–Ritz systems Lanczos produces.
//! * [`rsb`] — the recursive driver: sort by Fiedler value, split at the
//!   weighted median, recurse; handles disconnected subgraphs and
//!   arbitrary (non-power-of-two) partition counts.
//! * [`rcb`] — recursive coordinate bisection, a cheaper geometric
//!   baseline used in ablations (the paper's introduction lists it among
//!   the standard heuristics).
//!
//! ```
//! use igp_graph::{generators, metrics::CutMetrics};
//! use igp_spectral::{recursive_spectral_bisection, RsbOptions};
//!
//! // Bisecting an 8×16 grid: the spectral cut is (near-)optimal: 8 edges.
//! let g = generators::grid(8, 16);
//! let part = recursive_spectral_bisection(&g, 2, RsbOptions::default());
//! let cut = CutMetrics::compute(&g, &part).total_cut_edges;
//! assert!(cut <= 12);
//! assert_eq!(part.count(0), 64);
//! ```

pub mod lanczos;
pub mod laplacian;
pub mod rcb;
pub mod rsb;
pub mod tridiag;

pub use lanczos::{fiedler_vector, FiedlerOptions};
pub use rcb::recursive_coordinate_bisection;
pub use rsb::{recursive_spectral_bisection, RsbOptions};
