//! Symmetric tridiagonal eigensolver (implicit-shift QL).
//!
//! Lanczos reduces the Laplacian to a small symmetric tridiagonal matrix
//! `T(α, β)`; this module diagonalizes it completely — the classic `tqli`
//! algorithm with Wilkinson shifts, accumulating the rotations so Ritz
//! vectors can be reconstructed.

/// Eigen-decomposition of a symmetric tridiagonal matrix.
#[derive(Clone, Debug)]
pub struct TridiagEigen {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// `vectors[k]` is the (unit) eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Diagonalize `T` with diagonal `alpha` (length `m`) and sub-diagonal
/// `beta` (length `m − 1`). Panics on m = 0 or non-convergence (> 50
/// sweeps per eigenvalue, which does not occur for Lanczos matrices).
pub fn eigen_tridiag(alpha: &[f64], beta: &[f64]) -> TridiagEigen {
    let m = alpha.len();
    assert!(m > 0, "empty tridiagonal matrix");
    assert_eq!(beta.len(), m.saturating_sub(1), "beta length must be m-1");
    let mut d = alpha.to_vec();
    // e[i] holds the sub-diagonal in slot i (shifted by one vs. input),
    // with a zero sentinel at the end — the NR `tqli` convention.
    let mut e = vec![0.0; m];
    e[..m - 1].copy_from_slice(beta);
    // z accumulates rotations; starts as identity (row-major z[i][k]:
    // component i of eigenvector k).
    let mut z = vec![vec![0.0; m]; m];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..m {
        let mut iter = 0;
        loop {
            // Find a negligible sub-diagonal element.
            let mut mm = l;
            while mm + 1 < m {
                let dd = d[mm].abs() + d[mm + 1].abs();
                if e[mm].abs() <= f64::EPSILON * dd {
                    break;
                }
                mm += 1;
            }
            if mm == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tqli failed to converge");
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[mm] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..mm).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[mm] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && mm > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[mm] = 0.0;
        }
    }

    // Sort ascending, carrying eigenvectors.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&k| d[k]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&k| (0..m).map(|i| z[i][k]).collect())
        .collect();
    TridiagEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(alpha: &[f64], beta: &[f64], eig: &TridiagEigen) {
        let m = alpha.len();
        for (k, (&lam, v)) in eig.values.iter().zip(&eig.vectors).enumerate() {
            // T v = λ v
            for i in 0..m {
                let mut tv = alpha[i] * v[i];
                if i > 0 {
                    tv += beta[i - 1] * v[i - 1];
                }
                if i + 1 < m {
                    tv += beta[i] * v[i + 1];
                }
                assert!(
                    (tv - lam * v[i]).abs() < 1e-9,
                    "eigenpair {k}: residual {} at row {i}",
                    tv - lam * v[i]
                );
            }
            // Unit norm.
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
        // Ascending.
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn one_by_one() {
        let eig = eigen_tridiag(&[7.0], &[]);
        assert_eq!(eig.values, vec![7.0]);
        assert_eq!(eig.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] → eigenvalues 1 and 3.
        let eig = eigen_tridiag(&[2.0, 2.0], &[1.0]);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_decomposition(&[2.0, 2.0], &[1.0], &eig);
    }

    #[test]
    fn path_laplacian_eigenvalues() {
        // Path P4 Laplacian is tridiagonal: diag [1,2,2,1], off [-1,-1,-1].
        // Eigenvalues: 2 - 2cos(kπ/4), k = 0..3 → 0, 2−√2, 2, 2+√2.
        let alpha = [1.0, 2.0, 2.0, 1.0];
        let beta = [-1.0, -1.0, -1.0];
        let eig = eigen_tridiag(&alpha, &beta);
        let expect = [0.0, 2.0 - 2f64.sqrt(), 2.0, 2.0 + 2f64.sqrt()];
        for (got, want) in eig.values.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        check_decomposition(&alpha, &beta, &eig);
    }

    #[test]
    fn diagonal_matrix_sorted() {
        let eig = eigen_tridiag(&[5.0, -1.0, 3.0], &[0.0, 0.0]);
        assert_eq!(eig.values, vec![-1.0, 3.0, 5.0]);
        check_decomposition(&[5.0, -1.0, 3.0], &[0.0, 0.0], &eig);
    }

    #[test]
    fn random_matrices_validate() {
        // Small LCG-driven random tridiagonal systems.
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / ((1u64 << 53) as f64) * 4.0 - 2.0
        };
        for m in [2usize, 3, 5, 8, 13, 21] {
            let alpha: Vec<f64> = (0..m).map(|_| next()).collect();
            let beta: Vec<f64> = (0..m - 1).map(|_| next()).collect();
            let eig = eigen_tridiag(&alpha, &beta);
            check_decomposition(&alpha, &beta, &eig);
            // Trace preserved.
            let tr: f64 = alpha.iter().sum();
            let ev: f64 = eig.values.iter().sum();
            assert!((tr - ev).abs() < 1e-8);
        }
    }
}
