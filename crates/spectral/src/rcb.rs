//! Recursive Coordinate Bisection (geometric baseline).
//!
//! When vertex coordinates are available (mesh node graphs), RCB splits
//! along the longer bounding-box axis at the median. It is far cheaper
//! than RSB but blind to connectivity — the paper's introduction lists it
//! among the standard heuristics; we use it as an ablation baseline.

use igp_graph::{CsrGraph, NodeId, PartId, Partitioning};

/// Partition by recursive coordinate bisection. `coords[v] = (x, y)`.
pub fn recursive_coordinate_bisection(
    graph: &CsrGraph,
    coords: &[(f64, f64)],
    p: usize,
) -> Partitioning {
    assert_eq!(coords.len(), graph.num_vertices(), "coords length mismatch");
    assert!(p >= 1);
    let mut assign: Vec<PartId> = vec![0; graph.num_vertices()];
    let all: Vec<NodeId> = graph.vertices().collect();
    let mut next: PartId = 0;
    rcb(coords, all, p, &mut next, &mut assign);
    Partitioning::from_assignment(graph, p, assign)
}

fn rcb(
    coords: &[(f64, f64)],
    mut verts: Vec<NodeId>,
    parts: usize,
    next: &mut PartId,
    assign: &mut [PartId],
) {
    if parts == 1 {
        let label = *next;
        *next += 1;
        for v in verts {
            assign[v as usize] = label;
        }
        return;
    }
    let p_left = parts / 2;
    let target_left = verts.len() * p_left / parts;
    // Pick the wider axis.
    let (mut minx, mut maxx, mut miny, mut maxy) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &v in &verts {
        let (x, y) = coords[v as usize];
        minx = minx.min(x);
        maxx = maxx.max(x);
        miny = miny.min(y);
        maxy = maxy.max(y);
    }
    let use_x = (maxx - minx) >= (maxy - miny);
    verts.sort_by(|&a, &b| {
        let ka = if use_x {
            coords[a as usize].0
        } else {
            coords[a as usize].1
        };
        let kb = if use_x {
            coords[b as usize].0
        } else {
            coords[b as usize].1
        };
        ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
    });
    let right = verts.split_off(target_left);
    rcb(coords, verts, p_left, next, assign);
    rcb(coords, right, parts - p_left, next, assign);
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;
    use igp_graph::metrics::CutMetrics;

    fn grid_coords(rows: usize, cols: usize) -> Vec<(f64, f64)> {
        let mut c = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for col in 0..cols {
                c.push((col as f64, r as f64));
            }
        }
        c
    }

    #[test]
    fn grid_split_matches_geometry() {
        let g = generators::grid(8, 16);
        let coords = grid_coords(8, 16);
        let part = recursive_coordinate_bisection(&g, &coords, 2);
        let m = CutMetrics::compute(&g, &part);
        assert_eq!(m.total_cut_edges, 8); // clean vertical cut
        assert_eq!(part.count(0), 64);
        assert_eq!(part.count(1), 64);
    }

    #[test]
    fn four_way_balanced() {
        let g = generators::grid(8, 8);
        let part = recursive_coordinate_bisection(&g, &grid_coords(8, 8), 4);
        assert!(part.counts().iter().all(|&c| c == 16));
    }

    #[test]
    fn odd_part_count() {
        let g = generators::grid(6, 5);
        let part = recursive_coordinate_bisection(&g, &grid_coords(6, 5), 3);
        assert_eq!(part.num_parts(), 3);
        let (min, max) = (
            part.counts().iter().min().unwrap(),
            part.counts().iter().max().unwrap(),
        );
        assert!(max - min <= 1, "{:?}", part.counts());
    }
}
