//! Recursive Spectral Bisection (the from-scratch baseline, paper "SB").
//!
//! Each recursion level extracts the induced subgraph, computes its
//! Fiedler vector, sorts vertices by Fiedler value and splits at the
//! position proportional to the partition counts assigned to each side
//! (supporting non-power-of-two `P`). Disconnected subgraphs are handled
//! by concatenating components before the split, which keeps whole
//! components together whenever sizes allow.

use crate::lanczos::{fiedler_vector, FiedlerOptions};
use igp_graph::traversal::connected_components;
use igp_graph::{CsrGraph, NodeId, PartId, Partitioning};

/// RSB options.
#[derive(Clone, Copy, Debug, Default)]
pub struct RsbOptions {
    /// Fiedler solver parameters.
    pub fiedler: FiedlerOptions,
}

/// Partition `graph` into `p` parts by recursive spectral bisection.
pub fn recursive_spectral_bisection(graph: &CsrGraph, p: usize, opts: RsbOptions) -> Partitioning {
    assert!(p >= 1, "need at least one partition");
    let n = graph.num_vertices();
    let mut assign: Vec<PartId> = vec![0; n];
    let all: Vec<NodeId> = graph.vertices().collect();
    let mut next_part: PartId = 0;
    bisect(graph, &all, p, &mut next_part, &mut assign, &opts);
    debug_assert_eq!(next_part as usize, p);
    Partitioning::from_assignment(graph, p, assign)
}

/// Recursively assign `verts` to `parts` partition labels starting at
/// `next_part`.
fn bisect(
    graph: &CsrGraph,
    verts: &[NodeId],
    parts: usize,
    next_part: &mut PartId,
    assign: &mut [PartId],
    opts: &RsbOptions,
) {
    if parts == 1 {
        let label = *next_part;
        *next_part += 1;
        for &v in verts {
            assign[v as usize] = label;
        }
        return;
    }
    let p_left = parts / 2;
    let p_right = parts - p_left;
    // Target left share, proportional to partition counts.
    let target_left = verts.len() * p_left / parts;
    let order = split_order(graph, verts, opts);
    let (left, right) = order.split_at(target_left.min(order.len()));
    bisect(graph, left, p_left, next_part, assign, opts);
    bisect(graph, right, p_right, next_part, assign, opts);
}

/// Order `verts` so that a prefix/suffix split is a spectral bisection:
/// Fiedler order for connected subgraphs, component-concatenated Fiedler
/// order otherwise.
fn split_order(graph: &CsrGraph, verts: &[NodeId], opts: &RsbOptions) -> Vec<NodeId> {
    if verts.len() <= 2 {
        return verts.to_vec();
    }
    let (sub, back) = {
        let mut sorted = verts.to_vec();
        sorted.sort_unstable();
        graph.induced_subgraph(&sorted)
    };
    let (ncomp, comp) = connected_components(&sub);
    if ncomp == 1 {
        let fied = fiedler_vector(&sub, opts.fiedler);
        let mut idx: Vec<u32> = (0..sub.num_vertices() as u32).collect();
        idx.sort_by(|&a, &b| {
            fied.vector[a as usize]
                .partial_cmp(&fied.vector[b as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        idx.into_iter().map(|i| back[i as usize]).collect()
    } else {
        // Concatenate components largest-first; within a component keep
        // local Fiedler order when it is big enough to matter.
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
        for (i, &c) in comp.iter().enumerate() {
            groups[c as usize].push(i as u32);
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        let mut out = Vec::with_capacity(verts.len());
        for g in groups {
            if g.len() > 8 {
                let members: Vec<NodeId> = g.iter().map(|&i| back[i as usize]).collect();
                let mut sorted = members.clone();
                sorted.sort_unstable();
                let inner = split_order(graph, &sorted, opts);
                out.extend(inner);
            } else {
                out.extend(g.iter().map(|&i| back[i as usize]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;
    use igp_graph::metrics::CutMetrics;

    fn balanced(p: &Partitioning) -> bool {
        let max = *p.counts().iter().max().unwrap();
        let min = *p.counts().iter().min().unwrap();
        (max - min) as usize <= 1 + p.num_vertices() / (p.num_parts() * 16)
    }

    #[test]
    fn grid_two_way_cut_is_short_axis() {
        // 8×16 grid split in two: optimal cut = 8 (a vertical line).
        let g = generators::grid(8, 16);
        let part = recursive_spectral_bisection(&g, 2, RsbOptions::default());
        assert!(balanced(&part));
        let m = CutMetrics::compute(&g, &part);
        assert!(
            m.total_cut_edges <= 12,
            "cut {} too large",
            m.total_cut_edges
        );
    }

    #[test]
    fn grid_four_way() {
        let g = generators::grid(12, 12);
        let part = recursive_spectral_bisection(&g, 4, RsbOptions::default());
        assert!(balanced(&part));
        let m = CutMetrics::compute(&g, &part);
        // Optimal 4-way cut of a 12×12 grid is 24; allow slack.
        assert!(m.total_cut_edges <= 40, "cut {}", m.total_cut_edges);
    }

    #[test]
    fn non_power_of_two_parts() {
        let g = generators::grid(9, 10);
        let part = recursive_spectral_bisection(&g, 3, RsbOptions::default());
        assert_eq!(part.num_parts(), 3);
        assert!(balanced(&part), "counts {:?}", part.counts());
    }

    #[test]
    fn single_part_trivial() {
        let g = generators::cycle(10);
        let part = recursive_spectral_bisection(&g, 1, RsbOptions::default());
        assert_eq!(part.count(0), 10);
    }

    #[test]
    fn path_bisection_cuts_middle() {
        let g = generators::path(32);
        let part = recursive_spectral_bisection(&g, 2, RsbOptions::default());
        let m = CutMetrics::compute(&g, &part);
        assert_eq!(m.total_cut_edges, 1);
        assert!(balanced(&part));
        // Contiguity: part of v should equal part of v+1 except at one spot.
        let changes = (0..31)
            .filter(|&v| part.part_of(v) != part.part_of(v + 1))
            .count();
        assert_eq!(changes, 1);
    }

    #[test]
    fn disconnected_graph_keeps_components_together() {
        // Two disjoint 8-cycles → 2 parts should align with components.
        let mut edges = Vec::new();
        for i in 0..8u32 {
            edges.push((i, (i + 1) % 8));
            edges.push((8 + i, 8 + (i + 1) % 8));
        }
        let g = CsrGraph::from_edges(16, &edges);
        let part = recursive_spectral_bisection(&g, 2, RsbOptions::default());
        let m = CutMetrics::compute(&g, &part);
        assert_eq!(m.total_cut_edges, 0, "components should not be split");
        assert!(balanced(&part));
    }

    #[test]
    fn partition_count_exact_for_many_parts() {
        let g = generators::grid(16, 16);
        let part = recursive_spectral_bisection(&g, 8, RsbOptions::default());
        assert_eq!(part.num_parts(), 8);
        // Every part non-empty and balanced.
        assert!(part.counts().iter().all(|&c| c == 32));
    }

    #[test]
    fn deterministic() {
        let g = generators::grid(10, 10);
        let a = recursive_spectral_bisection(&g, 4, RsbOptions::default());
        let b = recursive_spectral_bisection(&g, 4, RsbOptions::default());
        assert_eq!(a.assignment(), b.assignment());
    }
}
