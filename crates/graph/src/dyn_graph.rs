//! Mutable adjacency-list graphs for building incremental sequences.
//!
//! [`DynGraph`] is the construction-time representation: the mesh layer
//! mutates it while refining, and [`DynGraph::snapshot`] freezes it into a
//! [`CsrGraph`] for the partitioner. Vertex ids are stable across edits;
//! deleting a vertex leaves a tombstone slot (compacted only at snapshot
//! time, with an id map returned so callers can track identity).

use crate::csr::{CsrBuilder, CsrGraph};
use crate::{NodeId, Weight};

/// A mutable undirected graph with stable vertex identifiers.
#[derive(Clone, Debug, Default)]
pub struct DynGraph {
    /// Per-slot adjacency (sorted). `None` = deleted / never-created slot.
    adj: Vec<Option<Vec<(NodeId, Weight)>>>,
    vwgt: Vec<Weight>,
    live: usize,
    num_edges: usize,
}

impl DynGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph with `n` isolated live vertices `0..n`.
    pub fn with_vertices(n: usize) -> Self {
        DynGraph {
            adj: (0..n).map(|_| Some(Vec::new())).collect(),
            vwgt: vec![1; n],
            live: n,
            num_edges: 0,
        }
    }

    /// Import from a CSR graph (ids preserved).
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut dg = DynGraph::with_vertices(n);
        for v in g.vertices() {
            dg.vwgt[v as usize] = g.vertex_weight(v);
            dg.adj[v as usize] = Some(g.edges_of(v).collect());
        }
        dg.num_edges = g.num_edges();
        dg
    }

    /// Number of live vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.live
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Highest slot id ever allocated (live or deleted).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.adj.len()
    }

    /// True if `v` denotes a live vertex.
    #[inline]
    pub fn is_live(&self, v: NodeId) -> bool {
        (v as usize) < self.adj.len() && self.adj[v as usize].is_some()
    }

    /// Append a new isolated vertex with weight `w`; returns its id.
    pub fn add_vertex(&mut self, w: Weight) -> NodeId {
        let id = self.adj.len() as NodeId;
        self.adj.push(Some(Vec::new()));
        self.vwgt.push(w);
        self.live += 1;
        id
    }

    /// Delete vertex `v` and all incident edges.
    pub fn remove_vertex(&mut self, v: NodeId) {
        let nbrs: Vec<NodeId> = self.adj[v as usize]
            .as_ref()
            .expect("remove_vertex: vertex not live")
            .iter()
            .map(|&(u, _)| u)
            .collect();
        for u in nbrs {
            self.remove_edge(v, u);
        }
        self.adj[v as usize] = None;
        self.live -= 1;
    }

    /// Add the undirected edge `{u, v}` with weight `w`.
    /// Panics if either endpoint is dead, on self-loops, or if the edge exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(u != v, "self loop {u}");
        assert!(
            self.is_live(u) && self.is_live(v),
            "add_edge on dead vertex"
        );
        Self::insert_half(self.adj[u as usize].as_mut().unwrap(), v, w);
        Self::insert_half(self.adj[v as usize].as_mut().unwrap(), u, w);
        self.num_edges += 1;
    }

    /// Add `{u, v}` if absent; returns true if it was inserted.
    pub fn add_edge_if_absent(&mut self, u: NodeId, v: NodeId, w: Weight) -> bool {
        if self.has_edge(u, v) {
            false
        } else {
            self.add_edge(u, v, w);
            true
        }
    }

    fn insert_half(list: &mut Vec<(NodeId, Weight)>, v: NodeId, w: Weight) {
        match list.binary_search_by_key(&v, |&(x, _)| x) {
            Ok(_) => panic!("duplicate edge to {v}"),
            Err(pos) => list.insert(pos, (v, w)),
        }
    }

    /// Remove the undirected edge `{u, v}`. Panics if absent.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        Self::remove_half(self.adj[u as usize].as_mut().expect("dead vertex"), v);
        Self::remove_half(self.adj[v as usize].as_mut().expect("dead vertex"), u);
        self.num_edges -= 1;
    }

    fn remove_half(list: &mut Vec<(NodeId, Weight)>, v: NodeId) {
        let pos = list
            .binary_search_by_key(&v, |&(x, _)| x)
            .unwrap_or_else(|_| panic!("edge to {v} absent"));
        list.remove(pos);
    }

    /// True if the edge `{u, v}` exists (false if either endpoint is dead).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        match self.adj.get(u as usize).and_then(|s| s.as_ref()) {
            Some(list) => list.binary_search_by_key(&v, |&(x, _)| x).is_ok(),
            None => false,
        }
    }

    /// Degree of live vertex `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].as_ref().expect("dead vertex").len()
    }

    /// Neighbour/weight pairs of live vertex `v` (sorted by neighbour id).
    pub fn edges_of(&self, v: NodeId) -> &[(NodeId, Weight)] {
        self.adj[v as usize].as_ref().expect("dead vertex")
    }

    /// Iterate live vertex ids in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i as NodeId)
    }

    /// Weight of live vertex `v`.
    pub fn vertex_weight(&self, v: NodeId) -> Weight {
        debug_assert!(self.is_live(v));
        self.vwgt[v as usize]
    }

    /// Freeze into a CSR snapshot.
    ///
    /// Returns `(graph, new_of_slot)`. **Mapping direction:** the map is
    /// indexed by *slot* and yields the *CSR id* — `new_of_slot[slot] ==
    /// csr_id` for live slots, [`crate::INVALID_NODE`] for tombstoned or
    /// never-created slots; it is *not* the CSR-id → slot direction (its
    /// length is [`DynGraph::slot_count`], not
    /// [`CsrGraph::num_vertices`]). Live vertices are renumbered
    /// compactly in increasing **slot** order — tombstones shift every
    /// higher slot down, so after interleaved add/delete a slot's CSR id
    /// is its rank among live slots, regardless of creation or deletion
    /// order. Because the order is by slot, an append-only history keeps
    /// identical prefixes — exactly the identity model
    /// [`crate::IncrementalGraph`] (and
    /// [`crate::IncrementalGraph::from_snapshots`], which matches two
    /// snapshots by shared slot) relies on.
    pub fn snapshot(&self) -> (CsrGraph, Vec<NodeId>) {
        let mut new_of_slot = vec![crate::INVALID_NODE; self.adj.len()];
        let mut next: NodeId = 0;
        for (slot, s) in self.adj.iter().enumerate() {
            if s.is_some() {
                new_of_slot[slot] = next;
                next += 1;
            }
        }
        let mut b = CsrBuilder::with_edge_capacity(self.live, self.num_edges);
        for (slot, s) in self.adj.iter().enumerate() {
            if let Some(list) = s {
                let u = new_of_slot[slot];
                b.set_vertex_weight(u, self.vwgt[slot]);
                for &(nbr, w) in list {
                    let v = new_of_slot[nbr as usize];
                    if u < v {
                        b.add_edge(u, v, w);
                    }
                }
            }
        }
        (b.build(), new_of_slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INVALID_NODE;

    #[test]
    fn build_and_snapshot() {
        let mut g = DynGraph::with_vertices(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 3);
        assert_eq!(g.num_edges(), 2);
        let (csr, map) = g.snapshot();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 2);
        assert_eq!(csr.edge_weight(1, 2), Some(3));
        assert_eq!(map, vec![0, 1, 2]);
        csr.validate().unwrap();
    }

    #[test]
    fn add_remove_vertex_renumbers() {
        let mut g = DynGraph::with_vertices(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.remove_vertex(1);
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0);
        let v = g.add_vertex(5);
        assert_eq!(v, 3);
        g.add_edge(0, 3, 2);
        let (csr, map) = g.snapshot();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(map[0], 0);
        assert_eq!(map[1], INVALID_NODE);
        assert_eq!(map[2], 1);
        assert_eq!(map[3], 2);
        assert_eq!(csr.edge_weight(0, 2), Some(2));
        assert_eq!(csr.vertex_weight(2), 5);
        csr.validate().unwrap();
    }

    /// Regression pin for the snapshot id-map contract under interleaved
    /// add/delete: tombstones compact by *slot rank*, the map direction
    /// is slot → CSR id, and two snapshots of one history pair up
    /// correctly through `IncrementalGraph::from_snapshots`.
    #[test]
    fn snapshot_map_contract_after_interleaved_churn() {
        let mut g = DynGraph::with_vertices(4); // slots 0..4
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let (old_csr, old_map) = g.snapshot();

        // Interleave: delete 1, add slot 4, delete 3, add slot 5,
        // re-delete and re-create around the tombstones.
        g.remove_vertex(1);
        let s4 = g.add_vertex(7);
        assert_eq!(s4, 4);
        g.remove_vertex(3);
        let s5 = g.add_vertex(9);
        assert_eq!(s5, 5);
        g.add_edge(0, 4, 2);
        g.add_edge(4, 5, 3);
        g.remove_vertex(4); // tombstone a vertex created *after* others died
        let s6 = g.add_vertex(11);
        assert_eq!(s6, 6);
        g.add_edge(2, 6, 5);

        let (csr, map) = g.snapshot();
        // Live slots: 0, 2, 5, 6 → CSR ids by slot rank.
        assert_eq!(map.len(), g.slot_count());
        assert_eq!(
            map,
            vec![0, INVALID_NODE, 1, INVALID_NODE, INVALID_NODE, 2, 3]
        );
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.vertex_weight(2), 9); // slot 5
        assert_eq!(csr.vertex_weight(3), 11); // slot 6
        assert_eq!(csr.edge_weight(1, 3), Some(5)); // slots 2–6
        assert_eq!(csr.num_edges(), 1); // 0–1 died with slot 1; 0–4/4–5 with slot 4
        csr.validate().unwrap();
        // The inverse direction (CSR id → slot) is recovered by scanning:
        // each live slot appears exactly once, in increasing CSR order.
        let live: Vec<usize> = map
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != INVALID_NODE)
            .map(|(s, _)| s)
            .collect();
        for (csr_id, &slot) in live.iter().enumerate() {
            assert_eq!(map[slot], csr_id as NodeId);
        }
        // Pairing the two snapshots: survivors are slots 0 and 2.
        let inc = crate::IncrementalGraph::from_snapshots(old_csr, &old_map, csr, &map);
        assert_eq!(inc.num_survivors(), 2);
        assert_eq!(inc.removed_vertices(), vec![1, 3]);
        assert_eq!(inc.old_of_new(0), 0);
        assert_eq!(inc.old_of_new(1), 2);
        assert_eq!(inc.added_vertices(), vec![2, 3]);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = DynGraph::with_vertices(2);
        g.add_edge(0, 1, 1);
        g.remove_edge(1, 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    fn add_edge_if_absent() {
        let mut g = DynGraph::with_vertices(2);
        assert!(g.add_edge_if_absent(0, 1, 1));
        assert!(!g.add_edge_if_absent(1, 0, 1));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn from_csr_roundtrip() {
        let csr = CsrGraph::from_weighted_edges(4, &[(0, 1, 2), (2, 3, 4), (0, 3, 7)]);
        let g = DynGraph::from_csr(&csr);
        let (back, map) = g.snapshot();
        assert_eq!(back, csr);
        assert_eq!(map, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = DynGraph::with_vertices(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 1);
    }

    #[test]
    fn vertices_iterator_skips_dead() {
        let mut g = DynGraph::with_vertices(4);
        g.remove_vertex(2);
        let live: Vec<NodeId> = g.vertices().collect();
        assert_eq!(live, vec![0, 1, 3]);
    }
}
