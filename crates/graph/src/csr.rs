//! Immutable compressed-sparse-row (CSR) undirected graphs.
//!
//! A [`CsrGraph`] stores each undirected edge twice (once per endpoint) in
//! flat arrays, which is the layout every phase of the partitioner scans:
//! assignment BFS, layering BFS, boundary classification and refinement all
//! iterate neighbour lists linearly.

use crate::{NodeId, Weight};

/// An immutable undirected graph in CSR form.
///
/// Invariants (checked by [`CsrGraph::validate`], enforced by the builder):
/// * `xadj.len() == n + 1`, `xadj[0] == 0`, `xadj` non-decreasing.
/// * `adj.len() == ewgt.len() == xadj[n]` = 2·(number of undirected edges).
/// * adjacency is symmetric: `v ∈ adj(u)` ⇔ `u ∈ adj(v)`, with equal weight.
/// * no self-loops, no duplicate edges.
/// * neighbour lists are sorted ascending (enables binary-search `has_edge`
///   and deterministic iteration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<u32>,
    adj: Vec<NodeId>,
    ewgt: Vec<Weight>,
    vwgt: Vec<Weight>,
}

impl CsrGraph {
    /// The empty graph.
    pub fn empty() -> Self {
        CsrGraph {
            xadj: vec![0],
            adj: Vec::new(),
            ewgt: Vec::new(),
            vwgt: Vec::new(),
        }
    }

    /// Build from an undirected edge list with unit vertex and edge weights.
    ///
    /// Duplicate edges and self-loops are rejected with a panic — callers
    /// own deduplication (the builders in this workspace never produce
    /// them). Edges may be listed in either orientation.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = CsrBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v, 1);
        }
        b.build()
    }

    /// Build from an edge list with explicit edge weights (unit vertex weights).
    pub fn from_weighted_edges(n: usize, edges: &[(NodeId, NodeId, Weight)]) -> Self {
        let mut b = CsrBuilder::new(n);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.xadj[v as usize + 1] - self.xadj[v as usize]) as usize
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    /// Edge weights aligned with [`CsrGraph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: NodeId) -> &[Weight] {
        &self.ewgt[self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize]
    }

    /// Neighbour/weight pairs of `v`.
    #[inline]
    pub fn edges_of(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_weights(v).iter().copied())
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: NodeId) -> Weight {
        self.vwgt[v as usize]
    }

    /// All vertex weights.
    #[inline]
    pub fn vertex_weights(&self) -> &[Weight] {
        &self.vwgt
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> Weight {
        self.vwgt.iter().sum()
    }

    /// Replace the vertex weights (length must equal `num_vertices`).
    pub fn set_vertex_weights(&mut self, w: Vec<Weight>) {
        assert_eq!(
            w.len(),
            self.num_vertices(),
            "vertex weight length mismatch"
        );
        self.vwgt = w;
    }

    /// True if the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_weights(u)[i])
    }

    /// Iterate over every vertex id.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_vertices() as NodeId
    }

    /// Iterate each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.edges_of(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Raw CSR offsets (length `n + 1`); useful for external solvers.
    #[inline]
    pub fn xadj(&self) -> &[u32] {
        &self.xadj
    }

    /// Raw adjacency array (length `2m`).
    #[inline]
    pub fn adjacency(&self) -> &[NodeId] {
        &self.adj
    }

    /// Extract the vertex-induced subgraph on `keep` (which must be sorted,
    /// deduplicated and in range). Returns the subgraph plus the mapping
    /// from subgraph ids back to original ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
        debug_assert!(
            keep.windows(2).all(|w| w[0] < w[1]),
            "keep must be sorted+unique"
        );
        let n = self.num_vertices();
        let mut local = vec![u32::MAX; n];
        for (i, &v) in keep.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut b = CsrBuilder::new(keep.len());
        for (i, &v) in keep.iter().enumerate() {
            b.set_vertex_weight(i as NodeId, self.vertex_weight(v));
            for (u, w) in self.edges_of(v) {
                let lu = local[u as usize];
                if lu != u32::MAX && (i as u32) < lu {
                    b.add_edge(i as NodeId, lu, w);
                }
            }
        }
        (b.build(), keep.to_vec())
    }

    /// Check every structural invariant; returns a description of the first
    /// violation. Intended for tests and debug assertions, not hot paths.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.xadj[0] != 0 {
            return Err("xadj[0] != 0".into());
        }
        if self.adj.len() != *self.xadj.last().unwrap() as usize {
            return Err("adj length mismatch".into());
        }
        if self.ewgt.len() != self.adj.len() {
            return Err("ewgt length mismatch".into());
        }
        if self.vwgt.len() != n {
            return Err("vwgt length mismatch".into());
        }
        for v in 0..n {
            if self.xadj[v] > self.xadj[v + 1] {
                return Err(format!("xadj decreasing at {v}"));
            }
            let nbrs = self.neighbors(v as NodeId);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("neighbours of {v} not sorted+unique"));
                }
            }
            for (&u, &w) in nbrs.iter().zip(self.edge_weights(v as NodeId)) {
                if u as usize >= n {
                    return Err(format!("edge target {u} out of range"));
                }
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
                match self.edge_weight(u, v as NodeId) {
                    Some(wr) if wr == w => {}
                    Some(_) => return Err(format!("asymmetric weight on {{{v},{u}}}")),
                    None => return Err(format!("missing reverse edge {{{u},{v}}}")),
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder producing a [`CsrGraph`].
///
/// Edges are buffered as oriented pairs and materialized (both directions,
/// sorted) by [`CsrBuilder::build`] with a counting-sort pass — O(n + m),
/// no hashing.
#[derive(Clone, Debug)]
pub struct CsrBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, Weight)>,
    vwgt: Vec<Weight>,
}

impl CsrBuilder {
    /// A builder for a graph of `n` vertices, unit vertex weights.
    pub fn new(n: usize) -> Self {
        CsrBuilder {
            n,
            edges: Vec::new(),
            vwgt: vec![1; n],
        }
    }

    /// Reserve space for `m` undirected edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Add the undirected edge `{u, v}` with weight `w`.
    ///
    /// Panics on self-loops or out-of-range endpoints. Duplicates are
    /// detected at `build` time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: Weight) {
        assert!(u != v, "self loop {u}");
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range"
        );
        self.edges.push((u, v, w));
    }

    /// Set the weight of vertex `v`.
    pub fn set_vertex_weight(&mut self, v: NodeId, w: Weight) {
        self.vwgt[v as usize] = w;
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Materialize the CSR graph. Panics on duplicate edges.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        let mut deg = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let xadj = deg.clone();
        let total = xadj[n] as usize;
        let mut adj = vec![0 as NodeId; total];
        let mut ewgt = vec![0 as Weight; total];
        let mut cursor = xadj.clone();
        for &(u, v, w) in &self.edges {
            let cu = &mut cursor[u as usize];
            adj[*cu as usize] = v;
            ewgt[*cu as usize] = w;
            *cu += 1;
            let cv = &mut cursor[v as usize];
            adj[*cv as usize] = u;
            ewgt[*cv as usize] = w;
            *cv += 1;
        }
        // Sort each neighbour list (typically tiny: mesh degree ≈ 6) and
        // check for duplicates.
        let mut scratch: Vec<(NodeId, Weight)> = Vec::new();
        for v in 0..n {
            let lo = xadj[v] as usize;
            let hi = xadj[v + 1] as usize;
            scratch.clear();
            scratch.extend(
                adj[lo..hi]
                    .iter()
                    .copied()
                    .zip(ewgt[lo..hi].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(u, _)| u);
            for w in scratch.windows(2) {
                assert!(w[0].0 != w[1].0, "duplicate edge {{{v},{}}}", w[0].0);
            }
            for (i, &(u, w)) in scratch.iter().enumerate() {
                adj[lo + i] = u;
                ewgt[lo + i] = w;
            }
        }
        CsrGraph {
            xadj,
            adj,
            ewgt,
            vwgt: self.vwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 0));
        g.validate().unwrap();
    }

    #[test]
    fn weighted_edges_roundtrip() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 5), (1, 2, 7), (3, 0, 2)]);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
        assert_eq!(g.edge_weight(0, 3), Some(2));
        assert_eq!(g.edge_weight(0, 2), None);
        g.validate().unwrap();
    }

    #[test]
    fn vertex_weights() {
        let mut b = CsrBuilder::new(3);
        b.add_edge(0, 1, 1);
        b.set_vertex_weight(2, 10);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 1);
        assert_eq!(g.vertex_weight(2), 10);
        assert_eq!(g.total_vertex_weight(), 12);
    }

    #[test]
    fn undirected_edges_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.undirected_edges().collect();
        assert_eq!(edges, vec![(0, 1, 1), (0, 2, 1), (1, 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn rejects_self_loop() {
        CsrGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
    }

    #[test]
    fn induced_subgraph_of_path() {
        // 0-1-2-3-4; keep {0,1,3,4} -> edges {0,1} and {3,4} only.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (sub, map) = g.induced_subgraph(&[0, 1, 3, 4]);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // 0-1
        assert!(sub.has_edge(2, 3)); // 3-4
        assert!(!sub.has_edge(1, 2));
        assert_eq!(map, vec![0, 1, 3, 4]);
        sub.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(4), &[] as &[NodeId]);
        g.validate().unwrap();
    }
}
