//! Partition assignments `M : V → P` with maintained per-partition loads.

use crate::csr::CsrGraph;
use crate::{NodeId, PartId, Weight, NO_PART};

/// A total assignment of vertices to `P` partitions, with per-partition
/// vertex counts and weights maintained incrementally under moves.
///
/// This is the object the paper's algorithm updates in place: phase 3 moves
/// `l_ij` vertices from partition `i` to `j`, phase 4 migrates boundary
/// vertices; both go through [`Partitioning::move_vertex`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    num_parts: usize,
    assign: Vec<PartId>,
    counts: Vec<u32>,
    weights: Vec<Weight>,
}

impl Partitioning {
    /// Wrap an existing assignment vector. Panics if any entry is out of
    /// range. `graph` supplies the vertex weights.
    pub fn from_assignment(graph: &CsrGraph, num_parts: usize, assign: Vec<PartId>) -> Self {
        assert_eq!(
            assign.len(),
            graph.num_vertices(),
            "assignment length mismatch"
        );
        let mut counts = vec![0u32; num_parts];
        let mut weights = vec![0 as Weight; num_parts];
        for (v, &p) in assign.iter().enumerate() {
            assert!(
                (p as usize) < num_parts,
                "vertex {v} assigned to invalid part {p}"
            );
            counts[p as usize] += 1;
            weights[p as usize] += graph.vertex_weight(v as NodeId);
        }
        Partitioning {
            num_parts,
            assign,
            counts,
            weights,
        }
    }

    /// Assign every vertex to partition 0 (useful as a degenerate baseline).
    pub fn all_in_one(graph: &CsrGraph, num_parts: usize) -> Self {
        Self::from_assignment(graph, num_parts, vec![0; graph.num_vertices()])
    }

    /// Round-robin assignment `v ↦ v mod P` (a deliberately bad baseline
    /// with terrible cut, used by tests and ablations).
    pub fn round_robin(graph: &CsrGraph, num_parts: usize) -> Self {
        let assign = (0..graph.num_vertices())
            .map(|v| (v % num_parts) as PartId)
            .collect();
        Self::from_assignment(graph, num_parts, assign)
    }

    /// Number of partitions `P`.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assign.len()
    }

    /// Partition of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: NodeId) -> PartId {
        self.assign[v as usize]
    }

    /// The raw assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[PartId] {
        &self.assign
    }

    /// Vertex count of partition `p` (the paper's `|B(p)|`).
    #[inline]
    pub fn count(&self, p: PartId) -> usize {
        self.counts[p as usize] as usize
    }

    /// Vertex-weight load of partition `p` (the paper's `W(p)`).
    #[inline]
    pub fn weight(&self, p: PartId) -> Weight {
        self.weights[p as usize]
    }

    /// All partition vertex counts.
    #[inline]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// All partition weights.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Move vertex `v` to partition `to`, maintaining loads.
    pub fn move_vertex(&mut self, graph: &CsrGraph, v: NodeId, to: PartId) {
        debug_assert!((to as usize) < self.num_parts);
        let from = self.assign[v as usize];
        if from == to {
            return;
        }
        let w = graph.vertex_weight(v);
        self.counts[from as usize] -= 1;
        self.weights[from as usize] -= w;
        self.counts[to as usize] += 1;
        self.weights[to as usize] += w;
        self.assign[v as usize] = to;
    }

    /// Average load `μ̄ = Σ|B(i)| / P` in vertex count.
    pub fn average_count(&self) -> f64 {
        self.assign.len() as f64 / self.num_parts as f64
    }

    /// Max/avg count imbalance ratio (1.0 = perfectly balanced).
    pub fn count_imbalance(&self) -> f64 {
        let max = *self.counts.iter().max().unwrap_or(&0) as f64;
        let avg = self.average_count();
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Max/avg weight imbalance ratio.
    pub fn weight_imbalance(&self) -> f64 {
        let max = *self.weights.iter().max().unwrap_or(&0) as f64;
        let total: Weight = self.weights.iter().sum();
        let avg = total as f64 / self.num_parts as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }

    /// Members of partition `p`, ascending.
    pub fn members(&self, p: PartId) -> Vec<NodeId> {
        self.assign
            .iter()
            .enumerate()
            .filter(|&(_, &q)| q == p)
            .map(|(v, _)| v as NodeId)
            .collect()
    }

    /// Member lists of all partitions in one pass.
    pub fn all_members(&self) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = (0..self.num_parts)
            .map(|p| Vec::with_capacity(self.counts[p] as usize))
            .collect();
        for (v, &p) in self.assign.iter().enumerate() {
            out[p as usize].push(v as NodeId);
        }
        out
    }

    /// True if `v` has a neighbour in a different partition.
    pub fn is_boundary(&self, graph: &CsrGraph, v: NodeId) -> bool {
        let p = self.assign[v as usize];
        graph
            .neighbors(v)
            .iter()
            .any(|&u| self.assign[u as usize] != p)
    }

    /// All boundary vertices, ascending.
    pub fn boundary_vertices(&self, graph: &CsrGraph) -> Vec<NodeId> {
        graph
            .vertices()
            .filter(|&v| self.is_boundary(graph, v))
            .collect()
    }

    /// The set of partitions adjacent to `p` (the paper's `Neighbor_p`).
    pub fn neighbor_parts(&self, graph: &CsrGraph, p: PartId) -> Vec<PartId> {
        let mut seen = vec![false; self.num_parts];
        for v in graph.vertices() {
            if self.assign[v as usize] != p {
                continue;
            }
            for &u in graph.neighbors(v) {
                let q = self.assign[u as usize];
                if q != p {
                    seen[q as usize] = true;
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(q, _)| q as PartId)
            .collect()
    }

    /// Check internal consistency (counts/weights match assignment).
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), String> {
        if self.assign.len() != graph.num_vertices() {
            return Err("assignment length mismatch".into());
        }
        let mut counts = vec![0u32; self.num_parts];
        let mut weights = vec![0 as Weight; self.num_parts];
        for (v, &p) in self.assign.iter().enumerate() {
            if p as usize >= self.num_parts {
                return Err(format!("vertex {v} in invalid part {p}"));
            }
            counts[p as usize] += 1;
            weights[p as usize] += graph.vertex_weight(v as NodeId);
        }
        if counts != self.counts {
            return Err("cached counts stale".into());
        }
        if weights != self.weights {
            return Err("cached weights stale".into());
        }
        Ok(())
    }
}

/// A *partial* assignment used mid-pipeline by phase 1: surviving vertices
/// carry their old partition, added vertices start as [`NO_PART`].
pub fn transfer_assignment(
    inc: &crate::IncrementalGraph,
    old_partitioning: &Partitioning,
) -> Vec<PartId> {
    let new_g = inc.new_graph();
    let mut assign = vec![NO_PART; new_g.num_vertices()];
    for v in new_g.vertices() {
        let old = inc.old_of_new(v);
        if old != crate::INVALID_NODE {
            assign[v as usize] = old_partitioning.part_of(old);
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::GraphDelta;

    fn cycle6() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    fn halves(g: &CsrGraph) -> Partitioning {
        Partitioning::from_assignment(g, 2, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn loads_maintained_by_moves() {
        let g = cycle6();
        let mut p = halves(&g);
        assert_eq!(p.count(0), 3);
        p.move_vertex(&g, 2, 1);
        assert_eq!(p.count(0), 2);
        assert_eq!(p.count(1), 4);
        assert_eq!(p.part_of(2), 1);
        p.validate(&g).unwrap();
        // Moving to the same partition is a no-op.
        p.move_vertex(&g, 2, 1);
        assert_eq!(p.count(1), 4);
    }

    #[test]
    fn boundary_detection_on_cycle() {
        let g = cycle6();
        let p = halves(&g);
        // Boundary vertices: 0 and 2 (adjacent to part 1), 3 and 5.
        assert_eq!(p.boundary_vertices(&g), vec![0, 2, 3, 5]);
        assert!(!p.is_boundary(&g, 1));
        assert!(!p.is_boundary(&g, 4));
    }

    #[test]
    fn neighbor_parts() {
        let g = cycle6();
        let p = halves(&g);
        assert_eq!(p.neighbor_parts(&g, 0), vec![1]);
        assert_eq!(p.neighbor_parts(&g, 1), vec![0]);
    }

    #[test]
    fn imbalance_ratios() {
        let g = cycle6();
        let p = Partitioning::from_assignment(&g, 3, vec![0, 0, 0, 0, 1, 2]);
        assert!((p.count_imbalance() - 2.0).abs() < 1e-12); // max 4 / avg 2
        assert!((p.average_count() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn members_listing() {
        let g = cycle6();
        let p = halves(&g);
        assert_eq!(p.members(1), vec![3, 4, 5]);
        let all = p.all_members();
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[1], vec![3, 4, 5]);
    }

    #[test]
    fn transfer_assignment_marks_new_vertices() {
        let g = cycle6();
        let p = halves(&g);
        let delta = GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(0, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let partial = transfer_assignment(&inc, &p);
        assert_eq!(partial[..6], [0, 0, 0, 1, 1, 1]);
        assert_eq!(partial[6], NO_PART);
    }

    #[test]
    fn transfer_assignment_skips_removed() {
        let g = cycle6();
        let p = halves(&g);
        let delta = GraphDelta {
            remove_vertices: vec![0],
            ..Default::default()
        };
        let inc = delta.apply(&g);
        let partial = transfer_assignment(&inc, &p);
        // New ids 0..5 map to old 1..6.
        assert_eq!(partial, vec![0, 0, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid part")]
    fn out_of_range_part_rejected() {
        let g = cycle6();
        Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 2]);
    }
}
