//! # igp-graph — graph substrate for incremental graph partitioning
//!
//! This crate provides every graph-side building block needed by the
//! Ou & Ranka SC'94 incremental graph partitioner:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row
//!   undirected graph with integer vertex and edge weights.
//! * [`DynGraph`] — a mutable adjacency-list graph supporting incremental
//!   vertex/edge insertion and deletion, convertible to CSR snapshots.
//! * [`GraphDelta`] / [`IncrementalGraph`] — the paper's incremental-graph
//!   model `G'(V ∪ V₁ − V₂, E ∪ E₁ − E₂)` with stable vertex-identity
//!   mappings between the old and new graphs, typed boundary validation
//!   ([`GraphDelta::validate`]), and a [`DeltaCoalescer`] folding queued
//!   delta sequences into one canonical edit list.
//! * [`Partitioning`] — a `V → P` assignment with maintained partition
//!   weights, move operations and validation.
//! * [`metrics`] — cutset statistics exactly as reported in the paper's
//!   tables (total cut edges, per-partition boundary cost `C(q)` max/min,
//!   load imbalance, `W(q) + α·C(q)` cost model).
//! * [`traversal`] — BFS utilities (single and multi-source, ownership
//!   propagation) used by the assignment and layering phases.
//! * [`generators`] — synthetic graph families for tests and benches.
//! * [`io`] — a METIS-compatible plain-text graph format reader/writer.
//!
//! All hot data structures follow the flat-`Vec` + `u32`-index idiom: no
//! per-vertex allocation, no hashing on hot paths.
//!
//! ```
//! use igp_graph::{CsrGraph, GraphDelta, Partitioning, metrics::CutMetrics};
//!
//! // A 6-cycle split into two halves: the cut is 2 edges.
//! let g = CsrGraph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(5,0)]);
//! let part = Partitioning::from_assignment(&g, 2, vec![0,0,0,1,1,1]);
//! assert_eq!(CutMetrics::compute(&g, &part).total_cut_edges, 2);
//!
//! // Grow it incrementally: one vertex hanging off vertex 0.
//! let delta = GraphDelta {
//!     add_vertices: vec![1],
//!     add_edges: vec![(0, 6, 1)],
//!     ..Default::default()
//! };
//! let inc = delta.apply(&g);
//! assert_eq!(inc.new_graph().num_vertices(), 7);
//! assert!(inc.is_added(6));
//! ```

pub mod coalesce;
pub mod csr;
pub mod delta;
pub mod dyn_graph;
pub mod fm;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod partition;
pub mod traversal;

pub use coalesce::{coalesce, CoalesceError, DeltaCoalescer, DirtStats};
pub use csr::{CsrBuilder, CsrGraph};
pub use delta::{DeltaError, GraphDelta, IncrementalGraph};
pub use dyn_graph::DynGraph;
pub use metrics::{CutMetrics, PartitionCosts};
pub use partition::Partitioning;

/// Vertex identifier. Graphs in this workspace are bounded well below
/// `u32::MAX` vertices; 32-bit ids halve the memory traffic of the hot
/// CSR scans relative to `usize` (see the Rust Performance Book notes on
/// smaller integers).
pub type NodeId = u32;

/// Partition identifier (the paper's `p` processors / partitions).
pub type PartId = u32;

/// Integer vertex/edge weight. The paper assumes unit weights but notes
/// "all of our algorithms can be easily modified if this is not the case";
/// we carry weights everywhere.
pub type Weight = u64;

/// Sentinel for "no vertex".
pub const INVALID_NODE: NodeId = u32::MAX;

/// Sentinel for "no partition".
pub const NO_PART: PartId = u32::MAX;
