//! Cutset and cost metrics exactly as reported in the paper's tables.
//!
//! The paper's evaluation tables print, per partitioner, the columns
//! `Cutset Total / Max / Min`:
//!
//! * **Total** — the number of edges whose endpoints lie in different
//!   partitions (each cut edge counted once).
//! * **Max / Min** — the largest/smallest per-partition *outgoing* cost
//!   `C(q) = Σ_{v∈B(q), u∉B(q)} w(v,u)` (paper eq. 2). With unit weights
//!   `Σ_q C(q) = 2·Total`.
//!
//! The machine cost model `max_q (W(q) + α·C(q))` from §1.1 is also
//! provided ([`CutMetrics::machine_cost`]).

use crate::csr::CsrGraph;
use crate::partition::Partitioning;
use crate::{NodeId, Weight};

/// Per-partition load and boundary cost.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionCosts {
    /// Vertex count `|B(q)|`.
    pub count: u32,
    /// Vertex weight `W(q)`.
    pub weight: Weight,
    /// Outgoing edge cost `C(q)` (weighted).
    pub boundary: Weight,
    /// Number of boundary vertices of `q`.
    pub boundary_vertices: u32,
}

/// Full cut statistics for one partitioning.
#[derive(Clone, Debug, PartialEq)]
pub struct CutMetrics {
    /// Number of cut edges (unweighted), the paper's `Cutset Total`.
    pub total_cut_edges: u64,
    /// Total weight of cut edges.
    pub total_cut_weight: Weight,
    /// `max_q C(q)` — the paper's `Cutset Max`.
    pub max_boundary: Weight,
    /// `min_q C(q)` — the paper's `Cutset Min`.
    pub min_boundary: Weight,
    /// Max/avg vertex-count imbalance ratio.
    pub count_imbalance: f64,
    /// Largest partition vertex count.
    pub max_count: u32,
    /// Smallest partition vertex count.
    pub min_count: u32,
    /// Per-partition detail.
    pub per_part: Vec<PartitionCosts>,
}

impl CutMetrics {
    /// Compute all statistics in one pass over the edges.
    pub fn compute(graph: &CsrGraph, part: &Partitioning) -> Self {
        let p = part.num_parts();
        let mut per_part = vec![PartitionCosts::default(); p];
        for q in 0..p {
            per_part[q].count = part.count(q as u32) as u32;
            per_part[q].weight = part.weight(q as u32);
        }
        let mut total_cut_edges = 0u64;
        let mut total_cut_weight: Weight = 0;
        for v in graph.vertices() {
            let pv = part.part_of(v);
            let mut on_boundary = false;
            for (u, w) in graph.edges_of(v) {
                let pu = part.part_of(u);
                if pu != pv {
                    on_boundary = true;
                    per_part[pv as usize].boundary += w;
                    if v < u {
                        total_cut_edges += 1;
                        total_cut_weight += w;
                    }
                }
            }
            if on_boundary {
                per_part[pv as usize].boundary_vertices += 1;
            }
        }
        let max_boundary = per_part.iter().map(|c| c.boundary).max().unwrap_or(0);
        let min_boundary = per_part.iter().map(|c| c.boundary).min().unwrap_or(0);
        let max_count = per_part.iter().map(|c| c.count).max().unwrap_or(0);
        let min_count = per_part.iter().map(|c| c.count).min().unwrap_or(0);
        CutMetrics {
            total_cut_edges,
            total_cut_weight,
            max_boundary,
            min_boundary,
            count_imbalance: part.count_imbalance(),
            max_count,
            min_count,
            per_part,
        }
    }

    /// The §1.1 machine model: `max_q (W(q) + α·C(q))`, with `α` the ratio
    /// of unit-communication to unit-computation cost.
    pub fn machine_cost(&self, alpha: f64) -> f64 {
        self.per_part
            .iter()
            .map(|c| c.weight as f64 + alpha * c.boundary as f64)
            .fold(0.0, f64::max)
    }

    /// `Σ_q C(q)`; equals `2 × total_cut_weight` (checked by tests).
    pub fn sum_boundary(&self) -> Weight {
        self.per_part.iter().map(|c| c.boundary).sum()
    }

    /// One-line table row `total / max / min` as printed by the paper.
    pub fn cutset_row(&self) -> String {
        format!(
            "{:>6} {:>5} {:>5}",
            self.total_cut_edges, self.max_boundary, self.min_boundary
        )
    }
}

/// Connected-fragment count per partition (1 = contiguous). Spectral
/// partitions of meshes are usually contiguous; incremental movement can
/// fragment them — a quality dimension the paper's figures show visually.
pub fn partition_fragments(graph: &CsrGraph, part: &Partitioning) -> Vec<u32> {
    let mut frags = vec![0u32; part.num_parts()];
    let mut comp = vec![u32::MAX; graph.num_vertices()];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next = 0u32;
    for v in graph.vertices() {
        if comp[v as usize] != u32::MAX {
            continue;
        }
        let p = part.part_of(v);
        frags[p as usize] += 1;
        comp[v as usize] = next;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for &u in graph.neighbors(x) {
                if comp[u as usize] == u32::MAX && part.part_of(u) == p {
                    comp[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    frags
}

/// Count edges between two specific partitions (diagnostic).
pub fn edges_between(
    graph: &CsrGraph,
    part: &Partitioning,
    a: crate::PartId,
    b: crate::PartId,
) -> u64 {
    let mut n = 0;
    for v in graph.vertices() {
        if part.part_of(v) != a {
            continue;
        }
        for &u in graph.neighbors(v) {
            if part.part_of(u) == b {
                n += 1;
            }
        }
    }
    n
}

/// Gain of moving `v` to partition `to`: (weighted) external edges to `to`
/// minus internal edges — the quantity `out(v, to) − in(v)` from §2.4.
pub fn move_gain(graph: &CsrGraph, part: &Partitioning, v: NodeId, to: crate::PartId) -> i64 {
    let from = part.part_of(v);
    let mut gain: i64 = 0;
    for (u, w) in graph.edges_of(v) {
        let q = part.part_of(u);
        if q == to {
            gain += w as i64;
        } else if q == from {
            gain -= w as i64;
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle6() -> CsrGraph {
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)])
    }

    #[test]
    fn cycle_halves_metrics() {
        let g = cycle6();
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        let m = CutMetrics::compute(&g, &p);
        assert_eq!(m.total_cut_edges, 2); // edges 2-3 and 5-0
        assert_eq!(m.total_cut_weight, 2);
        assert_eq!(m.max_boundary, 2);
        assert_eq!(m.min_boundary, 2);
        assert_eq!(m.sum_boundary(), 2 * m.total_cut_weight);
        assert_eq!(m.max_count, 3);
        assert_eq!(m.min_count, 3);
        assert!((m.count_imbalance - 1.0).abs() < 1e-12);
        assert_eq!(m.per_part[0].boundary_vertices, 2);
    }

    #[test]
    fn weighted_cut() {
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 10), (1, 2, 3), (2, 3, 10)]);
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        let m = CutMetrics::compute(&g, &p);
        assert_eq!(m.total_cut_edges, 1);
        assert_eq!(m.total_cut_weight, 3);
        assert_eq!(m.machine_cost(2.0), 2.0 + 2.0 * 3.0);
    }

    #[test]
    fn single_partition_no_cut() {
        let g = cycle6();
        let p = Partitioning::all_in_one(&g, 1);
        let m = CutMetrics::compute(&g, &p);
        assert_eq!(m.total_cut_edges, 0);
        assert_eq!(m.max_boundary, 0);
    }

    #[test]
    fn round_robin_cuts_everything_on_cycle() {
        let g = cycle6();
        let p = Partitioning::round_robin(&g, 3);
        let m = CutMetrics::compute(&g, &p);
        assert_eq!(m.total_cut_edges, 6);
    }

    #[test]
    fn edges_between_pairs() {
        let g = cycle6();
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(edges_between(&g, &p, 0, 1), 2);
        assert_eq!(edges_between(&g, &p, 1, 0), 2);
        assert_eq!(edges_between(&g, &p, 0, 0), 4); // internal half-edges
    }

    #[test]
    fn move_gain_matches_definition() {
        let g = cycle6();
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        // Vertex 2: neighbours 1 (part 0), 3 (part 1) → out(2,1)=1, in(2)=1.
        assert_eq!(move_gain(&g, &p, 2, 1), 0);
        // Vertex 1: both neighbours internal → gain -2.
        assert_eq!(move_gain(&g, &p, 1, 1), -2);
    }

    #[test]
    fn fragment_counting() {
        // Path 0-1-2-3-4-5: partition 0 = {0,1,4,5} (two fragments),
        // partition 1 = {2,3} (one fragment).
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 1, 1, 0, 0]);
        assert_eq!(partition_fragments(&g, &p), vec![2, 1]);
        // Contiguous bands: one fragment each.
        let p2 = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(partition_fragments(&g, &p2), vec![1, 1]);
    }

    #[test]
    fn cutset_row_format() {
        let g = cycle6();
        let p = Partitioning::from_assignment(&g, 2, vec![0, 0, 0, 1, 1, 1]);
        let m = CutMetrics::compute(&g, &p);
        assert_eq!(
            m.cutset_row().split_whitespace().collect::<Vec<_>>(),
            vec!["2", "2", "2"]
        );
    }
}
