//! Synthetic graph families for tests, property suites and benches.
//!
//! These complement the mesh workloads in `igp-mesh`: they exercise the
//! partitioner on structures with known properties (grids, tori, random
//! geometric graphs, trees) and provide randomized incremental deltas.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::delta::GraphDelta;
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `rows × cols` 4-neighbour grid.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = CsrBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), 1);
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), 1);
            }
        }
    }
    b.build()
}

/// `rows × cols` torus (wrap-around grid). Every vertex has degree 4
/// (degree 2 when a dimension has length 2 would duplicate edges, so both
/// dimensions must be ≥ 3).
pub fn torus(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = CsrBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols), 1);
            b.add_edge(id(r, c), id((r + 1) % rows, c), 1);
        }
    }
    b.build()
}

/// Path on `n` vertices.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<(NodeId, NodeId)> = (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, i as NodeId + 1))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<(NodeId, NodeId)> =
        (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    edges.push((n as NodeId - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u as NodeId, v as NodeId));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Balanced binary tree with `n` vertices (parent `⌊(i−1)/2⌋`).
pub fn binary_tree(n: usize) -> CsrGraph {
    let edges: Vec<(NodeId, NodeId)> = (1..n)
        .map(|i| (((i - 1) / 2) as NodeId, i as NodeId))
        .collect();
    CsrGraph::from_edges(n, &edges)
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs closer than `radius`. The classic model for mesh-like
/// irregular computation graphs. Uses a grid spatial index (O(n) expected).
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid_idx: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid_idx[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    let mut b = CsrBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &j in &grid_idx[dy * cells + dx] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        b.add_edge(i as NodeId, j, 1);
                    }
                }
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` (only for small tests — dense representation).
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CsrBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen::<f64>() < p {
                b.add_edge(u as NodeId, v as NodeId, 1);
            }
        }
    }
    b.build()
}

/// A random *incremental* delta that grows the graph around a localized
/// seed vertex: `k` new vertices, each attached to 1–3 hosts chosen from a
/// BFS ball around `center` plus previously added vertices. Mirrors the
/// paper's "renements in a localized area".
pub fn localized_growth_delta(graph: &CsrGraph, center: NodeId, k: usize, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = crate::traversal::bfs_distances(graph, &[center]);
    // Hosts: the ~4k nearest old vertices to the centre.
    let mut hosts: Vec<NodeId> = graph.vertices().collect();
    hosts.sort_by_key(|&v| (dist[v as usize], v));
    hosts.truncate((4 * k).max(8).min(graph.num_vertices()));
    let n_old = graph.num_vertices() as NodeId;
    let mut delta = GraphDelta::default();
    let mut attach_pool: Vec<NodeId> = hosts.clone();
    for i in 0..k {
        let new_id = n_old + i as NodeId;
        delta.add_vertices.push(1);
        let fan = 1 + rng.gen_range(0..3usize).min(attach_pool.len() - 1);
        // Sample `fan` distinct hosts.
        let mut chosen: Vec<NodeId> = Vec::with_capacity(fan);
        while chosen.len() < fan {
            let h = attach_pool[rng.gen_range(0..attach_pool.len())];
            if !chosen.contains(&h) {
                chosen.push(h);
            }
        }
        for h in chosen {
            delta.add_edges.push((h, new_id, 1));
        }
        attach_pool.push(new_id);
    }
    delta
}

/// A random *churn* delta: removes up to `removes` low-impact vertices
/// and a few existing edges, then adds `adds` new vertices attached to
/// survivors (plus an occasional survivor–survivor chord).
///
/// Always valid for [`GraphDelta::apply`] against `graph`
/// (`GraphDelta::validate` passes, removed edges exist, added edges are
/// absent and avoid removed vertices) — the generator behind the
/// coalescing property suite and the service end-to-end churn traffic.
/// Unlike [`localized_growth_delta`] it exercises the full edit algebra:
/// vertex deletion, edge deletion, and deletion/re-addition interplay.
pub fn random_churn_delta(graph: &CsrGraph, adds: usize, removes: usize, seed: u64) -> GraphDelta {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_old = graph.num_vertices();
    let mut delta = GraphDelta::default();
    // Remove vertices, never more than a quarter of the graph so the
    // remainder stays partitionable.
    let max_rm = removes.min(n_old / 4);
    let mut removed = vec![false; n_old];
    for _ in 0..max_rm {
        let v = rng.gen_range(0..n_old);
        if !removed[v] {
            removed[v] = true;
            delta.remove_vertices.push(v as NodeId);
        }
    }
    delta.remove_vertices.sort_unstable();
    // Remove a few surviving edges (skip bridges to survivors' last
    // link: keep every survivor at degree ≥ 1 where possible).
    let survivor_edges: Vec<(NodeId, NodeId)> = graph
        .undirected_edges()
        .filter(|&(u, v, _)| !removed[u as usize] && !removed[v as usize])
        .map(|(u, v, _)| (u, v))
        .collect();
    let mut deg_left = vec![0usize; n_old];
    for &(u, v) in &survivor_edges {
        deg_left[u as usize] += 1;
        deg_left[v as usize] += 1;
    }
    let edge_removes = (max_rm / 2 + adds / 4).min(survivor_edges.len() / 4);
    let mut killed: Vec<(NodeId, NodeId)> = Vec::new();
    for _ in 0..edge_removes {
        let e = survivor_edges[rng.gen_range(0..survivor_edges.len())];
        if !killed.contains(&e) && deg_left[e.0 as usize] > 1 && deg_left[e.1 as usize] > 1 {
            deg_left[e.0 as usize] -= 1;
            deg_left[e.1 as usize] -= 1;
            killed.push(e);
        }
    }
    killed.sort_unstable();
    delta.remove_edges = killed.clone();
    // Attach new vertices to random survivors / earlier additions.
    let survivors: Vec<NodeId> = (0..n_old as NodeId)
        .filter(|&v| !removed[v as usize])
        .collect();
    let mut attach_pool = survivors.clone();
    let present = |d: &GraphDelta, a: NodeId, b: NodeId| -> bool {
        let k = if a < b { (a, b) } else { (b, a) };
        d.add_edges.iter().any(|&(u, v, _)| (u, v) == k)
            || ((k.1 as usize) < n_old && graph.has_edge(k.0, k.1) && !killed.contains(&k))
    };
    for i in 0..adds {
        let new_id = (n_old + i) as NodeId;
        delta.add_vertices.push(1 + rng.gen_range(0..3usize) as u64);
        let fan = 1 + rng.gen_range(0..2usize).min(attach_pool.len() - 1);
        let mut linked = 0;
        while linked < fan {
            let h = attach_pool[rng.gen_range(0..attach_pool.len())];
            if h != new_id && !present(&delta, h, new_id) {
                let k = if h < new_id { (h, new_id) } else { (new_id, h) };
                delta
                    .add_edges
                    .push((k.0, k.1, 1 + rng.gen_range(0..4usize) as u64));
                linked += 1;
            }
        }
        attach_pool.push(new_id);
    }
    // Occasionally re-link two survivors (possibly re-adding a killed
    // edge with a fresh weight — the fold-to-weight-update case).
    if survivors.len() >= 2 && rng.gen_range(0..3) == 0 {
        for _ in 0..4 {
            let a = survivors[rng.gen_range(0..survivors.len())];
            let b = survivors[rng.gen_range(0..survivors.len())];
            if a != b && !present(&delta, a, b) {
                let k = if a < b { (a, b) } else { (b, a) };
                delta
                    .add_edges
                    .push((k.0, k.1, 1 + rng.gen_range(0..4usize) as u64));
                break;
            }
        }
    }
    delta.add_edges.sort_unstable();
    debug_assert_eq!(delta.validate(n_old), Ok(()));
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // 17
        assert!(is_connected(&g));
        g.validate().unwrap();
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.num_edges(), 2 * 20);
        g.validate().unwrap();
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_geometric_deterministic_and_valid() {
        let a = random_geometric(300, 0.1, 42);
        let b = random_geometric(300, 0.1, 42);
        assert_eq!(a, b);
        a.validate().unwrap();
        // Sanity: with r=0.1, n=300 expect a decent number of edges.
        assert!(a.num_edges() > 100, "{}", a.num_edges());
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn localized_growth_applies_cleanly() {
        let g = grid(10, 10);
        let delta = localized_growth_delta(&g, 0, 15, 7);
        assert_eq!(delta.add_vertices.len(), 15);
        let inc = delta.apply(&g);
        assert_eq!(inc.new_graph().num_vertices(), 115);
        assert!(is_connected(inc.new_graph()));
        inc.new_graph().validate().unwrap();
        // Locality: every attachment host is near the corner vertex 0.
        let dist = crate::traversal::bfs_distances(&g, &[0]);
        for &(u, _, _) in delta.add_edges.iter().filter(|&&(u, _, _)| u < 100) {
            assert!(
                dist[u as usize] <= 12,
                "host {u} too far: {}",
                dist[u as usize]
            );
        }
    }

    #[test]
    fn churn_delta_valid_over_long_sequence() {
        let mut cur = grid(6, 6);
        let mut edits = 0;
        for step in 0..10 {
            let d = random_churn_delta(&cur, 3, 2, step);
            d.validate(cur.num_vertices()).unwrap();
            edits += d.add_vertices.len() + d.remove_vertices.len();
            let inc = d.apply(&cur);
            cur = inc.new_graph().clone();
            cur.validate().unwrap();
        }
        assert!(edits > 10, "churn generator produced almost no edits");
        assert!(cur.num_vertices() > 0);
    }
}
