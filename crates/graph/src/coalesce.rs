//! Coalescing queued [`GraphDelta`]s into one canonical edit list.
//!
//! The serving layer (`igp-service`) accumulates many small deltas
//! between repartitions; paying one [`GraphDelta::apply`] + repartition
//! per *batch* instead of per *delta* is what makes policy-driven
//! triggering worthwhile. [`DeltaCoalescer`] folds a sequence
//! `d₁, …, dₖ` — where each `dᵢ` addresses the graph produced by
//! applying `d₁…dᵢ₋₁` — into a single delta in the id space of the
//! *base* graph, such that
//!
//! ```text
//! coalesce(d₁…dₖ).apply(G) ≡ dₖ.apply(…d₁.apply(G)…)
//! ```
//!
//! with equality of both the resulting [`crate::CsrGraph`] and the
//! composed vertex-identity map (DESIGN.md §8.3 gives the argument;
//! `tests/proptest_coalesce.rs` checks it on random churn sequences).
//!
//! The algebra, per undirected edge (a *slot* is a vertex of the base
//! graph or a vertex added anywhere in the sequence):
//!
//! * **add-then-remove cancellation** — an edge added and later removed
//!   (or a vertex added and later removed, together with every edge it
//!   ever touched) leaves no trace in the output;
//! * **duplicate-edge folding** — any number of add/remove events on one
//!   slot pair folds to at most one `remove_edges` entry (the base edge
//!   dies) plus at most one `add_edges` entry (the last added weight
//!   wins);
//! * **id-space renumbering** — every delta is expressed in the id space
//!   of its own predecessor graph; the coalescer rewrites all ids into
//!   the base id space (survivors and removals as base ids, additions as
//!   `n_base + rank` among surviving additions, in creation order).

use crate::delta::{DeltaError, GraphDelta};
use crate::{NodeId, Weight};
use std::collections::BTreeMap;

/// Sequence-level error from [`DeltaCoalescer::push`]: the delta at
/// `index` (0-based position in the pushed sequence) is inconsistent
/// with the graph state produced by its predecessors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoalesceError {
    /// The delta is malformed on its own terms (id ranges, duplicates,
    /// ordering) — see [`DeltaError`].
    Invalid { index: usize, source: DeltaError },
    /// The delta adds an edge that the coalesced state already contains
    /// (added earlier in the sequence and not removed since). Sequential
    /// application would build a multigraph and panic in the CSR
    /// builder.
    AddOfExistingEdge { index: usize, u: NodeId, v: NodeId },
    /// The delta removes an edge that the sequence itself created *and*
    /// already removed, or that demonstrably never existed (an endpoint
    /// was added by the sequence with no surviving add of this edge).
    RemoveOfMissingEdge { index: usize, u: NodeId, v: NodeId },
}

impl std::fmt::Display for CoalesceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceError::Invalid { index, source } => {
                write!(f, "delta #{index}: {source}")
            }
            CoalesceError::AddOfExistingEdge { index, u, v } => {
                write!(f, "delta #{index}: edge {{{u},{v}}} already exists")
            }
            CoalesceError::RemoveOfMissingEdge { index, u, v } => {
                write!(f, "delta #{index}: edge {{{u},{v}}} does not exist")
            }
        }
    }
}

impl std::error::Error for CoalesceError {}

/// Net size of the pending coalesced edit (for repartition policies).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirtStats {
    /// Deltas pushed since the coalescer was (re)created.
    pub deltas: usize,
    /// Net added vertices (additions that survived).
    pub added_vertices: usize,
    /// Net removed base vertices.
    pub removed_vertices: usize,
    /// Net added edges.
    pub added_edges: usize,
    /// Net removed base edges.
    pub removed_edges: usize,
    /// Total weight of the net added vertices.
    pub added_weight: Weight,
    /// Distinct vertices of the *current* virtual graph touched by the
    /// net edit (endpoints of edited edges + surviving additions),
    /// plus removed base vertices.
    pub touched_vertices: usize,
}

/// Per-slot-pair edge state. Absent from the map = untouched by the
/// sequence (add-then-remove cancellation deletes the entry again).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EdgeState {
    /// Added by the sequence (pair absent from the base graph).
    Added(Weight),
    /// Base edge removed by the sequence.
    RemovedBase,
    /// Base edge removed, then a new edge added on the same pair.
    Readded(Weight),
}

/// Incrementally folds a sequence of [`GraphDelta`]s into one.
///
/// Internally every vertex is a *slot*: base vertices are slots
/// `0..n_base`, each vertex added by the sequence gets the next slot id
/// in creation order (slots of removed additions are never reused).
/// The virtual current graph is the list of live slots in ascending
/// slot order — ascending because [`GraphDelta::apply`] renumbers
/// survivors-then-additions in order, which composes to exactly this
/// ordering (the invariant that makes one-shot renumbering agree with
/// step-by-step renumbering; DESIGN.md §8.3).
///
/// ```
/// use igp_graph::coalesce::DeltaCoalescer;
/// use igp_graph::{generators, GraphDelta};
///
/// let g = generators::grid(4, 4);
/// let mut co = DeltaCoalescer::new(g.num_vertices());
/// // d1 adds vertex 16 hanging off 0; d2 removes it again.
/// co.push(&GraphDelta {
///     add_vertices: vec![1],
///     add_edges: vec![(0, 16, 1)],
///     ..Default::default()
/// }).unwrap();
/// co.push(&GraphDelta {
///     remove_vertices: vec![16],
///     ..Default::default()
/// }).unwrap();
/// assert!(co.net().is_empty()); // cancelled out
/// ```
#[derive(Clone, Debug)]
pub struct DeltaCoalescer {
    n_base: usize,
    /// Liveness per base slot.
    alive_base: Vec<bool>,
    /// Weight + liveness per added slot (index = slot − n_base).
    added: Vec<(Weight, bool)>,
    /// Live slots in current-graph id order (always ascending).
    cur: Vec<usize>,
    /// Edge state per slot pair (min, max). BTreeMap: deterministic
    /// iteration order ⇒ canonical output ordering for free.
    edges: BTreeMap<(usize, usize), EdgeState>,
    deltas: usize,
}

impl DeltaCoalescer {
    /// A coalescer over a base graph of `n_base` vertices.
    pub fn new(n_base: usize) -> Self {
        DeltaCoalescer {
            n_base,
            alive_base: vec![true; n_base],
            added: Vec::new(),
            cur: (0..n_base).collect(),
            edges: BTreeMap::new(),
            deltas: 0,
        }
    }

    /// Number of deltas folded in so far.
    pub fn len(&self) -> usize {
        self.deltas
    }

    /// True if no delta has been pushed.
    pub fn is_empty(&self) -> bool {
        self.deltas == 0
    }

    /// Vertices of the virtual current graph (base after all pushed
    /// deltas). The next pushed delta must address this id space.
    pub fn n_current(&self) -> usize {
        self.cur.len()
    }

    /// Base-graph vertex count this coalescer started from.
    pub fn n_base(&self) -> usize {
        self.n_base
    }

    fn slot_alive(&self, slot: usize) -> bool {
        if slot < self.n_base {
            self.alive_base[slot]
        } else {
            self.added[slot - self.n_base].1
        }
    }

    /// Fold one more delta (addressed to the current virtual graph) into
    /// the pending edit. On error the coalescer is unchanged.
    ///
    /// Base-edge references the sequence itself has not touched are
    /// *trusted* (removing an edge the base graph lacks, or re-adding
    /// one it has, surfaces later as a panic in [`GraphDelta::apply`]);
    /// use [`DeltaCoalescer::push_verified`] when the base graph is at
    /// hand to turn those into typed errors at push time.
    pub fn push(&mut self, delta: &GraphDelta) -> Result<(), CoalesceError> {
        self.push_inner(delta, None)
    }

    /// Like [`DeltaCoalescer::push`], but additionally checks every
    /// first-touch base-edge reference against `base` (the graph this
    /// coalescer was created for): removing an edge `base` does not
    /// have, or adding one it already has, fails with the corresponding
    /// [`CoalesceError`] instead of panicking at apply time. This is
    /// the full boundary check the service layer relies on.
    pub fn push_verified(
        &mut self,
        delta: &GraphDelta,
        base: &crate::CsrGraph,
    ) -> Result<(), CoalesceError> {
        assert_eq!(
            base.num_vertices(),
            self.n_base,
            "base graph does not match the coalescer's base size"
        );
        self.push_inner(delta, Some(base))
    }

    fn push_inner(
        &mut self,
        delta: &GraphDelta,
        base: Option<&crate::CsrGraph>,
    ) -> Result<(), CoalesceError> {
        let index = self.deltas;
        delta
            .validate(self.cur.len())
            .map_err(|source| CoalesceError::Invalid { index, source })?;

        // Pre-scan the edge edits against current state so failure keeps
        // the coalescer intact. `remove_edges` precede `add_edges` in
        // apply-order (a delta may remove a base edge and re-add the
        // pair), so removals are checked against the pre-delta map and
        // adds against the map after this delta's removals.
        let n_cur = self.cur.len();
        let slot_of = |id: NodeId| -> usize {
            let id = id as usize;
            if id < n_cur {
                self.cur[id]
            } else {
                // Extended id: the (id − n_cur)-th vertex added by this
                // delta gets the next slot in creation order.
                self.n_base + self.added.len() + (id - n_cur)
            }
        };
        let key = |u: NodeId, v: NodeId| -> (usize, usize) {
            let (a, b) = (slot_of(u), slot_of(v));
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        };
        // (pair, new state or None = delete entry)
        let mut staged: Vec<((usize, usize), Option<EdgeState>)> = Vec::new();
        let staged_state = |staged: &[((usize, usize), Option<EdgeState>)],
                            k: (usize, usize)|
         -> Option<Option<EdgeState>> {
            staged
                .iter()
                .rev()
                .find(|(sk, _)| *sk == k)
                .map(|&(_, st)| st)
        };
        for &(u, v) in &delta.remove_edges {
            let k = key(u, v);
            let state = staged_state(&staged, k).unwrap_or_else(|| self.edges.get(&k).copied());
            let next = match state {
                // Untouched: must be a base edge (validate bounds the
                // ids to the base-or-survivor range; that both slots are
                // base slots is checked below).
                None => {
                    if k.1 >= self.n_base {
                        // An endpoint was created by the sequence and no
                        // add of this edge survives: nothing to remove.
                        return Err(CoalesceError::RemoveOfMissingEdge { index, u, v });
                    }
                    // Both endpoints are base slots and the pair is
                    // untouched, so its presence in the virtual graph
                    // equals its presence in the base graph.
                    if let Some(g) = base {
                        if !g.has_edge(k.0 as NodeId, k.1 as NodeId) {
                            return Err(CoalesceError::RemoveOfMissingEdge { index, u, v });
                        }
                    }
                    Some(EdgeState::RemovedBase)
                }
                Some(EdgeState::Added(_)) => None, // add-then-remove cancels
                Some(EdgeState::Readded(_)) => Some(EdgeState::RemovedBase),
                Some(EdgeState::RemovedBase) => {
                    return Err(CoalesceError::RemoveOfMissingEdge { index, u, v })
                }
            };
            staged.push((k, next));
        }
        for &(u, v, w) in &delta.add_edges {
            let k = key(u, v);
            let state = staged_state(&staged, k).unwrap_or_else(|| self.edges.get(&k).copied());
            let next = match state {
                None => {
                    if let Some(g) = base {
                        if k.1 < self.n_base && g.has_edge(k.0 as NodeId, k.1 as NodeId) {
                            return Err(CoalesceError::AddOfExistingEdge { index, u, v });
                        }
                    }
                    Some(EdgeState::Added(w))
                }
                Some(EdgeState::RemovedBase) => Some(EdgeState::Readded(w)),
                Some(EdgeState::Added(_)) | Some(EdgeState::Readded(_)) => {
                    return Err(CoalesceError::AddOfExistingEdge { index, u, v })
                }
            };
            staged.push((k, next));
        }

        // Commit: new slots, vertex removals (erasing every edge record
        // incident to a dying slot — its base edges vanish implicitly,
        // its pending additions die with it), then the staged edge edits.
        for &w in &delta.add_vertices {
            self.added.push((w, true));
        }
        let dead: Vec<usize> = delta
            .remove_vertices
            .iter()
            .map(|&v| self.cur[v as usize])
            .collect();
        for &s in &dead {
            if s < self.n_base {
                self.alive_base[s] = false;
            } else {
                self.added[s - self.n_base].1 = false;
            }
        }
        if !dead.is_empty() {
            self.edges
                .retain(|&(a, b), _| !dead.contains(&a) && !dead.contains(&b));
            // Staged edits cannot touch dying slots (validate rejects
            // edges naming removed vertices), so they commit unfiltered.
        }
        for (k, st) in staged {
            match st {
                Some(s) => {
                    self.edges.insert(k, s);
                }
                None => {
                    self.edges.remove(&k);
                }
            }
        }
        let first_new = self.n_base + self.added.len() - delta.add_vertices.len();
        if !dead.is_empty() {
            // Only removals change existing ids; the common growth-only
            // push stays O(|delta|), not O(n).
            let mut cur = std::mem::take(&mut self.cur);
            cur.retain(|&s| self.slot_alive(s));
            self.cur = cur;
        }
        self.cur.extend(first_new..self.n_base + self.added.len());
        self.deltas += 1;
        Ok(())
    }

    /// The canonical coalesced edit list, in base-graph id space.
    ///
    /// Canonical form: `remove_vertices` ascending; `add_vertices` in
    /// creation order of the surviving additions (their extended ids are
    /// `n_base + rank`); `add_edges`/`remove_edges` sorted ascending
    /// with `u < v`, at most one entry per pair.
    pub fn net(&self) -> GraphDelta {
        // Extended id per surviving added slot: n_base + rank.
        let mut ext_of_added = vec![NodeId::MAX; self.added.len()];
        let mut add_vertices = Vec::new();
        for (i, &(w, alive)) in self.added.iter().enumerate() {
            if alive {
                ext_of_added[i] = (self.n_base + add_vertices.len()) as NodeId;
                add_vertices.push(w);
            }
        }
        let ext_of_slot = |s: usize| -> NodeId {
            if s < self.n_base {
                s as NodeId
            } else {
                ext_of_added[s - self.n_base]
            }
        };
        let remove_vertices: Vec<NodeId> = (0..self.n_base)
            .filter(|&v| !self.alive_base[v])
            .map(|v| v as NodeId)
            .collect();
        let mut add_edges = Vec::new();
        let mut remove_edges = Vec::new();
        for (&(a, b), &state) in &self.edges {
            debug_assert!(self.slot_alive(a) && self.slot_alive(b));
            match state {
                EdgeState::Added(w) => {
                    let (u, v) = (ext_of_slot(a), ext_of_slot(b));
                    add_edges.push(if u < v { (u, v, w) } else { (v, u, w) });
                }
                EdgeState::RemovedBase => {
                    debug_assert!(b < self.n_base, "base removal on added slot");
                    remove_edges.push((a as NodeId, b as NodeId));
                }
                EdgeState::Readded(w) => {
                    debug_assert!(b < self.n_base);
                    remove_edges.push((a as NodeId, b as NodeId));
                    add_edges.push((a as NodeId, b as NodeId, w));
                }
            }
        }
        add_edges.sort_unstable();
        remove_edges.sort_unstable();
        GraphDelta {
            add_vertices,
            remove_vertices,
            add_edges,
            remove_edges,
        }
    }

    /// Net edit-size statistics for repartition policies.
    pub fn dirt(&self) -> DirtStats {
        let mut s = DirtStats {
            deltas: self.deltas,
            ..Default::default()
        };
        let mut touched: Vec<usize> = Vec::new();
        for (i, &(w, alive)) in self.added.iter().enumerate() {
            if alive {
                s.added_vertices += 1;
                s.added_weight += w;
                touched.push(self.n_base + i);
            }
        }
        for (v, &alive) in self.alive_base.iter().enumerate() {
            if !alive {
                s.removed_vertices += 1;
                touched.push(v);
            }
        }
        for (&(a, b), &state) in &self.edges {
            match state {
                EdgeState::Added(_) => s.added_edges += 1,
                EdgeState::RemovedBase => s.removed_edges += 1,
                EdgeState::Readded(_) => {
                    s.added_edges += 1;
                    s.removed_edges += 1;
                }
            }
            touched.push(a);
            touched.push(b);
        }
        touched.sort_unstable();
        touched.dedup();
        s.touched_vertices = touched.len();
        s
    }
}

/// One-shot convenience: fold `deltas` (each addressed to the graph its
/// predecessors produce, starting from `n_base` vertices) into a single
/// canonical delta.
pub fn coalesce(n_base: usize, deltas: &[GraphDelta]) -> Result<GraphDelta, CoalesceError> {
    let mut co = DeltaCoalescer::new(n_base);
    for d in deltas {
        co.push(d)?;
    }
    Ok(co.net())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::CsrGraph;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    /// Sequential ground truth: fold `apply` and return the final graph.
    fn fold(base: &CsrGraph, deltas: &[GraphDelta]) -> CsrGraph {
        let mut g = base.clone();
        for d in deltas {
            g = d.apply(&g).new_graph().clone();
        }
        g
    }

    #[test]
    fn single_delta_is_identity_fold() {
        let d = GraphDelta {
            add_vertices: vec![2],
            remove_vertices: vec![0],
            add_edges: vec![(1, 5, 1)],
            remove_edges: vec![(2, 3)],
        };
        let net = coalesce(5, std::slice::from_ref(&d)).unwrap();
        assert_eq!(net, d);
    }

    #[test]
    fn add_then_remove_edge_cancels() {
        let d1 = GraphDelta {
            add_edges: vec![(0, 2, 1)],
            ..Default::default()
        };
        let d2 = GraphDelta {
            remove_edges: vec![(0, 2)],
            ..Default::default()
        };
        let net = coalesce(5, &[d1, d2]).unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn add_then_remove_vertex_cancels_with_edges() {
        let d1 = GraphDelta {
            add_vertices: vec![3, 4],
            add_edges: vec![(0, 5, 1), (5, 6, 2), (1, 6, 1)],
            ..Default::default()
        };
        // The two additions got ids 5, 6; remove the first (id 5).
        let d2 = GraphDelta {
            remove_vertices: vec![5],
            ..Default::default()
        };
        let net = coalesce(5, &[d1.clone(), d2.clone()]).unwrap();
        // Vertex 6 survives, renumbered to extended id 5; only its edge
        // to old vertex 1 remains.
        assert_eq!(net.add_vertices, vec![4]);
        assert_eq!(net.add_edges, vec![(1, 5, 1)]);
        assert!(net.remove_vertices.is_empty() && net.remove_edges.is_empty());
        let base = path5();
        assert_eq!(net.apply(&base).new_graph(), &fold(&base, &[d1, d2]));
    }

    #[test]
    fn remove_then_readd_folds_to_weight_update() {
        let d1 = GraphDelta {
            remove_edges: vec![(1, 2)],
            ..Default::default()
        };
        let d2 = GraphDelta {
            add_edges: vec![(1, 2, 9)],
            ..Default::default()
        };
        let net = coalesce(5, &[d1, d2]).unwrap();
        assert_eq!(net.remove_edges, vec![(1, 2)]);
        assert_eq!(net.add_edges, vec![(1, 2, 9)]);
        let base = path5();
        let g = net.apply(&base).new_graph().clone();
        assert_eq!(g.edge_weight(1, 2), Some(9));
    }

    #[test]
    fn renumbering_across_removal() {
        // d1 removes vertex 1 → survivors renumber to 0,1,2,3
        // (old 0,2,3,4); d2 then removes *new* id 1 (= old 2) and adds a
        // vertex attached to new id 2 (= old 3).
        let d1 = GraphDelta {
            remove_vertices: vec![1],
            ..Default::default()
        };
        let d2 = GraphDelta {
            add_vertices: vec![6],
            remove_vertices: vec![1],
            add_edges: vec![(2, 4, 5)],
            ..Default::default()
        };
        let net = coalesce(5, &[d1.clone(), d2.clone()]).unwrap();
        assert_eq!(net.remove_vertices, vec![1, 2]);
        assert_eq!(net.add_vertices, vec![6]);
        assert_eq!(net.add_edges, vec![(3, 5, 5)]); // old 3, ext id 5
        let base = path5();
        assert_eq!(net.apply(&base).new_graph(), &fold(&base, &[d1, d2]));
    }

    #[test]
    fn growth_sequence_equivalence() {
        let base = generators::grid(6, 6);
        let mut g = base.clone();
        let mut deltas = Vec::new();
        for step in 0..5 {
            let d = generators::localized_growth_delta(&g, 0, 4, step);
            g = d.apply(&g).new_graph().clone();
            deltas.push(d);
        }
        let net = coalesce(base.num_vertices(), &deltas).unwrap();
        assert_eq!(net.apply(&base).new_graph(), &g);
        // Canonical: re-coalescing the net is a fixed point.
        let again = coalesce(base.num_vertices(), std::slice::from_ref(&net)).unwrap();
        assert_eq!(again, net);
    }

    #[test]
    fn sequence_errors_detected_and_state_kept() {
        let mut co = DeltaCoalescer::new(5);
        co.push(&GraphDelta {
            add_edges: vec![(0, 3, 1)],
            ..Default::default()
        })
        .unwrap();
        // Adding the same edge again is invalid…
        let err = co
            .push(&GraphDelta {
                add_edges: vec![(3, 0, 1)],
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(
            err,
            CoalesceError::AddOfExistingEdge {
                index: 1,
                u: 3,
                v: 0
            }
        );
        // …and the failed push left the coalescer usable.
        assert_eq!(co.len(), 1);
        assert_eq!(co.net().add_edges, vec![(0, 3, 1)]);
        // Removing the added edge cancels it; the pair is untouched
        // again, so the next removal registers as a (trusted) base-edge
        // removal, and removing the same base edge once more is a
        // detectable double removal.
        co.push(&GraphDelta {
            remove_edges: vec![(0, 3)],
            ..Default::default()
        })
        .unwrap(); // cancellation
        co.push(&GraphDelta {
            remove_edges: vec![(0, 3)],
            ..Default::default()
        })
        .unwrap(); // base removal (existence is the caller's contract)
        let err = co
            .push(&GraphDelta {
                remove_edges: vec![(0, 3)],
                ..Default::default()
            })
            .unwrap_err();
        // index = position in the *accepted* sequence (the failed add
        // above did not consume a slot).
        assert_eq!(
            err,
            CoalesceError::RemoveOfMissingEdge {
                index: 3,
                u: 0,
                v: 3
            }
        );
        // Removing an edge on a sequence-created vertex that was never
        // added is caught immediately.
        let mut co2 = DeltaCoalescer::new(2);
        co2.push(&GraphDelta {
            add_vertices: vec![1],
            ..Default::default()
        })
        .unwrap();
        let err = co2
            .push(&GraphDelta {
                remove_edges: vec![(0, 2)],
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(
            err,
            CoalesceError::RemoveOfMissingEdge {
                index: 1,
                u: 0,
                v: 2
            }
        );
        // Malformed delta surfaces the typed DeltaError.
        let err = co
            .push(&GraphDelta {
                remove_vertices: vec![99],
                ..Default::default()
            })
            .unwrap_err();
        assert!(matches!(err, CoalesceError::Invalid { .. }));
    }

    /// Regression: wire-shaped deltas that mis-state base-edge
    /// existence must fail at push time under `push_verified`, not
    /// panic later in `apply` (removing {0,2} which path5 lacks;
    /// re-adding {0,1} which it has).
    #[test]
    fn push_verified_checks_base_edge_existence() {
        let base = path5();
        let mut co = DeltaCoalescer::new(base.num_vertices());
        let err = co
            .push_verified(
                &GraphDelta {
                    remove_edges: vec![(0, 2)],
                    ..Default::default()
                },
                &base,
            )
            .unwrap_err();
        assert_eq!(
            err,
            CoalesceError::RemoveOfMissingEdge {
                index: 0,
                u: 0,
                v: 2
            }
        );
        let err = co
            .push_verified(
                &GraphDelta {
                    add_edges: vec![(0, 1, 5)],
                    ..Default::default()
                },
                &base,
            )
            .unwrap_err();
        assert_eq!(
            err,
            CoalesceError::AddOfExistingEdge {
                index: 0,
                u: 0,
                v: 1
            }
        );
        // The coalescer survived both rejections and accepts valid
        // edits — including the remove-then-re-add of a real base edge.
        co.push_verified(
            &GraphDelta {
                remove_edges: vec![(0, 1)],
                add_edges: vec![(0, 1, 9), (0, 2, 1)],
                ..Default::default()
            },
            &base,
        )
        .unwrap();
        let net = co.net();
        assert_eq!(net.remove_edges, vec![(0, 1)]);
        assert_eq!(net.add_edges, vec![(0, 1, 9), (0, 2, 1)]);
        net.apply(&base).new_graph().validate().unwrap();
    }

    #[test]
    fn dirt_stats_track_net_edit() {
        let mut co = DeltaCoalescer::new(9);
        co.push(&GraphDelta {
            add_vertices: vec![2, 3],
            add_edges: vec![(0, 9, 1), (9, 10, 1)],
            remove_edges: vec![(0, 1)],
            ..Default::default()
        })
        .unwrap();
        co.push(&GraphDelta {
            remove_vertices: vec![10], // the second addition dies
            ..Default::default()
        })
        .unwrap();
        let d = co.dirt();
        assert_eq!(d.deltas, 2);
        assert_eq!(d.added_vertices, 1);
        assert_eq!(d.added_weight, 2);
        assert_eq!(d.removed_vertices, 0);
        assert_eq!(d.added_edges, 1); // (0,9) survives; (9,10) died
        assert_eq!(d.removed_edges, 1);
        // touched: slots 0, 1 (removed edge), 9 (survivor addition).
        assert_eq!(d.touched_vertices, 3);
        assert_eq!(co.n_current(), 10);
    }

    #[test]
    fn empty_coalescer_nets_empty() {
        let co = DeltaCoalescer::new(7);
        assert!(co.is_empty());
        assert!(co.net().is_empty());
        assert_eq!(co.n_current(), 7);
        assert_eq!(coalesce(7, &[]).unwrap(), GraphDelta::default());
    }
}
