//! Fiduccia–Mattheyses-style boundary refinement.
//!
//! The paper's introduction lists "mincut-based methods" among the
//! standard heuristics; FM is their classic workhorse and serves here as
//! the **non-LP comparator** for the paper's LP refinement phase (ablation
//! E8). One pass scans boundary vertices best-gain-first and greedily
//! moves each to its best adjacent partition whenever the move improves
//! the cut and respects the balance tolerance; gains are updated
//! incrementally after every move. Multiple passes run until a pass stops
//! improving.
//!
//! Unlike the LP refinement (which preserves sizes *exactly* via
//! circulation constraints), FM trades a bounded amount of imbalance
//! (`max_count ≤ ⌈avg⌉ + slack`) for simpler, greedier improvement.

use crate::csr::CsrGraph;
use crate::metrics::move_gain;
use crate::partition::Partitioning;
use crate::{NodeId, PartId};

/// FM refinement options.
#[derive(Clone, Copy, Debug)]
pub struct FmOptions {
    /// Maximum passes over the boundary.
    pub max_passes: usize,
    /// Allowed deviation above the average partition count.
    pub balance_slack: u32,
    /// Only apply strictly-improving moves (`gain > 0`); with `false`,
    /// zero-gain moves are allowed when they improve balance.
    pub strict_gain: bool,
}

impl Default for FmOptions {
    fn default() -> Self {
        FmOptions {
            max_passes: 4,
            balance_slack: 1,
            strict_gain: true,
        }
    }
}

/// Outcome of [`fm_refine`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FmOutcome {
    /// Passes executed.
    pub passes: usize,
    /// Total vertices moved.
    pub moved: u64,
    /// Total cut-weight improvement.
    pub gain: i64,
}

/// Run FM-style greedy boundary refinement on `part` in place.
pub fn fm_refine(g: &CsrGraph, part: &mut Partitioning, opts: FmOptions) -> FmOutcome {
    let p = part.num_parts();
    let n = g.num_vertices();
    let avg_ceil = n.div_ceil(p) as u32;
    let limit = avg_ceil + opts.balance_slack;
    let mut out = FmOutcome::default();

    for _pass in 0..opts.max_passes {
        out.passes += 1;
        // Candidate list: boundary vertices with their best target.
        let mut cands: Vec<(i64, NodeId, PartId)> = Vec::new();
        for v in g.vertices() {
            if let Some((gain, to)) = best_move(g, part, v) {
                let ok = if opts.strict_gain {
                    gain > 0
                } else {
                    gain >= 0
                };
                if ok {
                    cands.push((gain, v, to));
                }
            }
        }
        // Best gain first; deterministic tie-break.
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut pass_gain = 0i64;
        let mut pass_moved = 0u64;
        for (_, v, _) in cands {
            // Re-evaluate: earlier moves may have changed this vertex's
            // situation entirely.
            let Some((gain, to)) = best_move(g, part, v) else {
                continue;
            };
            let improving = if opts.strict_gain {
                gain > 0
            } else {
                gain >= 0
            };
            if !improving {
                continue;
            }
            let from = part.part_of(v);
            // Balance guard: target must not exceed the limit, and for
            // zero-gain moves the balance must actually improve.
            if part.count(to) as u32 + 1 > limit {
                continue;
            }
            if gain == 0 && part.count(to) + 1 >= part.count(from) {
                continue;
            }
            part.move_vertex(g, v, to);
            pass_gain += gain;
            pass_moved += 1;
        }
        out.gain += pass_gain;
        out.moved += pass_moved;
        if pass_gain <= 0 && pass_moved == 0 {
            break;
        }
    }
    out
}

/// Best strictly-adjacent move for `v`: `(gain, target)` maximizing the
/// weighted gain, ties to the smaller partition id. `None` for interior
/// vertices.
fn best_move(g: &CsrGraph, part: &Partitioning, v: NodeId) -> Option<(i64, PartId)> {
    let from = part.part_of(v);
    let mut best: Option<(i64, PartId)> = None;
    let mut seen_self = false;
    for &u in g.neighbors(v) {
        let q = part.part_of(u);
        if q == from {
            seen_self = true;
            continue;
        }
        match best {
            Some((_, bq)) if bq == q => continue,
            _ => {}
        }
        let gain = move_gain(g, part, v, q);
        match best {
            None => best = Some((gain, q)),
            Some((bg, bq)) => {
                if gain > bg || (gain == bg && q < bq) {
                    best = Some((gain, q));
                }
            }
        }
    }
    let _ = seen_self;
    best
}

#[cfg(test)]
// Grid indices are written `row * side + col` even when the row is 0,
// keeping the 2-D layout visible.
#[allow(clippy::identity_op, clippy::erasing_op)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::metrics::CutMetrics;

    #[test]
    fn fixes_double_dent() {
        // Band split with two reciprocal dents: FM must swap them back.
        let g = generators::grid(6, 6);
        let mut assign: Vec<PartId> = (0..36).map(|v| if v % 6 < 3 { 0 } else { 1 }).collect();
        assign[0 * 6 + 3] = 0;
        assign[5 * 6 + 2] = 1;
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let cut0 = CutMetrics::compute(&g, &part).total_cut_edges;
        let out = fm_refine(&g, &mut part, FmOptions::default());
        let cut1 = CutMetrics::compute(&g, &part).total_cut_edges;
        assert!(cut1 < cut0, "{cut0} -> {cut1}");
        assert!(out.moved >= 2);
        assert!(out.gain > 0);
        part.validate(&g).unwrap();
    }

    #[test]
    fn respects_balance_limit() {
        let g = generators::grid(4, 8);
        let assign: Vec<PartId> = (0..32).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign);
        let _ = fm_refine(
            &g,
            &mut part,
            FmOptions {
                balance_slack: 0,
                ..Default::default()
            },
        );
        assert!(part.counts().iter().all(|&c| c <= 16));
    }

    #[test]
    fn optimal_cut_untouched() {
        let g = generators::path(12);
        let assign: Vec<PartId> = (0..12).map(|v| if v < 6 { 0 } else { 1 }).collect();
        let mut part = Partitioning::from_assignment(&g, 2, assign.clone());
        let out = fm_refine(&g, &mut part, FmOptions::default());
        assert_eq!(out.moved, 0);
        assert_eq!(part.assignment(), &assign[..]);
    }

    #[test]
    fn never_worsens_cut() {
        let g = generators::random_geometric(200, 0.12, 5);
        let mut part = Partitioning::round_robin(&g, 4);
        let cut0 = CutMetrics::compute(&g, &part).total_cut_edges;
        fm_refine(&g, &mut part, FmOptions::default());
        let cut1 = CutMetrics::compute(&g, &part).total_cut_edges;
        assert!(cut1 <= cut0, "{cut0} -> {cut1}");
        part.validate(&g).unwrap();
    }

    #[test]
    fn weighted_gain_respected() {
        // Heavy edge into the other side must win.
        let g = CsrGraph::from_weighted_edges(4, &[(0, 1, 1), (1, 2, 8), (2, 3, 1), (0, 3, 1)]);
        let mut part = Partitioning::from_assignment(&g, 2, vec![0, 0, 1, 1]);
        let out = fm_refine(
            &g,
            &mut part,
            FmOptions {
                balance_slack: 2,
                ..Default::default()
            },
        );
        let m = CutMetrics::compute(&g, &part);
        assert!(
            m.total_cut_weight < 9,
            "cut weight {} (out {out:?})",
            m.total_cut_weight
        );
    }
}
