//! The paper's incremental-graph model.
//!
//! Ou & Ranka define the incremental graph as
//! `G'(V', E')` with `V' = V ∪ V₁ − V₂` and `E' = E ∪ E₁ − E₂`: a small
//! number of vertices and edges are added and/or deleted. The partitioner
//! consumes an [`IncrementalGraph`]: the old graph, the new graph, and the
//! identity map tying surviving vertices together. [`GraphDelta`] is the
//! edit-list form, convertible in both directions.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::{NodeId, Weight, INVALID_NODE};

/// Why a [`GraphDelta`] is malformed with respect to a graph of `n_old`
/// vertices.
///
/// [`GraphDelta::validate`] reports these *before* anything is applied:
/// the service boundary turns them into protocol errors instead of
/// letting [`GraphDelta::apply`] panic deep inside a step. Everything
/// checkable from `n_old` alone is covered; existence of removed edges
/// in the concrete old graph is the one condition that still needs the
/// graph itself (checked by `apply`, and by
/// [`crate::coalesce::DeltaCoalescer`] for edges created inside a
/// queued sequence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// `remove_vertices` is not strictly ascending (unsorted or
    /// duplicated entries).
    RemoveVerticesUnsorted,
    /// A removed vertex id is not a vertex of the old graph.
    RemoveVertexOutOfRange { v: NodeId, n_old: usize },
    /// An edge endpoint is outside the id space allowed for its list
    /// (`n_old + add_vertices.len()` for added edges, `n_old` for
    /// removed edges, which may only name old-graph edges).
    EdgeOutOfRange {
        u: NodeId,
        v: NodeId,
        bound: usize,
        list: &'static str,
    },
    /// An edge with both endpoints equal.
    SelfLoop { v: NodeId, list: &'static str },
    /// An added or removed edge touches a vertex named in
    /// `remove_vertices` (incident edges of removed vertices are
    /// implicit; naming them is ambiguous).
    EdgeTouchesRemovedVertex {
        u: NodeId,
        v: NodeId,
        list: &'static str,
    },
    /// The same undirected edge appears twice in `add_edges`.
    DuplicateAddEdge { u: NodeId, v: NodeId },
    /// The same undirected edge appears twice in `remove_edges`.
    DuplicateRemoveEdge { u: NodeId, v: NodeId },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DeltaError::RemoveVerticesUnsorted => {
                write!(f, "remove_vertices must be strictly ascending")
            }
            DeltaError::RemoveVertexOutOfRange { v, n_old } => {
                write!(f, "removed vertex {v} out of range (n_old = {n_old})")
            }
            DeltaError::EdgeOutOfRange { u, v, bound, list } => {
                write!(f, "{list} edge {{{u},{v}}} out of range (bound {bound})")
            }
            DeltaError::SelfLoop { v, list } => write!(f, "{list} self-loop at {v}"),
            DeltaError::EdgeTouchesRemovedVertex { u, v, list } => {
                write!(f, "{list} edge {{{u},{v}}} touches a removed vertex")
            }
            DeltaError::DuplicateAddEdge { u, v } => {
                write!(f, "edge {{{u},{v}}} added twice")
            }
            DeltaError::DuplicateRemoveEdge { u, v } => {
                write!(f, "edge {{{u},{v}}} removed twice")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An edit list transforming an old graph into a new one.
///
/// Vertex addressing: survivors and removed vertices use *old* ids; the
/// `i`-th added vertex is addressed as `n_old + i`. Edges may reference any
/// of those.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Weights of the added vertices (the `i`-th gets id `n_old + i`).
    pub add_vertices: Vec<Weight>,
    /// Old ids of removed vertices (sorted, unique). Their incident edges
    /// are removed implicitly.
    pub remove_vertices: Vec<NodeId>,
    /// Added undirected edges, in the extended old-id space.
    pub add_edges: Vec<(NodeId, NodeId, Weight)>,
    /// Removed undirected edges (old ids; must exist and not touch removed
    /// vertices — those are implicit).
    pub remove_edges: Vec<(NodeId, NodeId)>,
}

impl GraphDelta {
    /// True if the delta performs no edits.
    pub fn is_empty(&self) -> bool {
        self.add_vertices.is_empty()
            && self.remove_vertices.is_empty()
            && self.add_edges.is_empty()
            && self.remove_edges.is_empty()
    }

    /// Summary string like `+25v -0v +71e -46e` (used in reports).
    pub fn summary(&self) -> String {
        format!(
            "+{}v -{}v +{}e -{}e",
            self.add_vertices.len(),
            self.remove_vertices.len(),
            self.add_edges.len(),
            self.remove_edges.len()
        )
    }

    /// Check the delta against a graph of `n_old` vertices, returning the
    /// first structural violation as a typed [`DeltaError`].
    ///
    /// Everything checkable without the concrete graph is verified:
    /// id ranges, `remove_vertices` ordering, self-loops, duplicate edge
    /// entries, and edges naming removed vertices. A delta that passes
    /// can still be wrong about *edge existence* (removing an edge the
    /// old graph does not have, or re-adding one it does); those are
    /// caught by [`GraphDelta::apply`]'s assertions and, for queued
    /// sequences, by [`crate::coalesce::DeltaCoalescer::push`].
    pub fn validate(&self, n_old: usize) -> Result<(), DeltaError> {
        if !self.remove_vertices.windows(2).all(|w| w[0] < w[1]) {
            return Err(DeltaError::RemoveVerticesUnsorted);
        }
        if let Some(&v) = self.remove_vertices.last() {
            if (v as usize) >= n_old {
                return Err(DeltaError::RemoveVertexOutOfRange { v, n_old });
            }
        }
        let removed = |v: NodeId| self.remove_vertices.binary_search(&v).is_ok();
        let check_edge = |u: NodeId, v: NodeId, bound: usize, list: &'static str| {
            if (u as usize) >= bound || (v as usize) >= bound {
                return Err(DeltaError::EdgeOutOfRange { u, v, bound, list });
            }
            if u == v {
                return Err(DeltaError::SelfLoop { v, list });
            }
            if removed(u) || removed(v) {
                return Err(DeltaError::EdgeTouchesRemovedVertex { u, v, list });
            }
            Ok(())
        };
        let n_ext = n_old + self.add_vertices.len();
        let mut seen: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.add_edges.len());
        for &(u, v, _) in &self.add_edges {
            check_edge(u, v, n_ext, "added")?;
            seen.push(if u < v { (u, v) } else { (v, u) });
        }
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(DeltaError::DuplicateAddEdge {
                u: w[0].0,
                v: w[0].1,
            });
        }
        seen.clear();
        for &(u, v) in &self.remove_edges {
            // Removed edges must name *old-graph* edges; added vertices
            // cannot have pre-existing edges.
            check_edge(u, v, n_old, "removed")?;
            seen.push(if u < v { (u, v) } else { (v, u) });
        }
        seen.sort_unstable();
        if let Some(w) = seen.windows(2).find(|w| w[0] == w[1]) {
            return Err(DeltaError::DuplicateRemoveEdge {
                u: w[0].0,
                v: w[0].1,
            });
        }
        Ok(())
    }

    /// Apply the delta to `old`, producing the incremental-graph pair.
    pub fn apply(&self, old: &CsrGraph) -> IncrementalGraph {
        let n_old = old.num_vertices();
        let n_ext = n_old + self.add_vertices.len();
        // Extended-id space: old ids ∪ added ids; mark removals.
        let mut removed = vec![false; n_ext];
        for &v in &self.remove_vertices {
            assert!((v as usize) < n_old, "remove_vertices id out of range");
            assert!(!removed[v as usize], "vertex {v} removed twice");
            removed[v as usize] = true;
        }
        // Compact to new ids.
        let mut new_of_ext = vec![INVALID_NODE; n_ext];
        let mut next: NodeId = 0;
        for (i, slot) in new_of_ext.iter_mut().enumerate() {
            if !removed[i] {
                *slot = next;
                next += 1;
            }
        }
        let n_new = next as usize;
        let mut b = CsrBuilder::new(n_new);
        // Vertex weights.
        for v in 0..n_old {
            if !removed[v] {
                b.set_vertex_weight(new_of_ext[v], old.vertex_weight(v as NodeId));
            }
        }
        for (i, &w) in self.add_vertices.iter().enumerate() {
            b.set_vertex_weight(new_of_ext[n_old + i], w);
        }
        // Surviving old edges minus explicit removals.
        let mut kill: Vec<(NodeId, NodeId)> = self
            .remove_edges
            .iter()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        kill.sort_unstable();
        kill.dedup();
        assert_eq!(
            kill.len(),
            self.remove_edges.len(),
            "duplicate edge removal"
        );
        for (u, v, w) in old.undirected_edges() {
            if removed[u as usize] || removed[v as usize] {
                continue;
            }
            if kill.binary_search(&(u, v)).is_ok() {
                continue;
            }
            b.add_edge(new_of_ext[u as usize], new_of_ext[v as usize], w);
        }
        for &e in &kill {
            assert!(
                old.has_edge(e.0, e.1),
                "remove_edges names a non-existent edge {{{},{}}}",
                e.0,
                e.1
            );
        }
        // Added edges.
        for &(u, v, w) in &self.add_edges {
            let (nu, nv) = (new_of_ext[u as usize], new_of_ext[v as usize]);
            assert!(
                nu != INVALID_NODE && nv != INVALID_NODE,
                "added edge touches removed vertex"
            );
            b.add_edge(nu, nv, w);
        }
        let new = b.build();
        let mut old_of_new = vec![INVALID_NODE; n_new];
        for v in 0..n_old {
            if new_of_ext[v] != INVALID_NODE {
                old_of_new[new_of_ext[v] as usize] = v as NodeId;
            }
        }
        IncrementalGraph::new(old.clone(), new, old_of_new)
    }
}

/// An old/new graph pair with vertex identity between them.
///
/// `old_of_new[v']` is the old id of the surviving vertex `v'`, or
/// [`INVALID_NODE`] if `v'` is newly added; `new_of_old` is the inverse
/// (with [`INVALID_NODE`] for deleted vertices).
#[derive(Clone, Debug)]
pub struct IncrementalGraph {
    old: CsrGraph,
    new: CsrGraph,
    old_of_new: Vec<NodeId>,
    new_of_old: Vec<NodeId>,
}

impl IncrementalGraph {
    /// Build from the old graph, new graph and the `old_of_new` map.
    ///
    /// Panics unless the map is a partial injection from new ids onto old
    /// ids (each old id used at most once, all in range).
    pub fn new(old: CsrGraph, new: CsrGraph, old_of_new: Vec<NodeId>) -> Self {
        assert_eq!(
            old_of_new.len(),
            new.num_vertices(),
            "old_of_new length mismatch"
        );
        let mut new_of_old = vec![INVALID_NODE; old.num_vertices()];
        for (v_new, &v_old) in old_of_new.iter().enumerate() {
            if v_old != INVALID_NODE {
                assert!((v_old as usize) < old.num_vertices(), "old id out of range");
                assert_eq!(
                    new_of_old[v_old as usize], INVALID_NODE,
                    "old vertex {v_old} mapped twice"
                );
                new_of_old[v_old as usize] = v_new as NodeId;
            }
        }
        IncrementalGraph {
            old,
            new,
            old_of_new,
            new_of_old,
        }
    }

    /// Pair two [`crate::DynGraph::snapshot`] results taken from the same
    /// evolving graph: slots shared by both snapshots are the survivors.
    pub fn from_snapshots(
        old: CsrGraph,
        old_map: &[NodeId],
        new: CsrGraph,
        new_map: &[NodeId],
    ) -> Self {
        let mut old_of_new = vec![INVALID_NODE; new.num_vertices()];
        for (slot, &v_old) in old_map.iter().enumerate() {
            if v_old == INVALID_NODE {
                continue;
            }
            if let Some(&v_new) = new_map.get(slot) {
                if v_new != INVALID_NODE {
                    old_of_new[v_new as usize] = v_old;
                }
            }
        }
        Self::new(old, new, old_of_new)
    }

    /// The graph before the incremental change.
    #[inline]
    pub fn old(&self) -> &CsrGraph {
        &self.old
    }

    /// The graph after the incremental change.
    #[inline]
    pub fn new_graph(&self) -> &CsrGraph {
        &self.new
    }

    /// Old id of new vertex `v`, or [`INVALID_NODE`] if `v` was added.
    #[inline]
    pub fn old_of_new(&self, v: NodeId) -> NodeId {
        self.old_of_new[v as usize]
    }

    /// New id of old vertex `v`, or [`INVALID_NODE`] if `v` was deleted.
    #[inline]
    pub fn new_of_old(&self, v: NodeId) -> NodeId {
        self.new_of_old[v as usize]
    }

    /// True if new-graph vertex `v` was added by the increment.
    #[inline]
    pub fn is_added(&self, v: NodeId) -> bool {
        self.old_of_new[v as usize] == INVALID_NODE
    }

    /// New ids of all added vertices (increasing order).
    pub fn added_vertices(&self) -> Vec<NodeId> {
        self.new.vertices().filter(|&v| self.is_added(v)).collect()
    }

    /// Old ids of all deleted vertices (increasing order).
    pub fn removed_vertices(&self) -> Vec<NodeId> {
        self.old
            .vertices()
            .filter(|&v| self.new_of_old[v as usize] == INVALID_NODE)
            .collect()
    }

    /// Count of surviving vertices.
    pub fn num_survivors(&self) -> usize {
        self.old_of_new
            .iter()
            .filter(|&&v| v != INVALID_NODE)
            .count()
    }

    /// Recover the edit list (for reporting and tests).
    pub fn diff(&self) -> GraphDelta {
        let added_v: Vec<NodeId> = self.added_vertices();
        let removed_v = self.removed_vertices();
        // Extended-id addressing for added vertices: n_old + rank.
        let n_old = self.old.num_vertices() as NodeId;
        let ext_of_new = |v: NodeId| -> NodeId {
            let o = self.old_of_new[v as usize];
            if o != INVALID_NODE {
                o
            } else {
                n_old + added_v.binary_search(&v).unwrap() as NodeId
            }
        };
        let mut add_edges = Vec::new();
        for (u, v, w) in self.new.undirected_edges() {
            let (ou, ov) = (self.old_of_new[u as usize], self.old_of_new[v as usize]);
            let existed = ou != INVALID_NODE && ov != INVALID_NODE && self.old.has_edge(ou, ov);
            if !existed {
                let (a, b) = (ext_of_new(u), ext_of_new(v));
                add_edges.push(if a < b { (a, b, w) } else { (b, a, w) });
            }
        }
        let mut remove_edges = Vec::new();
        for (u, v, _) in self.old.undirected_edges() {
            let (nu, nv) = (self.new_of_old[u as usize], self.new_of_old[v as usize]);
            if nu == INVALID_NODE || nv == INVALID_NODE {
                continue; // implicit via vertex removal
            }
            if !self.new.has_edge(nu, nv) {
                remove_edges.push((u, v));
            }
        }
        add_edges.sort_unstable();
        remove_edges.sort_unstable();
        GraphDelta {
            add_vertices: added_v.iter().map(|&v| self.new.vertex_weight(v)).collect(),
            remove_vertices: removed_v,
            add_edges,
            remove_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn apply_pure_growth() {
        // Append vertices 5, 6 hanging off vertex 4.
        let delta = GraphDelta {
            add_vertices: vec![1, 1],
            add_edges: vec![(4, 5, 1), (5, 6, 1)],
            ..Default::default()
        };
        let inc = delta.apply(&path5());
        assert_eq!(inc.new_graph().num_vertices(), 7);
        assert_eq!(inc.new_graph().num_edges(), 6);
        assert_eq!(inc.added_vertices(), vec![5, 6]);
        assert_eq!(inc.old_of_new(3), 3);
        assert!(inc.is_added(6));
        assert_eq!(inc.num_survivors(), 5);
        inc.new_graph().validate().unwrap();
    }

    #[test]
    fn apply_with_removals() {
        // Remove vertex 2 (splitting the path), bridge with a new edge 1-3,
        // and drop edge 3-4.
        let delta = GraphDelta {
            add_vertices: vec![],
            remove_vertices: vec![2],
            add_edges: vec![(1, 3, 1)],
            remove_edges: vec![(3, 4)],
        };
        let inc = delta.apply(&path5());
        let g = inc.new_graph();
        assert_eq!(g.num_vertices(), 4);
        // Edges: 0-1 (kept), 1-3 (added). 1-2/2-3 die with vertex 2, 3-4 removed.
        assert_eq!(g.num_edges(), 2);
        assert_eq!(inc.new_of_old(2), INVALID_NODE);
        assert_eq!(inc.new_of_old(3), 2);
        assert_eq!(inc.new_of_old(4), 3);
        assert_eq!(inc.removed_vertices(), vec![2]);
        g.validate().unwrap();
    }

    #[test]
    fn diff_inverts_apply() {
        let delta = GraphDelta {
            add_vertices: vec![7, 9],
            remove_vertices: vec![0],
            add_edges: vec![(1, 5, 2), (5, 6, 3)],
            remove_edges: vec![(2, 3)],
        };
        let inc = delta.apply(&path5());
        let back = inc.diff();
        assert_eq!(back.add_vertices, delta.add_vertices);
        assert_eq!(back.remove_vertices, delta.remove_vertices);
        assert_eq!(back.remove_edges, vec![(2, 3)]);
        let mut expect = delta.add_edges.clone();
        expect.sort_unstable();
        assert_eq!(back.add_edges, expect);
    }

    #[test]
    fn empty_delta_is_identity() {
        let delta = GraphDelta::default();
        assert!(delta.is_empty());
        let inc = delta.apply(&path5());
        assert_eq!(inc.new_graph(), inc.old());
        assert!(inc.diff().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-existent edge")]
    fn removing_missing_edge_panics() {
        let delta = GraphDelta {
            remove_edges: vec![(0, 4)],
            ..Default::default()
        };
        delta.apply(&path5());
    }

    #[test]
    fn from_snapshots_identity() {
        use crate::dyn_graph::DynGraph;
        let mut dg = DynGraph::with_vertices(3);
        dg.add_edge(0, 1, 1);
        let (old, old_map) = dg.snapshot();
        dg.add_vertex(1);
        dg.add_edge(2, 3, 1);
        dg.remove_vertex(1);
        let (new, new_map) = dg.snapshot();
        let inc = IncrementalGraph::from_snapshots(old, &old_map, new, &new_map);
        // Survivors: slots 0 and 2. Slot 1 deleted, slot 3 added.
        assert_eq!(inc.num_survivors(), 2);
        assert_eq!(inc.removed_vertices(), vec![1]);
        assert_eq!(inc.added_vertices().len(), 1);
        assert_eq!(inc.old_of_new(0), 0); // slot 0
        assert_eq!(inc.old_of_new(1), 2); // slot 2 was old id 2, new id 1
    }

    #[test]
    fn validate_accepts_well_formed() {
        let delta = GraphDelta {
            add_vertices: vec![7, 9],
            remove_vertices: vec![0, 2],
            add_edges: vec![(1, 5, 2), (5, 6, 3)],
            remove_edges: vec![(3, 4)],
        };
        delta.validate(5).unwrap();
    }

    #[test]
    fn validate_typed_errors() {
        let n = 5;
        let unsorted = GraphDelta {
            remove_vertices: vec![2, 1],
            ..Default::default()
        };
        assert_eq!(
            unsorted.validate(n),
            Err(DeltaError::RemoveVerticesUnsorted)
        );
        let dup_rm_v = GraphDelta {
            remove_vertices: vec![1, 1],
            ..Default::default()
        };
        assert_eq!(
            dup_rm_v.validate(n),
            Err(DeltaError::RemoveVerticesUnsorted)
        );
        let oor_v = GraphDelta {
            remove_vertices: vec![5],
            ..Default::default()
        };
        assert_eq!(
            oor_v.validate(n),
            Err(DeltaError::RemoveVertexOutOfRange { v: 5, n_old: 5 })
        );
        // Added edges may use extended ids; removed edges may not.
        let ext_add = GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(0, 5, 1)],
            ..Default::default()
        };
        ext_add.validate(n).unwrap();
        let ext_rm = GraphDelta {
            add_vertices: vec![1],
            remove_edges: vec![(0, 5)],
            ..Default::default()
        };
        assert_eq!(
            ext_rm.validate(n),
            Err(DeltaError::EdgeOutOfRange {
                u: 0,
                v: 5,
                bound: 5,
                list: "removed"
            })
        );
        let loop_e = GraphDelta {
            add_edges: vec![(3, 3, 1)],
            ..Default::default()
        };
        assert_eq!(
            loop_e.validate(n),
            Err(DeltaError::SelfLoop {
                v: 3,
                list: "added"
            })
        );
        let touches = GraphDelta {
            remove_vertices: vec![2],
            add_edges: vec![(2, 4, 1)],
            ..Default::default()
        };
        assert_eq!(
            touches.validate(n),
            Err(DeltaError::EdgeTouchesRemovedVertex {
                u: 2,
                v: 4,
                list: "added"
            })
        );
        let dup_add = GraphDelta {
            add_edges: vec![(1, 3, 1), (3, 1, 2)],
            ..Default::default()
        };
        assert_eq!(
            dup_add.validate(n),
            Err(DeltaError::DuplicateAddEdge { u: 1, v: 3 })
        );
        let dup_rm = GraphDelta {
            remove_edges: vec![(4, 0), (0, 4)],
            ..Default::default()
        };
        assert_eq!(
            dup_rm.validate(n),
            Err(DeltaError::DuplicateRemoveEdge { u: 0, v: 4 })
        );
    }

    #[test]
    fn summary_format() {
        let delta = GraphDelta {
            add_vertices: vec![1, 1, 1],
            add_edges: vec![(0, 5, 1)],
            ..Default::default()
        };
        assert_eq!(delta.summary(), "+3v -0v +1e -0e");
    }
}
