//! Breadth-first traversal utilities.
//!
//! Phase 1 of the partitioner assigns each new vertex to the partition of
//! the *nearest old vertex* (shortest graph distance in `G'`), and phase 2
//! layers each partition by distance from its boundary — both are
//! multi-source BFS problems provided here in reusable form.

use crate::csr::CsrGraph;
use crate::{NodeId, INVALID_NODE};

/// Distance label for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single/multi-source BFS distances from `sources` over the whole graph.
pub fn bfs_distances(graph: &CsrGraph, sources: &[NodeId]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.num_vertices()];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(sources.len());
    for &s in sources {
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            frontier.push(s);
        }
    }
    let mut next: Vec<NodeId> = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                if dist[u as usize] == UNREACHABLE {
                    dist[u as usize] = level;
                    next.push(u);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// Multi-source BFS that propagates an *owner label* outward: every vertex
/// receives the label of (one of) the nearest seed(s), ties broken by the
/// smaller label for determinism. Returns `(owner, dist)`; vertices
/// unreachable from any seed keep `(u32::MAX, UNREACHABLE)`.
///
/// This is exactly the paper's phase-1 rule (eq. 7): `M'(v) = M(x)` where
/// `x` minimizes `d(v, x)` over old vertices.
pub fn nearest_owner_bfs(graph: &CsrGraph, seeds: &[(NodeId, u32)]) -> (Vec<u32>, Vec<u32>) {
    let n = graph.num_vertices();
    let mut owner = vec![u32::MAX; n];
    let mut dist = vec![UNREACHABLE; n];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &(s, lab) in seeds {
        let sl = s as usize;
        if dist[sl] != 0 || owner[sl] > lab {
            // Multiple seeds on one vertex: keep the smallest label.
            if dist[sl] == UNREACHABLE {
                frontier.push(s);
            }
            dist[sl] = 0;
            owner[sl] = owner[sl].min(lab);
        }
    }
    let mut next: Vec<NodeId> = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        // First sweep: claim distances; second sweep within the level keeps
        // the minimum label among same-distance predecessors (determinism).
        for &v in &frontier {
            let lab = owner[v as usize];
            for &u in graph.neighbors(v) {
                let ul = u as usize;
                if dist[ul] == UNREACHABLE {
                    dist[ul] = level;
                    owner[ul] = lab;
                    next.push(u);
                } else if dist[ul] == level && owner[ul] > lab {
                    owner[ul] = lab;
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    (owner, dist)
}

/// Connected components. Returns `(num_components, component_id_per_vertex)`
/// with component ids dense in `0..num_components`, numbered by smallest
/// contained vertex.
pub fn connected_components(graph: &CsrGraph) -> (usize, Vec<u32>) {
    components_filtered(graph, |_| true)
}

/// Connected components of the subgraph induced by `keep(v)`. Vertices
/// outside the filter get component id `u32::MAX`.
pub fn components_filtered(graph: &CsrGraph, keep: impl Fn(NodeId) -> bool) -> (usize, Vec<u32>) {
    let n = graph.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut count = 0u32;
    for v in graph.vertices() {
        if comp[v as usize] != u32::MAX || !keep(v) {
            continue;
        }
        comp[v as usize] = count;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for &u in graph.neighbors(x) {
                if comp[u as usize] == u32::MAX && keep(u) {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

/// True if the whole graph is connected (the paper assumes `G'` connected
/// for the basic assignment rule; callers check this to pick a fallback).
pub fn is_connected(graph: &CsrGraph) -> bool {
    graph.num_vertices() <= 1 || connected_components(graph).0 == 1
}

/// BFS visit order from `source` (for layout experiments and tests).
pub fn bfs_order(graph: &CsrGraph, source: NodeId) -> Vec<NodeId> {
    let n = graph.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    seen[source as usize] = true;
    order.push(source);
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &u in graph.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                order.push(u);
            }
        }
    }
    order
}

/// Eccentricity-style pseudo-peripheral vertex: repeated BFS from the
/// farthest vertex. Used by spectral bisection to seed Lanczos and by mesh
/// diagnostics.
pub fn pseudo_peripheral(graph: &CsrGraph, start: NodeId) -> NodeId {
    let mut v = start;
    let mut ecc = 0u32;
    loop {
        let dist = bfs_distances(graph, &[v]);
        let (far, fd) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHABLE)
            .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
            .map(|(i, &d)| (i as NodeId, d))
            .unwrap_or((v, 0));
        if fd <= ecc {
            return v;
        }
        ecc = fd;
        v = far;
    }
}

/// Cluster the vertices for which `in_set` is true into connected clusters
/// (within the induced subgraph), returning one `Vec` per cluster. The
/// paper needs this for new vertices not connected to any old vertex: "the
/// new nodes … can be clustered together (into potentially disjoint
/// clusters) and assigned to the partition that has the least number of
/// vertices".
pub fn clusters_of(graph: &CsrGraph, in_set: &[bool]) -> Vec<Vec<NodeId>> {
    let (count, comp) = components_filtered(graph, |v| in_set[v as usize]);
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); count];
    for v in graph.vertices() {
        let c = comp[v as usize];
        if c != u32::MAX {
            out[c as usize].push(v);
        }
    }
    out
}

/// Farthest-first check helper: the nearest seed actually attained.
/// Verifies the `nearest_owner_bfs` output in tests/property suites.
pub fn verify_nearest_owner(
    graph: &CsrGraph,
    seeds: &[(NodeId, u32)],
    owner: &[u32],
    dist: &[u32],
) -> bool {
    // Distances from each label's seed set must match the claimed dist, and
    // the owning label must achieve it.
    let mut by_label: Vec<(u32, Vec<NodeId>)> = Vec::new();
    for &(s, lab) in seeds {
        match by_label.iter_mut().find(|(l, _)| *l == lab) {
            Some((_, v)) => v.push(s),
            None => by_label.push((lab, vec![s])),
        }
    }
    let all_sources: Vec<NodeId> = seeds.iter().map(|&(s, _)| s).collect();
    let true_dist = bfs_distances(graph, &all_sources);
    for v in graph.vertices() {
        if true_dist[v as usize] != dist[v as usize] {
            return false;
        }
        if dist[v as usize] == UNREACHABLE {
            if owner[v as usize] != u32::MAX {
                return false;
            }
            continue;
        }
        let lab = owner[v as usize];
        let Some((_, srcs)) = by_label.iter().find(|(l, _)| *l == lab) else {
            return false;
        };
        let lab_dist = bfs_distances(graph, srcs);
        if lab_dist[v as usize] != dist[v as usize] {
            return false;
        }
    }
    true
}

/// Convenience: nearest old vertex distances for an incremental graph
/// (sources = all surviving vertices).
pub fn survivor_seeds(inc: &crate::IncrementalGraph, part_of_old: &[u32]) -> Vec<(NodeId, u32)> {
    let mut seeds = Vec::with_capacity(inc.num_survivors());
    for v in inc.new_graph().vertices() {
        let old = inc.old_of_new(v);
        if old != INVALID_NODE {
            seeds.push((v, part_of_old[old as usize]));
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> CsrGraph {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        CsrGraph::from_edges(n, &edges)
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, &[0]);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, &[0, 4]);
        assert_eq!(d2, vec![0, 1, 2, 1, 0]);
    }

    #[test]
    fn unreachable_marked() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, &[0]);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn nearest_owner_on_path() {
        let g = path(7);
        let (owner, dist) = nearest_owner_bfs(&g, &[(0, 10), (6, 20)]);
        assert_eq!(owner, vec![10, 10, 10, 10, 20, 20, 20]); // tie at 3 → smaller label
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1, 0]);
        assert!(verify_nearest_owner(&g, &[(0, 10), (6, 20)], &owner, &dist));
    }

    #[test]
    fn nearest_owner_tie_determinism() {
        // Square: seeds at opposite corners with labels 5 and 3; the two
        // middle vertices are equidistant → both take label 3.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (owner, _) = nearest_owner_bfs(&g, &[(0, 5), (2, 3)]);
        assert_eq!(owner[1], 3);
        assert_eq!(owner[3], 3);
    }

    #[test]
    fn components() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let (n, comp) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], 1); // isolated vertex 3 is its own component
        assert_eq!(comp[4], comp[5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(4)));
    }

    #[test]
    fn filtered_components() {
        // Path 0-1-2-3-4 with 2 filtered out → {0,1} and {3,4}.
        let g = path(5);
        let (n, comp) = components_filtered(&g, |v| v != 2);
        assert_eq!(n, 2);
        assert_eq!(comp[2], u32::MAX);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn clusters_listing() {
        let g = path(5);
        let in_set = vec![true, true, false, true, true];
        let cl = clusters_of(&g, &in_set);
        assert_eq!(cl, vec![vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn bfs_order_visits_all() {
        let g = path(4);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0]);
    }

    #[test]
    fn pseudo_peripheral_of_path_is_end() {
        let g = path(9);
        let v = pseudo_peripheral(&g, 4);
        assert!(v == 0 || v == 8, "got {v}");
    }
}
