//! Plain-text graph and partition I/O in the METIS format.
//!
//! The METIS `.graph` format is the de-facto interchange format for
//! partitioning research (Chaco/METIS/ParMETIS/Zoltan all read it):
//!
//! ```text
//! % comment lines start with '%'
//! <num_vertices> <num_edges> [fmt [ncon]]
//! <neighbors of vertex 1, 1-based> ...
//! ...
//! ```
//!
//! `fmt` is a 3-digit flag string: `1xx` vertex sizes (unsupported), `x1x`
//! vertex weights, `xx1` edge weights. Partition files are one 0-based
//! partition id per line (the `.part.P` convention).

use crate::csr::{CsrBuilder, CsrGraph};
use crate::partition::Partitioning;
use crate::{NodeId, PartId, Weight};
use std::fmt::Write as _;

/// Errors from the text parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Header missing or malformed.
    BadHeader(String),
    /// A vertex line failed to parse.
    BadLine { line: usize, reason: String },
    /// Edge counts or symmetry did not match the header.
    Inconsistent(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Inconsistent(s) => write!(f, "inconsistent graph: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a graph in METIS format. Writes edge weights iff any edge
/// weight differs from 1; vertex weights iff any differs from 1.
pub fn write_metis(g: &CsrGraph) -> String {
    let has_ew = g
        .vertices()
        .any(|v| g.edge_weights(v).iter().any(|&w| w != 1));
    let has_vw = g.vertex_weights().iter().any(|&w| w != 1);
    let fmt = match (has_vw, has_ew) {
        (false, false) => "",
        (false, true) => " 001",
        (true, false) => " 010",
        (true, true) => " 011",
    };
    let mut out = String::new();
    let _ = writeln!(out, "{} {}{}", g.num_vertices(), g.num_edges(), fmt);
    for v in g.vertices() {
        let mut first = true;
        if has_vw {
            let _ = write!(out, "{}", g.vertex_weight(v));
            first = false;
        }
        for (u, w) in g.edges_of(v) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", u + 1);
            if has_ew {
                let _ = write!(out, " {w}");
            }
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parse a METIS-format graph.
pub fn read_metis(text: &str) -> Result<CsrGraph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim_start().starts_with('%'))
        .map(|(i, l)| (i + 1, l.trim()));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 {
        return Err(ParseError::BadHeader(header.into()));
    }
    let n: usize = head[0]
        .parse()
        .map_err(|_| ParseError::BadHeader(format!("bad vertex count {}", head[0])))?;
    let m: usize = head[1]
        .parse()
        .map_err(|_| ParseError::BadHeader(format!("bad edge count {}", head[1])))?;
    let fmt = head.get(2).copied().unwrap_or("000");
    let fmt_padded = format!("{fmt:0>3}");
    let has_vs = fmt_padded.as_bytes()[0] == b'1';
    let has_vw = fmt_padded.as_bytes()[1] == b'1';
    let has_ew = fmt_padded.as_bytes()[2] == b'1';
    if has_vs {
        return Err(ParseError::BadHeader(
            "vertex sizes (fmt 1xx) unsupported".into(),
        ));
    }
    let ncon: usize = head
        .get(3)
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(if has_vw { 1 } else { 0 });
    if ncon > 1 {
        return Err(ParseError::BadHeader(
            "multiple vertex constraints unsupported".into(),
        ));
    }

    let mut b = CsrBuilder::with_edge_capacity(n, m);
    let mut seen_edges = 0usize;
    let mut v: NodeId = 0;
    for (lineno, line) in lines {
        if v as usize >= n {
            if line.is_empty() {
                continue;
            }
            return Err(ParseError::Inconsistent(format!(
                "extra vertex line {lineno} beyond {n} vertices"
            )));
        }
        let mut toks = line.split_whitespace().map(|t| {
            t.parse::<u64>().map_err(|_| ParseError::BadLine {
                line: lineno,
                reason: format!("bad token {t:?}"),
            })
        });
        if has_vw {
            let w = toks.next().transpose()?.ok_or(ParseError::BadLine {
                line: lineno,
                reason: "missing vertex weight".into(),
            })?;
            b.set_vertex_weight(v, w as Weight);
        }
        while let Some(u) = toks.next().transpose()? {
            if u == 0 || u as usize > n {
                return Err(ParseError::BadLine {
                    line: lineno,
                    reason: format!("neighbor {u} out of range"),
                });
            }
            let u = (u - 1) as NodeId;
            let w = if has_ew {
                toks.next().transpose()?.ok_or(ParseError::BadLine {
                    line: lineno,
                    reason: "missing edge weight".into(),
                })? as Weight
            } else {
                1
            };
            // Each undirected edge appears on both endpoint lines; add once.
            if v < u {
                b.add_edge(v, u, w);
                seen_edges += 1;
            }
        }
        v += 1;
    }
    if (v as usize) != n {
        return Err(ParseError::Inconsistent(format!(
            "{v} vertex lines, header says {n}"
        )));
    }
    if seen_edges != m {
        return Err(ParseError::Inconsistent(format!(
            "{seen_edges} edges parsed, header says {m}"
        )));
    }
    let g = b.build();
    g.validate().map_err(ParseError::Inconsistent)?;
    Ok(g)
}

/// Serialize a partition vector, one id per line (`.part` convention).
pub fn write_partition(p: &Partitioning) -> String {
    let mut out = String::with_capacity(p.num_vertices() * 3);
    for v in 0..p.num_vertices() {
        let _ = writeln!(out, "{}", p.part_of(v as NodeId));
    }
    out
}

/// Parse a partition file for `graph` with `num_parts` partitions.
pub fn read_partition(
    text: &str,
    graph: &CsrGraph,
    num_parts: usize,
) -> Result<Partitioning, ParseError> {
    let mut assign: Vec<PartId> = Vec::with_capacity(graph.num_vertices());
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let p: PartId = t.parse().map_err(|_| ParseError::BadLine {
            line: i + 1,
            reason: format!("bad partition id {t:?}"),
        })?;
        if p as usize >= num_parts {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: format!("partition {p} out of range 0..{num_parts}"),
            });
        }
        assign.push(p);
    }
    if assign.len() != graph.num_vertices() {
        return Err(ParseError::Inconsistent(format!(
            "{} partition entries for {} vertices",
            assign.len(),
            graph.num_vertices()
        )));
    }
    Ok(Partitioning::from_assignment(graph, num_parts, assign))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::grid(4, 5);
        let text = write_metis(&g);
        let back = read_metis(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut g = CsrGraph::from_weighted_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 9)]);
        g.set_vertex_weights(vec![2, 1, 1, 5]);
        let text = write_metis(&g);
        assert!(text.starts_with("4 3 011"));
        let back = read_metis(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "% a comment\n3 2\n2\n1 3\n2\n";
        let g = read_metis(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn header_edge_count_mismatch_rejected() {
        let text = "3 5\n2\n1 3\n2\n";
        assert!(matches!(read_metis(text), Err(ParseError::Inconsistent(_))));
    }

    #[test]
    fn neighbor_out_of_range_rejected() {
        let text = "2 1\n2\n7\n";
        assert!(matches!(read_metis(text), Err(ParseError::BadLine { .. })));
    }

    #[test]
    fn partition_roundtrip() {
        let g = generators::cycle(6);
        let p = Partitioning::from_assignment(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        let text = write_partition(&p);
        let back = read_partition(&text, &g, 3).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn partition_out_of_range_rejected() {
        let g = generators::cycle(3);
        assert!(read_partition("0\n1\n5\n", &g, 2).is_err());
    }
}
