//! Graph, delta and partition I/O: METIS-compatible text plus compact
//! binary codecs for the durability layer.
//!
//! The METIS `.graph` format is the de-facto interchange format for
//! partitioning research (Chaco/METIS/ParMETIS/Zoltan all read it):
//!
//! ```text
//! % comment lines start with '%'
//! <num_vertices> <num_edges> [fmt [ncon]]
//! <neighbors of vertex 1, 1-based> ...
//! ...
//! ```
//!
//! `fmt` is a 3-digit flag string: `1xx` vertex sizes (unsupported), `x1x`
//! vertex weights, `xx1` edge weights. Partition files are one 0-based
//! partition id per line (the `.part.P` convention).
//!
//! The binary codecs ([`write_graph_bin`], [`write_delta_bin`],
//! [`write_partition_bin`] and their readers) are little-endian,
//! magic-tagged and versioned; `igp-store` frames them into its WAL and
//! snapshot files (DESIGN.md §9). [`write_delta_fields`] /
//! [`read_delta_fields`] are the one text grammar for deltas
//! (`av=… rv=… ae=… re=…`), shared by the service wire protocol and
//! `igp-cli`.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::delta::GraphDelta;
use crate::partition::Partitioning;
use crate::{NodeId, PartId, Weight};
use std::fmt::Write as _;

/// Errors from the text and binary parsers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Header missing or malformed.
    BadHeader(String),
    /// A vertex line failed to parse.
    BadLine { line: usize, reason: String },
    /// Edge counts or symmetry did not match the header.
    Inconsistent(String),
    /// A `key=value` field failed to parse (delta text grammar).
    BadField(String),
    /// A binary payload is truncated, mistagged or self-inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(s) => write!(f, "bad header: {s}"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            ParseError::Inconsistent(s) => write!(f, "inconsistent graph: {s}"),
            ParseError::BadField(s) => write!(f, "{s}"),
            ParseError::Corrupt(s) => write!(f, "corrupt binary payload: {s}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a graph in METIS format. Writes edge weights iff any edge
/// weight differs from 1; vertex weights iff any differs from 1.
pub fn write_metis(g: &CsrGraph) -> String {
    let has_ew = g
        .vertices()
        .any(|v| g.edge_weights(v).iter().any(|&w| w != 1));
    let has_vw = g.vertex_weights().iter().any(|&w| w != 1);
    let fmt = match (has_vw, has_ew) {
        (false, false) => "",
        (false, true) => " 001",
        (true, false) => " 010",
        (true, true) => " 011",
    };
    let mut out = String::new();
    let _ = writeln!(out, "{} {}{}", g.num_vertices(), g.num_edges(), fmt);
    for v in g.vertices() {
        let mut first = true;
        if has_vw {
            let _ = write!(out, "{}", g.vertex_weight(v));
            first = false;
        }
        for (u, w) in g.edges_of(v) {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{}", u + 1);
            if has_ew {
                let _ = write!(out, " {w}");
            }
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parse a METIS-format graph.
pub fn read_metis(text: &str) -> Result<CsrGraph, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim_start().starts_with('%'))
        .map(|(i, l)| (i + 1, l.trim()));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 {
        return Err(ParseError::BadHeader(header.into()));
    }
    let n: usize = head[0]
        .parse()
        .map_err(|_| ParseError::BadHeader(format!("bad vertex count {}", head[0])))?;
    let m: usize = head[1]
        .parse()
        .map_err(|_| ParseError::BadHeader(format!("bad edge count {}", head[1])))?;
    let fmt = head.get(2).copied().unwrap_or("000");
    let fmt_padded = format!("{fmt:0>3}");
    let has_vs = fmt_padded.as_bytes()[0] == b'1';
    let has_vw = fmt_padded.as_bytes()[1] == b'1';
    let has_ew = fmt_padded.as_bytes()[2] == b'1';
    if has_vs {
        return Err(ParseError::BadHeader(
            "vertex sizes (fmt 1xx) unsupported".into(),
        ));
    }
    let ncon: usize = head
        .get(3)
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(if has_vw { 1 } else { 0 });
    if ncon > 1 {
        return Err(ParseError::BadHeader(
            "multiple vertex constraints unsupported".into(),
        ));
    }

    let mut b = CsrBuilder::with_edge_capacity(n, m);
    let mut seen_edges = 0usize;
    let mut v: NodeId = 0;
    for (lineno, line) in lines {
        if v as usize >= n {
            if line.is_empty() {
                continue;
            }
            return Err(ParseError::Inconsistent(format!(
                "extra vertex line {lineno} beyond {n} vertices"
            )));
        }
        let mut toks = line.split_whitespace().map(|t| {
            t.parse::<u64>().map_err(|_| ParseError::BadLine {
                line: lineno,
                reason: format!("bad token {t:?}"),
            })
        });
        if has_vw {
            let w = toks.next().transpose()?.ok_or(ParseError::BadLine {
                line: lineno,
                reason: "missing vertex weight".into(),
            })?;
            b.set_vertex_weight(v, w as Weight);
        }
        while let Some(u) = toks.next().transpose()? {
            if u == 0 || u as usize > n {
                return Err(ParseError::BadLine {
                    line: lineno,
                    reason: format!("neighbor {u} out of range"),
                });
            }
            let u = (u - 1) as NodeId;
            let w = if has_ew {
                toks.next().transpose()?.ok_or(ParseError::BadLine {
                    line: lineno,
                    reason: "missing edge weight".into(),
                })? as Weight
            } else {
                1
            };
            // Each undirected edge appears on both endpoint lines; add once.
            if v < u {
                b.add_edge(v, u, w);
                seen_edges += 1;
            }
        }
        v += 1;
    }
    if (v as usize) != n {
        return Err(ParseError::Inconsistent(format!(
            "{v} vertex lines, header says {n}"
        )));
    }
    if seen_edges != m {
        return Err(ParseError::Inconsistent(format!(
            "{seen_edges} edges parsed, header says {m}"
        )));
    }
    let g = b.build();
    g.validate().map_err(ParseError::Inconsistent)?;
    Ok(g)
}

/// Serialize a partition vector, one id per line (`.part` convention).
pub fn write_partition(p: &Partitioning) -> String {
    let mut out = String::with_capacity(p.num_vertices() * 3);
    for v in 0..p.num_vertices() {
        let _ = writeln!(out, "{}", p.part_of(v as NodeId));
    }
    out
}

/// Parse a partition file for `graph` with `num_parts` partitions.
pub fn read_partition(
    text: &str,
    graph: &CsrGraph,
    num_parts: usize,
) -> Result<Partitioning, ParseError> {
    let mut assign: Vec<PartId> = Vec::with_capacity(graph.num_vertices());
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let p: PartId = t.parse().map_err(|_| ParseError::BadLine {
            line: i + 1,
            reason: format!("bad partition id {t:?}"),
        })?;
        if p as usize >= num_parts {
            return Err(ParseError::BadLine {
                line: i + 1,
                reason: format!("partition {p} out of range 0..{num_parts}"),
            });
        }
        assign.push(p);
    }
    if assign.len() != graph.num_vertices() {
        return Err(ParseError::Inconsistent(format!(
            "{} partition entries for {} vertices",
            assign.len(),
            graph.num_vertices()
        )));
    }
    Ok(Partitioning::from_assignment(graph, num_parts, assign))
}

// ---------------------------------------------------------------------
// Binary codecs (magic-tagged, versioned, little-endian).
// ---------------------------------------------------------------------

const GRAPH_MAGIC: [u8; 4] = *b"IGPG";
const DELTA_MAGIC: [u8; 4] = *b"IGPD";
const PART_MAGIC: [u8; 4] = *b"IGPP";
const BIN_VERSION: u32 = 1;

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Bounds-checked little-endian reader over a byte slice.
struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BinReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                ParseError::Corrupt(format!(
                    "truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.bytes.len() - self.pos
                ))
            })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32` length prefix, sanity-bounded so a corrupt length cannot
    /// trigger a huge allocation before the actual reads fail.
    fn len(&mut self, what: &str) -> Result<usize, ParseError> {
        let n = self.u32()? as usize;
        let cap = self.bytes.len().saturating_sub(self.pos);
        // Every encoded element is ≥ 1 byte, so a valid count never
        // exceeds the remaining payload size.
        if n > cap {
            return Err(ParseError::Corrupt(format!(
                "{what} count {n} exceeds remaining {cap} bytes"
            )));
        }
        Ok(n)
    }

    fn header(&mut self, magic: [u8; 4], what: &str) -> Result<(), ParseError> {
        if self.take(4)? != magic {
            return Err(ParseError::Corrupt(format!("not a {what} payload")));
        }
        let ver = self.u32()?;
        if ver != BIN_VERSION {
            return Err(ParseError::Corrupt(format!(
                "unsupported {what} version {ver}"
            )));
        }
        Ok(())
    }

    fn finish(&self, what: &str) -> Result<(), ParseError> {
        if self.pos != self.bytes.len() {
            return Err(ParseError::Corrupt(format!(
                "{} trailing bytes after {what}",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Serialize a graph to the compact binary snapshot format.
pub fn write_graph_bin(g: &CsrGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + g.num_vertices() * 8 + g.num_edges() * 16);
    out.extend_from_slice(&GRAPH_MAGIC);
    put_u32(&mut out, BIN_VERSION);
    put_u32(&mut out, g.num_vertices() as u32);
    put_u64(&mut out, g.num_edges() as u64);
    for &w in g.vertex_weights() {
        put_u64(&mut out, w);
    }
    for (u, v, w) in g.undirected_edges() {
        put_u32(&mut out, u);
        put_u32(&mut out, v);
        put_u64(&mut out, w);
    }
    out
}

/// Parse a [`write_graph_bin`] payload.
pub fn read_graph_bin(bytes: &[u8]) -> Result<CsrGraph, ParseError> {
    let mut r = BinReader::new(bytes);
    r.header(GRAPH_MAGIC, "graph")?;
    let n = r.u32()? as usize;
    let m = r.u64()? as usize;
    if n.saturating_mul(8) > bytes.len() || m.saturating_mul(16) > bytes.len() {
        return Err(ParseError::Corrupt(format!(
            "graph header n={n} m={m} larger than payload"
        )));
    }
    let mut b = CsrBuilder::with_edge_capacity(n, m);
    for v in 0..n {
        b.set_vertex_weight(v as NodeId, r.u64()?);
    }
    for _ in 0..m {
        let (u, v) = (r.u32()?, r.u32()?);
        let w = r.u64()?;
        if (u as usize) >= n || (v as usize) >= n || u == v {
            return Err(ParseError::Corrupt(format!("bad edge {{{u},{v}}} (n={n})")));
        }
        b.add_edge(u, v, w);
    }
    r.finish("graph")?;
    let g = b.build();
    g.validate().map_err(ParseError::Inconsistent)?;
    Ok(g)
}

/// Serialize a delta to the compact binary WAL format.
pub fn write_delta_bin(d: &GraphDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        24 + d.add_vertices.len() * 8
            + d.remove_vertices.len() * 4
            + d.add_edges.len() * 16
            + d.remove_edges.len() * 8,
    );
    out.extend_from_slice(&DELTA_MAGIC);
    put_u32(&mut out, BIN_VERSION);
    put_u32(&mut out, d.add_vertices.len() as u32);
    for &w in &d.add_vertices {
        put_u64(&mut out, w);
    }
    put_u32(&mut out, d.remove_vertices.len() as u32);
    for &v in &d.remove_vertices {
        put_u32(&mut out, v);
    }
    put_u32(&mut out, d.add_edges.len() as u32);
    for &(u, v, w) in &d.add_edges {
        put_u32(&mut out, u);
        put_u32(&mut out, v);
        put_u64(&mut out, w);
    }
    put_u32(&mut out, d.remove_edges.len() as u32);
    for &(u, v) in &d.remove_edges {
        put_u32(&mut out, u);
        put_u32(&mut out, v);
    }
    out
}

/// Parse a [`write_delta_bin`] payload. Structural validity against a
/// concrete graph is *not* checked here — callers revalidate with
/// [`GraphDelta::validate`] / the coalescer exactly as they do for
/// wire-received deltas.
pub fn read_delta_bin(bytes: &[u8]) -> Result<GraphDelta, ParseError> {
    let mut r = BinReader::new(bytes);
    r.header(DELTA_MAGIC, "delta")?;
    let mut d = GraphDelta::default();
    let nav = r.len("add_vertices")?;
    for _ in 0..nav {
        d.add_vertices.push(r.u64()?);
    }
    let nrv = r.len("remove_vertices")?;
    for _ in 0..nrv {
        d.remove_vertices.push(r.u32()?);
    }
    let nae = r.len("add_edges")?;
    for _ in 0..nae {
        let (u, v) = (r.u32()?, r.u32()?);
        d.add_edges.push((u, v, r.u64()?));
    }
    let nre = r.len("remove_edges")?;
    for _ in 0..nre {
        let u = r.u32()?;
        d.remove_edges.push((u, r.u32()?));
    }
    r.finish("delta")?;
    Ok(d)
}

/// Serialize a partitioning to the compact binary snapshot format.
pub fn write_partition_bin(p: &Partitioning) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + p.num_vertices() * 4);
    out.extend_from_slice(&PART_MAGIC);
    put_u32(&mut out, BIN_VERSION);
    put_u32(&mut out, p.num_parts() as u32);
    put_u32(&mut out, p.num_vertices() as u32);
    for v in 0..p.num_vertices() {
        put_u32(&mut out, p.part_of(v as NodeId));
    }
    out
}

/// Parse a [`write_partition_bin`] payload for `graph`, checking the
/// same consistency conditions as [`read_partition`].
pub fn read_partition_bin(bytes: &[u8], graph: &CsrGraph) -> Result<Partitioning, ParseError> {
    let mut r = BinReader::new(bytes);
    r.header(PART_MAGIC, "partition")?;
    let parts = r.u32()? as usize;
    let n = r.u32()? as usize;
    if n != graph.num_vertices() {
        return Err(ParseError::Inconsistent(format!(
            "{n} partition entries for {} vertices",
            graph.num_vertices()
        )));
    }
    let mut assign: Vec<PartId> = Vec::with_capacity(n);
    for _ in 0..n {
        let p = r.u32()?;
        if (p as usize) >= parts {
            return Err(ParseError::Corrupt(format!(
                "partition {p} out of range 0..{parts}"
            )));
        }
        assign.push(p);
    }
    r.finish("partition")?;
    Ok(Partitioning::from_assignment(graph, parts, assign))
}

// ---------------------------------------------------------------------
// Delta text grammar (`av=… rv=… ae=… re=…`), shared with the wire.
// ---------------------------------------------------------------------

/// Encode a delta as whitespace-separated `key=value` fields. Empty
/// lists are omitted; an empty delta encodes to an empty string.
pub fn write_delta_fields(d: &GraphDelta) -> String {
    fn join<T, F: Fn(&T) -> String>(items: &[T], f: F) -> String {
        items.iter().map(f).collect::<Vec<_>>().join(",")
    }
    let mut fields = Vec::new();
    if !d.add_vertices.is_empty() {
        fields.push(format!("av={}", join(&d.add_vertices, |w| w.to_string())));
    }
    if !d.remove_vertices.is_empty() {
        fields.push(format!(
            "rv={}",
            join(&d.remove_vertices, |v| v.to_string())
        ));
    }
    if !d.add_edges.is_empty() {
        fields.push(format!(
            "ae={}",
            join(&d.add_edges, |&(u, v, w)| format!("{u}:{v}:{w}"))
        ));
    }
    if !d.remove_edges.is_empty() {
        fields.push(format!(
            "re={}",
            join(&d.remove_edges, |&(u, v)| format!("{u}:{v}"))
        ));
    }
    fields.join(" ")
}

/// Parse [`write_delta_fields`] output (inverse).
pub fn read_delta_fields(fields: &[&str]) -> Result<GraphDelta, ParseError> {
    let bad = |msg: String| ParseError::BadField(msg);
    let mut d = GraphDelta::default();
    for field in fields {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| bad(format!("expected key=value, got `{field}`")))?;
        match key {
            "av" => {
                for w in value.split(',') {
                    d.add_vertices.push(
                        w.parse::<Weight>()
                            .map_err(|e| bad(format!("bad av: {e}")))?,
                    );
                }
            }
            "rv" => {
                for v in value.split(',') {
                    d.remove_vertices.push(
                        v.parse::<NodeId>()
                            .map_err(|e| bad(format!("bad rv: {e}")))?,
                    );
                }
            }
            "ae" => {
                for e in value.split(',') {
                    let mut it = e.split(':');
                    let (u, v, w) = (it.next(), it.next(), it.next());
                    if it.next().is_some() {
                        return Err(bad(format!("bad ae entry `{e}`")));
                    }
                    match (u, v, w) {
                        (Some(u), Some(v), Some(w)) => d.add_edges.push((
                            u.parse().map_err(|e| bad(format!("bad ae: {e}")))?,
                            v.parse().map_err(|e| bad(format!("bad ae: {e}")))?,
                            w.parse().map_err(|e| bad(format!("bad ae: {e}")))?,
                        )),
                        _ => return Err(bad(format!("bad ae entry `{e}` (want u:v:w)"))),
                    }
                }
            }
            "re" => {
                for e in value.split(',') {
                    match e.split_once(':') {
                        Some((u, v)) if !v.contains(':') => d.remove_edges.push((
                            u.parse().map_err(|e| bad(format!("bad re: {e}")))?,
                            v.parse().map_err(|e| bad(format!("bad re: {e}")))?,
                        )),
                        _ => return Err(bad(format!("bad re entry `{e}` (want u:v)"))),
                    }
                }
            }
            other => return Err(bad(format!("unknown DELTA field `{other}`"))),
        }
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_unweighted() {
        let g = generators::grid(4, 5);
        let text = write_metis(&g);
        let back = read_metis(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_weighted() {
        let mut g = CsrGraph::from_weighted_edges(4, &[(0, 1, 3), (1, 2, 1), (2, 3, 9)]);
        g.set_vertex_weights(vec![2, 1, 1, 5]);
        let text = write_metis(&g);
        assert!(text.starts_with("4 3 011"));
        let back = read_metis(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "% a comment\n3 2\n2\n1 3\n2\n";
        let g = read_metis(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn header_edge_count_mismatch_rejected() {
        let text = "3 5\n2\n1 3\n2\n";
        assert!(matches!(read_metis(text), Err(ParseError::Inconsistent(_))));
    }

    #[test]
    fn neighbor_out_of_range_rejected() {
        let text = "2 1\n2\n7\n";
        assert!(matches!(read_metis(text), Err(ParseError::BadLine { .. })));
    }

    #[test]
    fn partition_roundtrip() {
        let g = generators::cycle(6);
        let p = Partitioning::from_assignment(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        let text = write_partition(&p);
        let back = read_partition(&text, &g, 3).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn partition_out_of_range_rejected() {
        let g = generators::cycle(3);
        assert!(read_partition("0\n1\n5\n", &g, 2).is_err());
    }

    #[test]
    fn graph_bin_roundtrip() {
        let mut g = CsrGraph::from_weighted_edges(5, &[(0, 1, 3), (1, 2, 1), (2, 4, 9), (3, 4, 2)]);
        g.set_vertex_weights(vec![2, 1, 1, 5, 7]);
        let bytes = write_graph_bin(&g);
        assert_eq!(read_graph_bin(&bytes).unwrap(), g);
        // Empty graph survives too.
        let empty = CsrGraph::from_edges(1, &[]);
        assert_eq!(read_graph_bin(&write_graph_bin(&empty)).unwrap(), empty);
    }

    #[test]
    fn delta_bin_roundtrip() {
        let d = GraphDelta {
            add_vertices: vec![1, 7],
            remove_vertices: vec![3, 9],
            add_edges: vec![(0, 20, 2), (20, 21, 1)],
            remove_edges: vec![(4, 5)],
        };
        assert_eq!(read_delta_bin(&write_delta_bin(&d)).unwrap(), d);
        let empty = GraphDelta::default();
        assert_eq!(read_delta_bin(&write_delta_bin(&empty)).unwrap(), empty);
    }

    #[test]
    fn partition_bin_roundtrip() {
        let g = generators::cycle(6);
        let p = Partitioning::from_assignment(&g, 3, vec![0, 0, 1, 1, 2, 2]);
        let bytes = write_partition_bin(&p);
        assert_eq!(read_partition_bin(&bytes, &g).unwrap(), p);
    }

    #[test]
    fn bin_corruptions_are_typed_errors_not_panics() {
        let g = generators::grid(3, 3);
        let graph_bytes = write_graph_bin(&g);
        let delta_bytes = write_delta_bin(&GraphDelta {
            add_vertices: vec![1],
            add_edges: vec![(0, 9, 1)],
            ..Default::default()
        });
        let part_bytes = write_partition_bin(&Partitioning::round_robin(&g, 2));
        for bytes in [&graph_bytes, &delta_bytes, &part_bytes] {
            // Wrong magic.
            let mut bad = (*bytes).clone();
            bad[0] ^= 0xff;
            // Truncations at every prefix length.
            for cut in 0..bytes.len() {
                let r1 = read_graph_bin(&bytes[..cut]);
                let r2 = read_delta_bin(&bytes[..cut]);
                let r3 = read_partition_bin(&bytes[..cut], &g);
                // At most one of the three readers may accept a prefix
                // (its own full payload); truncation must error.
                if cut < bytes.len() {
                    assert!(r1.is_err() && r2.is_err() && r3.is_err(), "cut={cut}");
                }
            }
            assert!(read_graph_bin(&bad).is_err());
            assert!(read_delta_bin(&bad).is_err());
            assert!(read_partition_bin(&bad, &g).is_err());
            // Trailing garbage.
            let mut long = (*bytes).clone();
            long.push(0);
            assert!(read_graph_bin(&long).is_err());
            assert!(read_delta_bin(&long).is_err());
            assert!(read_partition_bin(&long, &g).is_err());
        }
        // A length field pointing past the payload is caught before any
        // allocation blow-up.
        let mut huge = write_delta_bin(&GraphDelta::default());
        huge[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_delta_bin(&huge), Err(ParseError::Corrupt(_))));
    }

    #[test]
    fn delta_fields_text_roundtrip() {
        let d = GraphDelta {
            add_vertices: vec![1, 7],
            remove_vertices: vec![3, 9],
            add_edges: vec![(0, 20, 2), (20, 21, 1)],
            remove_edges: vec![(4, 5)],
        };
        let enc = write_delta_fields(&d);
        let tokens: Vec<&str> = enc.split_ascii_whitespace().collect();
        assert_eq!(read_delta_fields(&tokens).unwrap(), d);
        assert_eq!(write_delta_fields(&GraphDelta::default()), "");
        assert_eq!(read_delta_fields(&[]).unwrap(), GraphDelta::default());
        for bad in ["av=x", "ae=1:2", "ae=1:2:3:4", "re=1", "zz=1", "noeq"] {
            assert!(read_delta_fields(&[bad]).is_err(), "{bad}");
        }
    }
}
