//! One tenant of the daemon: an [`IgpSession`] plus its repartition
//! policy, fed by the delta queue and flushed when the policy fires.

use crate::policy::{PolicyView, RepartitionPolicy};
use igp_core::session::{IgpSession, StepSummary};
use igp_core::IgpConfig;
use igp_graph::{CoalesceError, CsrGraph, GraphDelta, PartId, Partitioning};
use igp_runtime::Backend;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use std::fmt;
use std::str::FromStr;

/// How a fresh session computes its initial partitioning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitPartition {
    /// Recursive spectral bisection (the paper's from-scratch baseline;
    /// deterministic — fixed Lanczos start-vector seed).
    #[default]
    Rsb,
    /// Round-robin assignment (fast, low quality; useful in tests).
    RoundRobin,
}

impl fmt::Display for InitPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InitPartition::Rsb => "rsb",
            InitPartition::RoundRobin => "rr",
        })
    }
}

impl FromStr for InitPartition {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rsb" => Ok(InitPartition::Rsb),
            "rr" => Ok(InitPartition::RoundRobin),
            other => Err(format!("unknown init `{other}` (rsb|rr)")),
        }
    }
}

/// Upper bound on per-session SPMD workers: each repartition spawns
/// this many OS threads, so the wire must not be able to request an
/// arbitrary count ([`crate::protocol`] rejects larger values, and
/// [`ServiceSession::open`] asserts it for in-process callers).
pub const MAX_WORKERS: usize = 64;

/// Per-session configuration carried by the `OPEN` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionConfig {
    /// Partition count `P`.
    pub parts: usize,
    /// IGPR (LP refinement) vs plain IGP.
    pub refined: bool,
    /// SPMD workers for the parallel driver; `0` = sequential driver,
    /// at most [`MAX_WORKERS`].
    pub workers: usize,
    /// Execution substrate for the parallel driver (ignored when
    /// `workers == 0`).
    pub backend: Backend,
    /// Repartition trigger.
    pub policy: RepartitionPolicy,
    /// Initial partitioning method.
    pub init: InitPartition,
}

impl SessionConfig {
    /// Defaults for `P` partitions: sequential IGPR, flush every delta.
    pub fn new(parts: usize) -> Self {
        SessionConfig {
            parts,
            refined: true,
            workers: 0,
            backend: Backend::SimCm5,
            policy: RepartitionPolicy::default(),
            init: InitPartition::default(),
        }
    }
}

/// Result of feeding one delta to a session.
#[derive(Clone, Debug)]
pub enum Ingest {
    /// The policy held back: the delta joined the pending batch.
    Queued {
        /// Deltas now pending.
        pending: usize,
    },
    /// The policy fired: the pending batch (this delta included) was
    /// coalesced and applied as one repartition step.
    Stepped {
        /// The step's summary.
        summary: StepSummary,
        /// How many queued deltas the step coalesced.
        coalesced: usize,
    },
}

/// A registered session: the solver-loop state machine the daemon
/// drives over the wire. Also the single-threaded **replay vehicle**:
/// feeding the same graph, config and delta stream through
/// [`ServiceSession::ingest`] reproduces the daemon's partitions
/// bit-for-bit (asserted by `tests/service_e2e.rs`).
pub struct ServiceSession {
    session: IgpSession,
    cfg: SessionConfig,
    deltas_received: usize,
    /// Total vertex weight of the current (flushed) graph, cached so
    /// per-delta policy evaluation avoids an O(n) rescan.
    total_weight: u64,
}

impl ServiceSession {
    /// Open a session on `graph` (computes the initial partitioning).
    pub fn open(graph: CsrGraph, cfg: SessionConfig) -> Self {
        assert!(cfg.parts >= 1, "need at least one partition");
        assert!(
            cfg.workers <= MAX_WORKERS,
            "workers={} exceeds MAX_WORKERS={MAX_WORKERS}",
            cfg.workers
        );
        let part = match cfg.init {
            InitPartition::Rsb => {
                recursive_spectral_bisection(&graph, cfg.parts, RsbOptions::default())
            }
            InitPartition::RoundRobin => Partitioning::round_robin(&graph, cfg.parts),
        };
        let igp_cfg = IgpConfig::new(cfg.parts).with_backend(cfg.backend);
        let total_weight = graph.total_vertex_weight();
        let session = if cfg.workers == 0 {
            IgpSession::new(graph, part, igp_cfg, cfg.refined)
        } else {
            IgpSession::new_parallel(graph, part, igp_cfg, cfg.refined, cfg.workers)
        };
        ServiceSession {
            session,
            cfg,
            deltas_received: 0,
            total_weight,
        }
    }

    /// Queue one delta; flush if the policy fires. The delta addresses
    /// the session's *virtual* current graph (current graph + already
    /// queued deltas), exactly as a client streaming edits sees it.
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<Ingest, CoalesceError> {
        let pending = self.session.queue_delta(delta)?;
        self.deltas_received += 1;
        if self.cfg.policy.should_flush(&self.policy_view()) {
            let coalesced = pending;
            match self.session.flush() {
                Some(summary) => {
                    self.total_weight = self.session.graph().total_vertex_weight();
                    Ok(Ingest::Stepped { summary, coalesced })
                }
                // The batch cancelled out to a no-op: nothing pending
                // any more, no step recorded.
                None => Ok(Ingest::Queued { pending: 0 }),
            }
        } else {
            Ok(Ingest::Queued { pending })
        }
    }

    /// Force a repartition of whatever is pending (the protocol's
    /// `FLUSH`). Returns `(summary, coalesced)` or `None` if there was
    /// nothing to do.
    pub fn flush(&mut self) -> Option<(StepSummary, usize)> {
        let coalesced = self.session.pending_deltas();
        let stepped = self.session.flush().map(|s| (s, coalesced));
        if stepped.is_some() {
            self.total_weight = self.session.graph().total_vertex_weight();
        }
        stepped
    }

    fn policy_view(&self) -> PolicyView {
        PolicyView {
            n_current: self.session.graph().num_vertices(),
            // Cached: the graph only changes at flush, so per-delta
            // ingest stays O(|edit|), not O(n).
            total_weight: self.total_weight,
            parts: self.cfg.parts,
            dirt: self.session.pending().map(|c| c.dirt()).unwrap_or_default(),
        }
    }

    /// The configuration the session was opened with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The underlying solver-loop session.
    pub fn inner(&self) -> &IgpSession {
        &self.session
    }

    /// Current assignment (vertex → partition), in current-graph id
    /// order.
    pub fn assignment(&self) -> &[PartId] {
        self.session.partitioning().assignment()
    }

    /// Deltas received over the session's lifetime.
    pub fn deltas_received(&self) -> usize {
        self.deltas_received
    }

    /// Repartition steps taken so far.
    pub fn steps(&self) -> usize {
        self.session.history().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RepartitionPolicy;
    use igp_graph::generators;

    fn growth(g: &CsrGraph, seed: u64) -> GraphDelta {
        generators::localized_growth_delta(g, 0, 4, seed)
    }

    #[test]
    fn every_k_policy_batches_k_deltas_per_step() {
        let g = generators::grid(8, 8);
        let mut cfg = SessionConfig::new(4);
        cfg.policy = RepartitionPolicy::EveryK(3);
        cfg.init = InitPartition::RoundRobin;
        let mut s = ServiceSession::open(g.clone(), cfg);
        // Mirror the virtual graph like a client would.
        let mut mirror = g;
        let mut steps = 0;
        for i in 0..6u64 {
            let d = growth(&mirror, i);
            mirror = d.apply(&mirror).new_graph().clone();
            match s.ingest(&d).unwrap() {
                Ingest::Queued { pending } => assert!(pending < 3),
                Ingest::Stepped { coalesced, .. } => {
                    assert_eq!(coalesced, 3);
                    steps += 1;
                }
            }
        }
        assert_eq!(steps, 2);
        assert_eq!(s.steps(), 2);
        assert_eq!(s.deltas_received(), 6);
        assert_eq!(s.inner().graph(), &mirror);
        // Forced flush with nothing pending is a no-op.
        assert!(s.flush().is_none());
    }

    #[test]
    fn forced_flush_applies_partial_batch() {
        let g = generators::grid(6, 6);
        let mut cfg = SessionConfig::new(2);
        cfg.policy = RepartitionPolicy::EveryK(10);
        cfg.init = InitPartition::RoundRobin;
        let mut s = ServiceSession::open(g.clone(), cfg);
        let d = growth(&g, 0);
        assert!(matches!(
            s.ingest(&d).unwrap(),
            Ingest::Queued { pending: 1 }
        ));
        let (summary, coalesced) = s.flush().expect("pending batch");
        assert_eq!(coalesced, 1);
        assert_eq!(summary.num_vertices, 40);
        s.inner()
            .partitioning()
            .validate(s.inner().graph())
            .unwrap();
    }

    #[test]
    fn boundary_rejects_malformed_delta_without_state_damage() {
        let g = generators::grid(4, 4);
        let mut s = ServiceSession::open(g, SessionConfig::new(2));
        let bad = GraphDelta {
            remove_vertices: vec![999],
            ..Default::default()
        };
        assert!(s.ingest(&bad).is_err());
        assert_eq!(s.deltas_received(), 0);
        // Session still serves valid traffic.
        let d = growth(s.inner().graph(), 1);
        assert!(matches!(s.ingest(&d).unwrap(), Ingest::Stepped { .. }));
    }

    /// Regression: a delta that names a non-existent base edge (or
    /// re-adds an existing one) is rejected at ingest with a typed
    /// error — it must never reach the flush and panic there.
    #[test]
    fn base_edge_lies_rejected_at_ingest_not_flush() {
        let g = generators::grid(4, 4);
        let mut s = ServiceSession::open(g, SessionConfig::new(2));
        // {0,5} does not exist in a 4x4 grid (0's neighbours: 1 and 4).
        let missing = GraphDelta {
            remove_edges: vec![(0, 5)],
            ..Default::default()
        };
        assert!(s.ingest(&missing).is_err());
        // {0,1} already exists.
        let duplicate = GraphDelta {
            add_edges: vec![(0, 1, 1)],
            ..Default::default()
        };
        assert!(s.ingest(&duplicate).is_err());
        // Nothing was queued; the session still steps on valid input.
        assert_eq!(s.inner().pending_deltas(), 0);
        let d = generators::localized_growth_delta(s.inner().graph(), 0, 3, 1);
        assert!(matches!(s.ingest(&d).unwrap(), Ingest::Stepped { .. }));
    }

    #[test]
    fn rsb_init_is_deterministic() {
        let g = generators::grid(8, 8);
        let a = ServiceSession::open(g.clone(), SessionConfig::new(4));
        let b = ServiceSession::open(g, SessionConfig::new(4));
        assert_eq!(a.assignment(), b.assignment());
    }
}
