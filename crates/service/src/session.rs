//! One tenant of the daemon: an [`IgpSession`] plus its repartition
//! policy, fed by the delta queue and flushed when the policy fires —
//! and, in `--data-dir` mode, journaled through an
//! [`igp_store::SessionStore`] so a crash recovers it bit-identically.
//!
//! `ingest`/`flush` are also the replication apply path (DESIGN.md
//! §11): a follower feeds decoded WAL frames through them with its own
//! store attached, so every applied record is re-journaled locally and
//! the replica's disk stays byte-identical to the primary's.

use crate::policy::{PolicyView, RepartitionPolicy};
use crate::ServiceError;
use igp_core::session::{IgpSession, SessionSeed, StepSummary};
use igp_core::IgpConfig;
use igp_graph::{CsrGraph, GraphDelta, PartId, Partitioning};
use igp_runtime::Backend;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use igp_store::store::SessionState;
use igp_store::{SessionStore, SnapshotPolicy, StoreError, StoreMeta, WalRecord};
use std::fmt;
use std::path::Path;
use std::str::FromStr;

/// How a fresh session computes its initial partitioning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitPartition {
    /// Recursive spectral bisection (the paper's from-scratch baseline;
    /// deterministic — fixed Lanczos start-vector seed).
    #[default]
    Rsb,
    /// Round-robin assignment (fast, low quality; useful in tests).
    RoundRobin,
}

impl fmt::Display for InitPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InitPartition::Rsb => "rsb",
            InitPartition::RoundRobin => "rr",
        })
    }
}

impl FromStr for InitPartition {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "rsb" => Ok(InitPartition::Rsb),
            "rr" => Ok(InitPartition::RoundRobin),
            other => Err(format!("unknown init `{other}` (rsb|rr)")),
        }
    }
}

/// Upper bound on per-session SPMD workers: each repartition spawns
/// this many OS threads, so the wire must not be able to request an
/// arbitrary count ([`crate::protocol`] rejects larger values, and
/// [`ServiceSession::open`] asserts it for in-process callers).
pub const MAX_WORKERS: usize = 64;

/// Per-session configuration carried by the `OPEN` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionConfig {
    /// Partition count `P`.
    pub parts: usize,
    /// IGPR (LP refinement) vs plain IGP.
    pub refined: bool,
    /// SPMD workers for the parallel driver; `0` = sequential driver,
    /// at most [`MAX_WORKERS`].
    pub workers: usize,
    /// Execution substrate for the parallel driver (ignored when
    /// `workers == 0`).
    pub backend: Backend,
    /// Repartition trigger.
    pub policy: RepartitionPolicy,
    /// Initial partitioning method.
    pub init: InitPartition,
}

impl SessionConfig {
    /// Defaults for `P` partitions: sequential IGPR, flush every delta.
    pub fn new(parts: usize) -> Self {
        SessionConfig {
            parts,
            refined: true,
            workers: 0,
            backend: Backend::SimCm5,
            policy: RepartitionPolicy::default(),
            init: InitPartition::default(),
        }
    }
}

/// Result of feeding one delta to a session.
#[derive(Clone, Debug)]
pub enum Ingest {
    /// The policy held back: the delta joined the pending batch.
    Queued {
        /// Deltas now pending.
        pending: usize,
    },
    /// The policy fired: the pending batch (this delta included) was
    /// coalesced and applied as one repartition step.
    Stepped {
        /// The step's summary.
        summary: StepSummary,
        /// How many queued deltas the step coalesced.
        coalesced: usize,
    },
}

/// A registered session: the solver-loop state machine the daemon
/// drives over the wire. Also the single-threaded **replay vehicle**:
/// feeding the same graph, config and delta stream through
/// [`ServiceSession::ingest`] reproduces the daemon's partitions
/// bit-for-bit (asserted by `tests/service_e2e.rs`).
pub struct ServiceSession {
    session: IgpSession,
    cfg: SessionConfig,
    deltas_received: usize,
    /// Total vertex weight of the current (flushed) graph, cached so
    /// per-delta policy evaluation avoids an O(n) rescan.
    total_weight: u64,
    /// The durability store in `--data-dir` mode; `None` for
    /// memory-only sessions, and detached (with a one-time error to the
    /// client) if the storage layer ever fails.
    store: Option<SessionStore>,
    /// Wall time (µs) of this session's repartition flushes — private
    /// (unregistered) so `STAT` can report a per-tenant latency subset
    /// next to the global `igp_core_repartition_us` family. Timing
    /// only: never influences the repartition result, so replay stays
    /// bit-identical.
    repart_us: igp_obs::Histogram,
}

/// Borrow the persistable state for the store (a free function so the
/// store field can be borrowed mutably alongside it).
fn persist_state(session: &IgpSession, deltas_received: usize) -> SessionState<'_> {
    SessionState {
        graph: session.graph(),
        part: session.partitioning(),
        base_of_current: session.base_of_current(),
        steps: session.steps() as u64,
        total_moved: session.total_moved(),
        deltas_received: deltas_received as u64,
        needs_scratch: session.needs_scratch(),
    }
}

impl ServiceSession {
    /// Open a session on `graph` (computes the initial partitioning).
    pub fn open(graph: CsrGraph, cfg: SessionConfig) -> Self {
        assert!(cfg.parts >= 1, "need at least one partition");
        assert!(
            cfg.workers <= MAX_WORKERS,
            "workers={} exceeds MAX_WORKERS={MAX_WORKERS}",
            cfg.workers
        );
        let part = match cfg.init {
            InitPartition::Rsb => {
                recursive_spectral_bisection(&graph, cfg.parts, RsbOptions::default())
            }
            InitPartition::RoundRobin => Partitioning::round_robin(&graph, cfg.parts),
        };
        let igp_cfg = IgpConfig::new(cfg.parts).with_backend(cfg.backend);
        let total_weight = graph.total_vertex_weight();
        let session = if cfg.workers == 0 {
            IgpSession::new(graph, part, igp_cfg, cfg.refined)
        } else {
            IgpSession::new_parallel(graph, part, igp_cfg, cfg.refined, cfg.workers)
        };
        ServiceSession {
            session,
            cfg,
            deltas_received: 0,
            total_weight,
            store: None,
            repart_us: igp_obs::Histogram::new(),
        }
    }

    /// Open a *durable* session: like [`ServiceSession::open`], plus a
    /// fresh [`SessionStore`] at `dir` holding the config line, the
    /// initial snapshot (graph + initial partitioning) and an empty
    /// WAL. Fails if `cfg` cannot be expressed by the wire grammar —
    /// recovery reconstructs the config from its encoded line, so a
    /// lossy encoding would silently diverge after a restart.
    pub fn open_durable(
        graph: CsrGraph,
        cfg: SessionConfig,
        dir: &Path,
        sid: &str,
        snapshot_policy: SnapshotPolicy,
    ) -> Result<Self, ServiceError> {
        let mut s = Self::open(graph, cfg);
        s.make_durable(dir, sid, snapshot_policy)?;
        Ok(s)
    }

    /// Attach a fresh store to a running session: writes the config
    /// line and a snapshot of the session's *current* state, then
    /// journals everything from here on. (The daemon registers a
    /// session first and makes it durable under its lock, so a
    /// duplicate-`OPEN` loser can never touch the winner's directory.)
    pub fn make_durable(
        &mut self,
        dir: &Path,
        sid: &str,
        snapshot_policy: SnapshotPolicy,
    ) -> Result<(), ServiceError> {
        if self.store.is_some() {
            // Typed, not an assert: a panic here would poison the
            // session's mutex for every other connection.
            return Err(ServiceError::Storage(
                "session is already durable".to_string(),
            ));
        }
        crate::protocol::check_wire_representable(&self.cfg).map_err(ServiceError::Storage)?;
        // The initial snapshot only captures flushed state; deltas that
        // raced in between registration and this call (another
        // connection hitting the sid) are folded in first so nothing
        // escapes the journal.
        if self.session.pending_deltas() > 0 {
            self.flush_replay();
        }
        let store = SessionStore::create(
            dir,
            StoreMeta {
                sid: sid.to_string(),
                config_line: crate::protocol::encode_open_opts(&self.cfg),
            },
            snapshot_policy,
            persist_state(&self.session, self.deltas_received),
        )
        .map_err(|e| ServiceError::Storage(e.to_string()))?;
        self.store = Some(store);
        Ok(())
    }

    /// Rebuild a session from a recovery seed (see [`crate::durable`]):
    /// same driver-selection rule as [`ServiceSession::open`], but the
    /// graph, partitioning, identity map and counters come from the
    /// snapshot instead of a fresh initial partitioning.
    pub(crate) fn rehydrate(cfg: SessionConfig, seed: SessionSeed, deltas_received: usize) -> Self {
        assert!(cfg.workers <= MAX_WORKERS);
        let igp_cfg = IgpConfig::new(cfg.parts).with_backend(cfg.backend);
        let total_weight = seed.graph.total_vertex_weight();
        let session = IgpSession::rehydrate(seed, igp_cfg, cfg.refined, cfg.workers);
        ServiceSession {
            session,
            cfg,
            deltas_received,
            total_weight,
            store: None,
            repart_us: igp_obs::Histogram::new(),
        }
    }

    /// Queue one delta; flush if the policy fires. The delta addresses
    /// the session's *virtual* current graph (current graph + already
    /// queued deltas), exactly as a client streaming edits sees it.
    ///
    /// In durable mode the accepted delta is journaled to the WAL
    /// before this returns (i.e. before the daemon acks), and a flushed
    /// step may fold the log into a fresh snapshot per the store's
    /// [`SnapshotPolicy`].
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<Ingest, ServiceError> {
        let r = self.ingest_replay(delta).map_err(ServiceError::Delta)?;
        let stepped = matches!(r, Ingest::Stepped { .. });
        self.durable_event(Some(delta), false, stepped)?;
        Ok(r)
    }

    /// The pure (journal-free) ingest path: exactly what recovery
    /// replays, and what [`ServiceSession::ingest`] wraps.
    pub(crate) fn ingest_replay(
        &mut self,
        delta: &GraphDelta,
    ) -> Result<Ingest, igp_graph::CoalesceError> {
        let pending = self.session.queue_delta(delta)?;
        self.deltas_received += 1;
        if self.cfg.policy.should_flush(&self.policy_view()) {
            let coalesced = pending;
            // Inert during recovery replay (no ambient trace there).
            let _sp = igp_obs::trace::Span::ambient("repartition");
            match self.repart_us.time(|| self.session.flush()) {
                Some(summary) => {
                    self.total_weight = self.session.graph().total_vertex_weight();
                    Ok(Ingest::Stepped { summary, coalesced })
                }
                // The batch cancelled out to a no-op: nothing pending
                // any more, no step recorded.
                None => Ok(Ingest::Queued { pending: 0 }),
            }
        } else {
            Ok(Ingest::Queued { pending })
        }
    }

    /// Force a repartition of whatever is pending (the protocol's
    /// `FLUSH`). Returns `(summary, coalesced)` or `None` if there was
    /// nothing to do. An explicit flush is journaled (it is an external
    /// event replay cannot re-derive from the delta stream).
    pub fn flush(&mut self) -> Result<Option<(StepSummary, usize)>, ServiceError> {
        if self.session.pending_deltas() == 0 {
            return Ok(None);
        }
        let stepped = self.flush_replay();
        self.durable_event(None, true, stepped.is_some())?;
        Ok(stepped)
    }

    /// The pure (journal-free) flush path used by recovery replay.
    pub(crate) fn flush_replay(&mut self) -> Option<(StepSummary, usize)> {
        let coalesced = self.session.pending_deltas();
        // Inert during recovery replay (no ambient trace there).
        let _sp = igp_obs::trace::Span::ambient("repartition");
        let stepped = self
            .repart_us
            .time(|| self.session.flush())
            .map(|s| (s, coalesced));
        if stepped.is_some() {
            self.total_weight = self.session.graph().total_vertex_weight();
        }
        stepped
    }

    /// Replay one journaled record (recovery only — nothing is
    /// re-journaled).
    pub(crate) fn replay_record(&mut self, rec: &WalRecord) -> Result<(), String> {
        match rec {
            WalRecord::Delta(d) => self
                .ingest_replay(d)
                .map(|_| ())
                .map_err(|e| format!("journaled delta rejected on replay: {e}")),
            WalRecord::Flush => {
                self.flush_replay();
                Ok(())
            }
        }
    }

    /// Journal the event and evaluate the snapshot policy. On a storage
    /// failure the store is detached — the session stays usable,
    /// memory-only — and the error is surfaced once.
    fn durable_event(
        &mut self,
        delta: Option<&GraphDelta>,
        explicit_flush: bool,
        stepped: bool,
    ) -> Result<(), ServiceError> {
        if self.store.is_none() {
            return Ok(());
        }
        let state = persist_state(&self.session, self.deltas_received);
        let store = self.store.as_mut().expect("checked above");
        let result = (|| -> Result<(), StoreError> {
            if let Some(d) = delta {
                store.journal_delta(d)?;
            }
            if explicit_flush {
                store.journal_flush()?;
            }
            // Snapshots only at step boundaries: the queue is empty
            // there, so snapshot + WAL tail fully describe the session.
            if stepped {
                store.maybe_snapshot(state)?;
            }
            Ok(())
        })();
        if let Err(e) = result {
            self.store = None;
            // NB the request itself already succeeded in memory — the
            // `storage` kind plus this wording is the client's contract
            // that it must NOT retry the delta (DESIGN.md §9.2).
            return Err(ServiceError::Storage(format!(
                "durability lost; the request WAS applied in memory (do not retry) \
                 and the session continues memory-only: {e}"
            )));
        }
        Ok(())
    }

    /// Attach a recovered store (recovery glue in [`crate::durable`]).
    pub(crate) fn attach_store(&mut self, store: SessionStore) {
        self.store = Some(store);
    }

    /// Detach and return the store (used at `CLOSE` so the directory
    /// can be deleted after the session is unregistered).
    pub fn detach_store(&mut self) -> Option<SessionStore> {
        self.store.take()
    }

    /// The durability store, if this session is durable.
    pub fn store(&self) -> Option<&SessionStore> {
        self.store.as_ref()
    }

    fn policy_view(&self) -> PolicyView {
        PolicyView {
            n_current: self.session.graph().num_vertices(),
            // Cached: the graph only changes at flush, so per-delta
            // ingest stays O(|edit|), not O(n).
            total_weight: self.total_weight,
            parts: self.cfg.parts,
            dirt: self.session.pending().map(|c| c.dirt()).unwrap_or_default(),
        }
    }

    /// The configuration the session was opened with.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The underlying solver-loop session.
    pub fn inner(&self) -> &IgpSession {
        &self.session
    }

    /// Current assignment (vertex → partition), in current-graph id
    /// order.
    pub fn assignment(&self) -> &[PartId] {
        self.session.partitioning().assignment()
    }

    /// Deltas received over the session's lifetime.
    pub fn deltas_received(&self) -> usize {
        self.deltas_received
    }

    /// `(p50, p99, max)` of this session's repartition wall time in
    /// microseconds; `None` until the first repartition (or while the
    /// igp-obs kill switch is off). Lifetime of this process only — a
    /// recovered session starts a fresh histogram.
    pub fn repart_latency_us(&self) -> Option<(u64, u64, u64)> {
        (self.repart_us.count() > 0).then(|| {
            (
                self.repart_us.quantile(0.5),
                self.repart_us.quantile(0.99),
                self.repart_us.max(),
            )
        })
    }

    /// Repartition steps taken so far (continues across a crash +
    /// recovery).
    pub fn steps(&self) -> usize {
        self.session.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RepartitionPolicy;
    use igp_graph::generators;

    fn growth(g: &CsrGraph, seed: u64) -> GraphDelta {
        generators::localized_growth_delta(g, 0, 4, seed)
    }

    #[test]
    fn every_k_policy_batches_k_deltas_per_step() {
        let g = generators::grid(8, 8);
        let mut cfg = SessionConfig::new(4);
        cfg.policy = RepartitionPolicy::EveryK(3);
        cfg.init = InitPartition::RoundRobin;
        let mut s = ServiceSession::open(g.clone(), cfg);
        // Mirror the virtual graph like a client would.
        let mut mirror = g;
        let mut steps = 0;
        for i in 0..6u64 {
            let d = growth(&mirror, i);
            mirror = d.apply(&mirror).new_graph().clone();
            match s.ingest(&d).unwrap() {
                Ingest::Queued { pending } => assert!(pending < 3),
                Ingest::Stepped { coalesced, .. } => {
                    assert_eq!(coalesced, 3);
                    steps += 1;
                }
            }
        }
        assert_eq!(steps, 2);
        assert_eq!(s.steps(), 2);
        assert_eq!(s.deltas_received(), 6);
        assert_eq!(s.inner().graph(), &mirror);
        // Forced flush with nothing pending is a no-op.
        assert!(s.flush().unwrap().is_none());
    }

    #[test]
    fn forced_flush_applies_partial_batch() {
        let g = generators::grid(6, 6);
        let mut cfg = SessionConfig::new(2);
        cfg.policy = RepartitionPolicy::EveryK(10);
        cfg.init = InitPartition::RoundRobin;
        let mut s = ServiceSession::open(g.clone(), cfg);
        let d = growth(&g, 0);
        assert!(matches!(
            s.ingest(&d).unwrap(),
            Ingest::Queued { pending: 1 }
        ));
        let (summary, coalesced) = s.flush().unwrap().expect("pending batch");
        assert_eq!(coalesced, 1);
        assert_eq!(summary.num_vertices, 40);
        s.inner()
            .partitioning()
            .validate(s.inner().graph())
            .unwrap();
    }

    #[test]
    fn boundary_rejects_malformed_delta_without_state_damage() {
        let g = generators::grid(4, 4);
        let mut s = ServiceSession::open(g, SessionConfig::new(2));
        let bad = GraphDelta {
            remove_vertices: vec![999],
            ..Default::default()
        };
        assert!(s.ingest(&bad).is_err());
        assert_eq!(s.deltas_received(), 0);
        // Session still serves valid traffic.
        let d = growth(s.inner().graph(), 1);
        assert!(matches!(s.ingest(&d).unwrap(), Ingest::Stepped { .. }));
    }

    /// Regression: a delta that names a non-existent base edge (or
    /// re-adds an existing one) is rejected at ingest with a typed
    /// error — it must never reach the flush and panic there.
    #[test]
    fn base_edge_lies_rejected_at_ingest_not_flush() {
        let g = generators::grid(4, 4);
        let mut s = ServiceSession::open(g, SessionConfig::new(2));
        // {0,5} does not exist in a 4x4 grid (0's neighbours: 1 and 4).
        let missing = GraphDelta {
            remove_edges: vec![(0, 5)],
            ..Default::default()
        };
        assert!(s.ingest(&missing).is_err());
        // {0,1} already exists.
        let duplicate = GraphDelta {
            add_edges: vec![(0, 1, 1)],
            ..Default::default()
        };
        assert!(s.ingest(&duplicate).is_err());
        // Nothing was queued; the session still steps on valid input.
        assert_eq!(s.inner().pending_deltas(), 0);
        let d = generators::localized_growth_delta(s.inner().graph(), 0, 3, 1);
        assert!(matches!(s.ingest(&d).unwrap(), Ingest::Stepped { .. }));
    }

    #[test]
    fn rsb_init_is_deterministic() {
        let g = generators::grid(8, 8);
        let a = ServiceSession::open(g.clone(), SessionConfig::new(4));
        let b = ServiceSession::open(g, SessionConfig::new(4));
        assert_eq!(a.assignment(), b.assignment());
    }
}
