//! The multi-tenant session table: many independent sessions keyed by
//! id, safe for concurrent access from every connection thread.
//!
//! Locking is two-level: session ids hash (FNV-1a) onto a fixed set of
//! shards, each a `Mutex<HashMap<..>>` held only for table operations
//! (open/lookup/close/list); the session itself sits behind its own
//! `Arc<Mutex<..>>`, so a long repartition in one session never blocks
//! traffic to sessions on the same shard — lookups clone the `Arc` and
//! release the shard immediately.

use crate::session::ServiceSession;
use crate::ServiceError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A registered session, shared across connection threads.
pub type SessionRef = Arc<Mutex<ServiceSession>>;

/// One lock shard of the registry table.
type Shard = Mutex<HashMap<String, SessionRef>>;

/// Lock a shard, recovering a poisoned guard. The table is a plain map
/// of `Arc` handles with no invariant a panicking holder could leave
/// half-applied (inserts and removes are single map calls), so the
/// state behind a poisoned lock is always safe to keep — whereas
/// propagating the poison would permanently panic every later
/// OPEN/LIST/CLOSE on the shard after one handler-thread panic.
fn lock_shard(shard: &Shard) -> MutexGuard<'_, HashMap<String, SessionRef>> {
    shard
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A shared, sharded map of open sessions.
pub struct SessionRegistry {
    shards: Box<[Shard]>,
}

impl SessionRegistry {
    /// A registry with `shards` lock shards (rounded up to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        SessionRegistry {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, sid: &str) -> &Shard {
        // FNV-1a: deterministic, no per-process hasher seed, good enough
        // dispersion for short ids.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in sid.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Register a new session under `sid`; fails if the id is taken.
    /// Returns the inserted [`SessionRef`] so the caller can keep
    /// operating on *its own* session without a by-sid re-lookup (which
    /// could resolve someone else's session after a CLOSE/re-OPEN
    /// race).
    pub fn open(&self, sid: &str, session: ServiceSession) -> Result<SessionRef, ServiceError> {
        let mut shard = lock_shard(self.shard(sid));
        if shard.contains_key(sid) {
            return Err(ServiceError::SessionExists(sid.to_string()));
        }
        let entry = Arc::new(Mutex::new(session));
        shard.insert(sid.to_string(), entry.clone());
        Ok(entry)
    }

    /// Remove `sid` only if it still maps to `entry` (guards cleanup
    /// paths against removing a session a later `OPEN` re-registered).
    pub fn close_if_same(&self, sid: &str, entry: &SessionRef) -> bool {
        let mut shard = lock_shard(self.shard(sid));
        if shard.get(sid).is_some_and(|cur| Arc::ptr_eq(cur, entry)) {
            shard.remove(sid);
            true
        } else {
            false
        }
    }

    /// Look up a session; the shard lock is released before returning,
    /// so callers lock only the session they need.
    pub fn get(&self, sid: &str) -> Result<SessionRef, ServiceError> {
        lock_shard(self.shard(sid))
            .get(sid)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownSession(sid.to_string()))
    }

    /// Remove a session; returns it for final inspection.
    pub fn close(&self, sid: &str) -> Result<SessionRef, ServiceError> {
        lock_shard(self.shard(sid))
            .remove(sid)
            .ok_or_else(|| ServiceError::UnknownSession(sid.to_string()))
    }

    /// All session ids, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| lock_shard(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).len()).sum()
    }

    /// True if no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use igp_graph::generators;
    use std::sync::Arc as StdArc;

    fn session() -> ServiceSession {
        ServiceSession::open(generators::grid(4, 4), {
            let mut c = SessionConfig::new(2);
            c.init = crate::session::InitPartition::RoundRobin;
            c
        })
    }

    #[test]
    fn open_get_close_lifecycle() {
        let reg = SessionRegistry::new(4);
        assert!(reg.is_empty());
        reg.open("a", session()).unwrap();
        reg.open("b", session()).unwrap();
        assert!(matches!(
            reg.open("a", session()),
            Err(ServiceError::SessionExists(_))
        ));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.list(), vec!["a".to_string(), "b".to_string()]);
        reg.get("a").unwrap();
        assert!(matches!(
            reg.get("nope"),
            Err(ServiceError::UnknownSession(_))
        ));
        reg.close("a").unwrap();
        assert!(reg.get("a").is_err());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn poisoned_shard_lock_is_recovered() {
        // One shard, so the panicking thread poisons the lock every
        // operation below must go through.
        let reg = StdArc::new(SessionRegistry::new(1));
        reg.open("a", session()).unwrap();
        let r2 = reg.clone();
        let panicked = std::thread::spawn(move || {
            let _guard = r2.shards[0].lock().unwrap();
            panic!("poison the shard while holding its lock");
        })
        .join();
        assert!(panicked.is_err());
        assert!(reg.shards[0].is_poisoned());
        // Every table operation keeps working after the poisoning —
        // the map held only Arc handles, nothing was half-applied.
        assert_eq!(reg.list(), vec!["a".to_string()]);
        assert_eq!(reg.len(), 1);
        reg.open("b", session()).unwrap();
        reg.get("a").unwrap();
        let entry = reg.get("b").unwrap();
        assert!(reg.close_if_same("b", &entry));
        reg.close("a").unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn concurrent_access_from_many_threads() {
        let reg = StdArc::new(SessionRegistry::new(4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let sid = format!("s{t}");
                    reg.open(&sid, session()).unwrap();
                    for i in 0..5u64 {
                        let entry = reg.get(&sid).unwrap();
                        let mut s = entry.lock().unwrap();
                        let d = generators::localized_growth_delta(s.inner().graph(), 0, 2, i);
                        s.ingest(&d).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.len(), 8);
        for sid in reg.list() {
            let entry = reg.get(&sid).unwrap();
            let s = entry.lock().unwrap();
            assert_eq!(s.deltas_received(), 5);
            assert_eq!(s.inner().graph().num_vertices(), 16 + 10);
        }
    }
}
