//! Repartition policies: *when* is incremental repartitioning worth it?
//!
//! Ou & Ranka frame repartitioning as an economic decision inside a
//! solver loop: "the remapping must have a lower cost relative to the
//! computational cost of executing the few iterations for which the
//! computational structure remains fixed." The serving layer makes that
//! trigger explicit. Every queued delta widens the gap between the
//! stale partition and the evolving graph; a [`RepartitionPolicy`]
//! inspects the coalesced pending edit ([`DirtStats`]) and decides
//! whether the next delta tips the balance.
//!
//! Three policies, from crude to the paper's cost argument:
//!
//! * [`RepartitionPolicy::EveryK`] — repartition after every `k`-th
//!   delta (`k = 1` is the paper's per-increment loop);
//! * [`RepartitionPolicy::DirtFraction`] — repartition once the net
//!   edit touches ≥ `θ` of the current vertices;
//! * [`RepartitionPolicy::CostModelDriven`] — compare the estimated
//!   simulated-time cost of a repartition against the accumulated
//!   imbalance penalty of *not* repartitioning, both priced with the
//!   [`CostModel`] the SPMD backends charge (DESIGN.md §8.2).

use igp_graph::DirtStats;
use igp_runtime::CostModel;
use std::fmt;
use std::str::FromStr;

/// Everything a policy may consult: the session's current (flushed)
/// graph and the coalesced pending edit.
#[derive(Clone, Copy, Debug)]
pub struct PolicyView {
    /// Vertices of the current (last flushed) graph.
    pub n_current: usize,
    /// Total vertex weight of the current graph.
    pub total_weight: u64,
    /// Partition count `P`.
    pub parts: usize,
    /// Net pending edit.
    pub dirt: DirtStats,
}

/// Parameters of the cost-model-driven trigger.
///
/// The model (per queued delta, i.e. per solver episode executed on the
/// stale partition):
///
/// * the unassimilated edit leaves at worst `excess = added_weight ·
///   (P−1)/P + removed_avg_weight · removed_vertices` extra work on one
///   partition (growth all lands in one partition's neighbourhood; a
///   removal idles the other partitions by the average vertex weight);
/// * each solver episode therefore wastes `t_work · excess ·
///   solver_iters_per_delta` seconds of makespan;
/// * a repartition costs `t_work · remap_work_per_vertex · n` compute
///   plus an all-to-all of the assignment, `P(P−1)` messages of `n/P`
///   words.
///
/// Flush when the accumulated waste exceeds the repartition cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostTrigger {
    /// Cost constants (defaults to [`CostModel::cm5`], the same
    /// constants the simulated backend charges).
    pub cost: CostModel,
    /// Solver iterations executed between consecutive deltas.
    pub solver_iters_per_delta: f64,
    /// Charged work units per vertex for one IGP repartition pass
    /// (assign + layer + LP solves, amortized).
    pub remap_work_per_vertex: f64,
}

impl Default for CostTrigger {
    fn default() -> Self {
        CostTrigger {
            cost: CostModel::cm5(),
            solver_iters_per_delta: 10.0,
            remap_work_per_vertex: 40.0,
        }
    }
}

impl CostTrigger {
    /// Estimated simulated seconds one repartition costs.
    pub fn remap_cost(&self, view: &PolicyView) -> f64 {
        let n = view.n_current.max(1) as f64;
        let p = view.parts.max(1) as f64;
        let compute = self.cost.t_work * self.remap_work_per_vertex * n;
        let exchange = p * (p - 1.0) * self.cost.msg_cost((n / p).ceil() as u64);
        compute + exchange
    }

    /// Estimated simulated seconds wasted so far by computing on the
    /// stale partition instead of repartitioning.
    pub fn accumulated_staleness(&self, view: &PolicyView) -> f64 {
        let p = view.parts.max(1) as f64;
        let avg_w = view.total_weight as f64 / view.n_current.max(1) as f64;
        let excess = view.dirt.added_weight as f64 * (p - 1.0) / p
            + view.dirt.removed_vertices as f64 * avg_w;
        self.cost.t_work * excess * self.solver_iters_per_delta * view.dirt.deltas as f64
    }
}

/// When to fold the pending deltas into the partition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RepartitionPolicy {
    /// Repartition after every `k`-th queued delta.
    EveryK(usize),
    /// Repartition once the net edit touches at least this fraction of
    /// the current vertices.
    DirtFraction(f64),
    /// The paper's trigger made explicit: repartition as soon as the
    /// accumulated staleness penalty exceeds the estimated remap cost.
    CostModelDriven(CostTrigger),
}

impl RepartitionPolicy {
    /// Should the session flush now? Evaluated after each queued delta.
    pub fn should_flush(&self, view: &PolicyView) -> bool {
        if view.dirt.deltas == 0 {
            return false;
        }
        match *self {
            RepartitionPolicy::EveryK(k) => view.dirt.deltas >= k.max(1),
            RepartitionPolicy::DirtFraction(theta) => {
                view.dirt.touched_vertices as f64 >= theta * view.n_current.max(1) as f64
            }
            RepartitionPolicy::CostModelDriven(t) => {
                t.accumulated_staleness(view) >= t.remap_cost(view)
            }
        }
    }
}

impl Default for RepartitionPolicy {
    fn default() -> Self {
        RepartitionPolicy::EveryK(1)
    }
}

impl fmt::Display for RepartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RepartitionPolicy::EveryK(k) => write!(f, "every:{k}"),
            RepartitionPolicy::DirtFraction(t) => write!(f, "dirt:{t}"),
            RepartitionPolicy::CostModelDriven(t) => write!(
                f,
                "cost:{}:{}",
                t.solver_iters_per_delta, t.remap_work_per_vertex
            ),
        }
    }
}

impl FromStr for RepartitionPolicy {
    type Err = String;

    /// Parse the protocol's policy spec: `every:<k>`, `dirt:<θ>`,
    /// `cost`, `cost:<iters>` or `cost:<iters>:<work-per-vertex>`
    /// (always with CM-5 cost constants).
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or("");
        let parsed = match kind {
            "every" => {
                let k: usize = parts
                    .next()
                    .ok_or("every needs :<k>")?
                    .parse()
                    .map_err(|e| format!("bad every:<k>: {e}"))?;
                if k == 0 {
                    return Err("every:<k> must be ≥ 1".into());
                }
                RepartitionPolicy::EveryK(k)
            }
            "dirt" => {
                let t: f64 = parts
                    .next()
                    .ok_or("dirt needs :<theta>")?
                    .parse()
                    .map_err(|e| format!("bad dirt:<theta>: {e}"))?;
                if t <= 0.0 || !t.is_finite() {
                    return Err("dirt:<theta> must be a positive number".into());
                }
                RepartitionPolicy::DirtFraction(t)
            }
            "cost" => {
                let mut trig = CostTrigger::default();
                if let Some(iters) = parts.next() {
                    trig.solver_iters_per_delta = iters
                        .parse()
                        .map_err(|e| format!("bad cost:<iters>: {e}"))?;
                }
                if let Some(work) = parts.next() {
                    trig.remap_work_per_vertex = work
                        .parse()
                        .map_err(|e| format!("bad cost:<iters>:<work>: {e}"))?;
                }
                if trig.solver_iters_per_delta <= 0.0 || trig.remap_work_per_vertex <= 0.0 {
                    return Err("cost parameters must be positive".into());
                }
                RepartitionPolicy::CostModelDriven(trig)
            }
            other => return Err(format!("unknown policy kind `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in policy spec `{s}`"));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(deltas: usize, touched: usize, added_weight: u64) -> PolicyView {
        PolicyView {
            n_current: 1000,
            total_weight: 1000,
            parts: 8,
            dirt: DirtStats {
                deltas,
                added_vertices: touched / 2,
                added_weight,
                touched_vertices: touched,
                ..Default::default()
            },
        }
    }

    #[test]
    fn every_k_counts_deltas() {
        let p = RepartitionPolicy::EveryK(3);
        assert!(!p.should_flush(&view(1, 5, 5)));
        assert!(!p.should_flush(&view(2, 50, 50)));
        assert!(p.should_flush(&view(3, 5, 5)));
        // k = 1 flushes on every delta (the paper's loop).
        assert!(RepartitionPolicy::EveryK(1).should_flush(&view(1, 1, 1)));
    }

    #[test]
    fn dirt_fraction_thresholds_touched_vertices() {
        let p = RepartitionPolicy::DirtFraction(0.05);
        assert!(!p.should_flush(&view(4, 49, 49)));
        assert!(p.should_flush(&view(4, 50, 50)));
    }

    #[test]
    fn cost_model_accumulates_until_remap_pays() {
        let trig = CostTrigger::default();
        let p = RepartitionPolicy::CostModelDriven(trig);
        // A tiny edit after one delta: staleness ≪ remap cost.
        assert!(!p.should_flush(&view(1, 2, 2)));
        // The same per-delta edit rate eventually tips the balance as
        // deltas (episodes on the stale partition) accumulate.
        let mut flushed_at = None;
        for k in 1..200 {
            if p.should_flush(&view(k, 2 * k, (2 * k) as u64)) {
                flushed_at = Some(k);
                break;
            }
        }
        let k = flushed_at.expect("cost trigger never fired");
        assert!(k > 1, "fired immediately: not accumulating");
        // Monotone in the trigger parameters: cheaper remap fires earlier.
        let cheap = RepartitionPolicy::CostModelDriven(CostTrigger {
            remap_work_per_vertex: 4.0,
            ..trig
        });
        let mut cheap_at = None;
        for j in 1..200 {
            if cheap.should_flush(&view(j, 2 * j, (2 * j) as u64)) {
                cheap_at = Some(j);
                break;
            }
        }
        assert!(cheap_at.unwrap() <= k);
    }

    #[test]
    fn nothing_pending_never_flushes() {
        for p in [
            RepartitionPolicy::EveryK(1),
            RepartitionPolicy::DirtFraction(0.0001),
            RepartitionPolicy::CostModelDriven(CostTrigger::default()),
        ] {
            assert!(!p.should_flush(&view(0, 0, 0)));
        }
    }

    #[test]
    fn spec_roundtrip() {
        for spec in ["every:1", "every:8", "dirt:0.05", "cost:10:40"] {
            let p: RepartitionPolicy = spec.parse().unwrap();
            assert_eq!(p.to_string(), spec);
        }
        assert_eq!(
            "cost".parse::<RepartitionPolicy>().unwrap(),
            RepartitionPolicy::CostModelDriven(CostTrigger::default())
        );
        for bad in [
            "",
            "every",
            "every:0",
            "dirt:-1",
            "cost:0",
            "nope:3",
            "every:2:3",
        ] {
            assert!(bad.parse::<RepartitionPolicy>().is_err(), "{bad}");
        }
    }
}
