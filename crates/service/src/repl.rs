//! Follower-side replication engine (DESIGN.md §11).
//!
//! A follower daemon owns one [`ReplEngine`]; the event loop fires
//! [`ReplEngine::run_tick`] on the worker pool at the configured
//! cadence (one tick in flight at a time — the loop timer replaces the
//! dedicated `igp-repl` thread the old core spawned). Each tick polls
//! the primary over the ordinary wire protocol, `REPL SYNC`s any
//! session it does not hold yet (installing the shipped files verbatim
//! and rehydrating them through [`recover_session`] — the *same* path
//! crash recovery takes, proven bit-identical by the replay-equivalence
//! suite), then tails each session's WAL with `REPL FRAME` and applies
//! the decoded records through [`ServiceSession::ingest`]/`flush`.
//! Because the follower's session keeps its own store attached, every
//! applied record is re-journaled locally, so the follower's WAL stays
//! byte-identical to the primary's and promotion is nothing more than
//! flipping the role flag — the on-disk state is already a primary's.
//!
//! Failure handling:
//! * `ERR repl-stale` (the primary rotated its log under our cursor) —
//!   drop the local copy and full-resync; replay determinism makes the
//!   freshly shipped lineage equivalent to the one we were tailing.
//! * apply/decode errors — treated the same way: resync from scratch
//!   rather than serve a fork.
//! * transport errors — retried every poll tick; once the primary has
//!   been unreachable for the configured failover window the follower
//!   promotes itself ([`ServerCtx::promote`]) and starts taking writes.

use crate::client::{ClientError, IgpClient, ReplSyncInfo};
use crate::durable::recover_session;
use crate::server::ServerCtx;
use crate::session::ServiceSession;
use igp_obs::trace::Span;
use igp_store::{decode_frames, install_replica, WalRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Follower tuning, fixed at construction.
pub(crate) struct FollowerConfig {
    /// The primary's address (`host:port`).
    pub primary: String,
    /// Auto-promote after the primary has been unreachable this long;
    /// `None` = only explicit `PROMOTE`.
    pub failover: Option<Duration>,
}

/// Where the follower stands in one session's WAL: the snapshot
/// sequence it is tailing and the absolute byte offset of the next
/// frame to fetch.
struct Cursor {
    seq: u64,
    offset: u64,
}

/// The follower's replication state machine. The event loop holds one
/// behind a mutex and schedules [`ReplEngine::run_tick`] on the worker
/// pool; because the loop keeps at most one tick in flight, the mutex
/// is uncontended — it exists so the engine can live in a pool closure.
pub(crate) struct ReplEngine {
    cfg: FollowerConfig,
    cursors: HashMap<String, Cursor>,
    /// Kept across ticks; dropped (to force a reconnect) on any
    /// transport error.
    conn: Option<IgpClient>,
    /// Last successful tick, for the failover window.
    last_ok: Instant,
}

/// True once replication must cease: server shutdown, explicit stop,
/// or promotion (we are no longer a follower).
fn stopped(ctx: &ServerCtx, server_stop: &AtomicBool) -> bool {
    server_stop.load(Ordering::SeqCst) || ctx.repl_stop.load(Ordering::SeqCst) || !ctx.is_follower()
}

impl ReplEngine {
    pub(crate) fn new(cfg: FollowerConfig) -> ReplEngine {
        ReplEngine {
            cfg,
            cursors: HashMap::new(),
            conn: None,
            last_ok: Instant::now(),
        }
    }

    /// One replication tick. Returns `false` when replication is over
    /// (stopped, promoted, or failover fired) and must not be
    /// rescheduled; `true` asks the loop to fire again after its
    /// interval.
    pub(crate) fn run_tick(&mut self, ctx: &Arc<ServerCtx>, server_stop: &AtomicBool) -> bool {
        if stopped(ctx, server_stop) {
            return false;
        }
        match tick(
            ctx,
            server_stop,
            &self.cfg,
            &mut self.conn,
            &mut self.cursors,
        ) {
            Ok(()) => {
                self.last_ok = Instant::now();
                true
            }
            Err(e) => {
                self.conn = None; // reconnect next tick
                let down = self.last_ok.elapsed();
                igp_obs::warn!(
                    target: "repl", "primary unreachable";
                    primary = self.cfg.primary.as_str(), detail = e.to_string(),
                    down_ms = down.as_millis() as u64,
                );
                if self.cfg.failover.is_some_and(|w| down >= w) {
                    igp_obs::warn!(
                        target: "repl", "heartbeat window elapsed; promoting";
                        primary = self.cfg.primary.as_str(), down_ms = down.as_millis() as u64,
                    );
                    ctx.promote();
                    return false;
                }
                true
            }
        }
    }
}

/// One poll of the primary. A returned error means the primary was
/// unreachable (transport/protocol failure) and counts against the
/// failover window; per-session server errors are handled inside.
fn tick(
    ctx: &Arc<ServerCtx>,
    server_stop: &AtomicBool,
    cfg: &FollowerConfig,
    conn: &mut Option<IgpClient>,
    cursors: &mut HashMap<String, Cursor>,
) -> Result<(), ClientError> {
    if conn.is_none() {
        let c = IgpClient::connect(&*cfg.primary).map_err(ClientError::Io)?;
        // A frozen (but not dead) primary must not wedge the loop past
        // the heartbeat window.
        let _ = c.set_read_timeout(Some(Duration::from_secs(5)));
        *conn = Some(c);
        igp_obs::info!(target: "repl", "connected to primary"; primary = cfg.primary.as_str());
    }
    let cli = conn.as_mut().expect("connection just established");
    cli.ping()?; // heartbeat even when there are no sessions
    let sids = cli.list()?;
    // Sessions the primary closed (or never had) disappear here too —
    // a follower must not serve reads for state the primary deleted.
    for sid in ctx.registry.list() {
        if !sids.contains(&sid) {
            cursors.remove(&sid);
            drop_local(ctx, &sid);
            igp_obs::info!(target: "repl", "dropped session absent on primary"; sid = sid);
        }
    }
    let mut lag_total: i64 = 0;
    for sid in &sids {
        if stopped(ctx, server_stop) {
            return Ok(());
        }
        let r = if cursors.contains_key(sid) {
            poll_session(ctx, cli, sid, cursors, &mut lag_total)
        } else {
            sync_session(ctx, cli, sid, cursors)
        };
        match r {
            Ok(()) => {}
            Err(ClientError::Server { kind, detail }) if kind == "repl-stale" => {
                // The primary rotated its log under our cursor; the
                // shipped snapshot lineage replaces ours wholesale.
                igp_obs::info!(target: "repl", "cursor stale; resyncing"; sid = sid, detail = detail);
                cursors.remove(sid);
                sync_session(ctx, cli, sid, cursors)?;
            }
            Err(ClientError::Server { kind, detail }) => {
                // Session-scoped server error (e.g. poisoned on the
                // primary): log and retry next tick.
                igp_obs::warn!(
                    target: "repl", "session poll failed";
                    sid = sid, kind = kind, detail = detail,
                );
            }
            Err(e) => return Err(e), // transport: the whole tick failed
        }
    }
    let m = crate::obs::metrics();
    m.repl_lag_bytes.set(lag_total);
    // Successful tick: stamp the watchdog's freshness cell and refresh
    // the time-domain lag gauges (repl_lag_ms is "how long have we been
    // behind", not a byte count — see DESIGN.md §14.2).
    if let Some(rh) = &ctx.health.repl {
        let lag_ms = rh.note_tick(lag_total.max(0) as u64);
        m.repl_lag_ms.set(lag_ms as i64);
        if let Some(age) = rh.heartbeat_age_ms() {
            m.repl_heartbeat_age_ms.set(age as i64);
        }
    }
    Ok(())
}

/// Bootstrap (or re-bootstrap) one session from a full `REPL SYNC`.
fn sync_session(
    ctx: &Arc<ServerCtx>,
    cli: &mut IgpClient,
    sid: &str,
    cursors: &mut HashMap<String, Cursor>,
) -> Result<(), ClientError> {
    let sync = cli.repl_sync(sid)?;
    match install_and_register(ctx, sid, &sync) {
        Ok(()) => {
            crate::obs::metrics().repl_syncs_applied_total.inc();
            igp_obs::info!(
                target: "repl", "session synced";
                sid = sid, seq = sync.seq, wal_end = sync.wal_end,
            );
            cursors.insert(
                sid.to_string(),
                Cursor {
                    seq: sync.seq,
                    offset: sync.wal_end,
                },
            );
        }
        Err(e) => {
            // Leave no half-installed replica behind; retried next tick.
            igp_obs::warn!(target: "repl", "sync install failed"; sid = sid, detail = e);
            drop_local(ctx, sid);
        }
    }
    Ok(())
}

/// Install the shipped files and rehydrate through the recovery path.
fn install_and_register(ctx: &ServerCtx, sid: &str, sync: &ReplSyncInfo) -> Result<(), String> {
    let data_dir = ctx
        .data_dir
        .as_ref()
        .ok_or("follower has no data_dir (unreachable: serve() enforces it)")?;
    // Unregister any previous local copy first so no reader observes a
    // session whose directory is being replaced underneath it.
    let _ = ctx.registry.close(sid);
    let dir = data_dir.join(sid);
    install_replica(&dir, sync.seq, &sync.meta, &sync.snapshot, &sync.wal)
        .map_err(|e| e.to_string())?;
    let rec = recover_session(&dir, ctx.snapshot_policy).map_err(|e| e.to_string())?;
    if let Some(w) = rec.warning {
        // The primary ships only clean state; a repair here means the
        // transfer itself is suspect.
        return Err(format!("synced state needed repair: {w}"));
    }
    if rec.sid != sid {
        return Err(format!(
            "shipped meta names `{}`, expected `{sid}`",
            rec.sid
        ));
    }
    ctx.registry
        .open(sid, rec.session)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Tail one session: fetch the frames past our cursor and apply them.
fn poll_session(
    ctx: &Arc<ServerCtx>,
    cli: &mut IgpClient,
    sid: &str,
    cursors: &mut HashMap<String, Cursor>,
    lag_total: &mut i64,
) -> Result<(), ClientError> {
    let (seq, offset) = {
        let c = &cursors[sid];
        (c.seq, c.offset)
    };
    let batch = cli.repl_frames(sid, seq, offset)?;
    // Lag observed at poll time: how far the primary's WAL had run
    // ahead of this cursor.
    *lag_total += batch.to.saturating_sub(batch.from) as i64;
    if batch.bytes.is_empty() {
        return Ok(());
    }
    let applied = apply_frames(ctx, sid, &batch.bytes, batch.trace);
    match applied {
        Ok(true) => {
            if let Some(c) = cursors.get_mut(sid) {
                c.offset = batch.to;
            }
        }
        Ok(false) => {} // stopped mid-batch; cursor untouched
        Err(e) => {
            // Never serve a fork: drop the local copy and resync.
            igp_obs::warn!(target: "repl", "frame apply failed; resyncing"; sid = sid, detail = e);
            cursors.remove(sid);
            drop_local(ctx, sid);
        }
    }
    Ok(())
}

/// Decode and apply one shipped frame batch. `Ok(false)` means the
/// loop was stopped (shutdown/promotion) before the batch finished —
/// the cursor must not advance.
///
/// `trace` is the primary trace id the `REPL FRAME` reply carried;
/// when present the whole batch is applied under an adopted root span
/// (`repl:apply`), so a `TRACE DUMP` on the follower shows the same
/// trace id as the primary request that journaled the frames.
fn apply_frames(
    ctx: &Arc<ServerCtx>,
    sid: &str,
    bytes: &[u8],
    trace: Option<u64>,
) -> Result<bool, String> {
    let root = match trace {
        Some(t) => Span::adopted_root(t, "repl:apply"),
        None => Span::disabled(),
    };
    let _ambient = root.enter();
    let _lctx = match trace {
        Some(t) => igp_obs::set_log_ctx(format_args!("sid={sid} trace={t:#018x}")),
        None => igp_obs::set_log_ctx(format_args!("sid={sid}")),
    };
    let records = decode_frames(bytes).map_err(|e| e.to_string())?;
    let entry = ctx.registry.get(sid).map_err(|e| e.to_string())?;
    let m = crate::obs::metrics();
    for rec in &records {
        let mut s = entry
            .lock()
            .map_err(|_| "session lock poisoned".to_string())?;
        // Checked under the session's lock: a promotion flips the flag
        // *before* the first local write can acquire this lock, so no
        // replicated frame lands on top of a post-promotion write.
        if !ctx.is_follower() || ctx.repl_stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        let t0 = Instant::now();
        // Entered so the re-journaling `wal_append` span nests here.
        let frame_span = root.child("frame_apply");
        let _frame_ambient = frame_span.enter();
        apply_one(&mut s, rec).map_err(|e| e.to_string())?;
        m.repl_apply_us.observe_duration(t0.elapsed());
        m.repl_frames_applied_total.inc();
    }
    Ok(true)
}

/// Apply one WAL record exactly as recovery replay would — but through
/// the journaling entry points, so the local store re-logs it and the
/// follower's WAL stays byte-identical to the primary's. The primary
/// already admission-controlled the delta; the follower mirrors its
/// queue without re-checking the cap.
fn apply_one(s: &mut ServiceSession, rec: &WalRecord) -> Result<(), crate::ServiceError> {
    match rec {
        WalRecord::Delta(d) => s.ingest(d).map(|_| ()),
        WalRecord::Flush => s.flush().map(|_| ()),
    }
}

/// Unregister a session and delete its replica directory.
fn drop_local(ctx: &ServerCtx, sid: &str) {
    if let Ok(entry) = ctx.registry.close(sid) {
        if let Ok(mut s) = entry.lock() {
            // Stop any in-flight journaling before the files go away.
            let _ = s.detach_store();
        }
    }
    if let Some(dd) = &ctx.data_dir {
        let _ = std::fs::remove_dir_all(dd.join(sid));
    }
}
