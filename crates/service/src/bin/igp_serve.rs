//! `igp-serve` — the partitioning daemon.
//!
//! ```text
//! igp-serve [--addr HOST:PORT] [--shards N]
//! ```
//!
//! Prints `igp-serve listening on <addr>` once the socket is bound
//! (scripts wait for that line), then serves until a client sends
//! `SHUTDOWN`.

use igp_service::server::{serve, ServeOptions};
use std::io::Write;

fn usage(code: i32) -> ! {
    eprintln!("usage: igp-serve [--addr HOST:PORT] [--shards N]");
    std::process::exit(code);
}

fn main() {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut opts = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(2),
            },
            "--shards" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => opts.shards = n,
                _ => usage(2),
            },
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
    }
    let handle = match serve(&addr, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("igp-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("igp-serve listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("igp-serve: shut down cleanly");
}
