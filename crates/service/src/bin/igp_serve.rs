//! `igp-serve` — the partitioning daemon.
//!
//! ```text
//! igp-serve [--addr HOST:PORT] [--shards N] [--queue-cap N] [--workers N]
//!           [--data-dir DIR] [--snapshot-policy never|every:<k>|cost[:r:m:w]]
//!           [--follow HOST:PORT] [--repl-interval-ms N] [--failover-ms N]
//!           [--log-level error|warn|info|debug] [--slow-us N]
//!           [--http HOST:PORT] [--diag-dir DIR]
//!           [--watchdog-loop-ms N] [--watchdog-worker-ms N] [--debug-stall]
//! ```
//!
//! The daemon runs one event-loop thread (nonblocking accept + state-
//! machine connections over the `igp-net` poller) plus `--workers`
//! threads for CPU-heavy verbs; thousands of idle sessions occupy no
//! threads at all. `--workers 0` (the default) sizes the pool
//! automatically from the machine's parallelism.
//!
//! With `--data-dir`, every session journals its deltas to a
//! write-ahead log and snapshots per the snapshot policy; on boot, all
//! sessions found under the directory are recovered (latest snapshot +
//! WAL replay) before the socket accepts — kill -9 the daemon, restart
//! it, and `PART` answers bit-identically.
//!
//! With `--follow`, the daemon is a read-replica of the primary at the
//! given address (requires `--data-dir`): it syncs every session,
//! tails their WALs, refuses write verbs with `ERR read-only`, and
//! becomes a primary on `PROMOTE` — or automatically once the primary
//! has been unreachable for `--failover-ms` (off by default).
//!
//! `--slow-us N` arms the slow-request log: any request whose root
//! trace span exceeds N µs is logged at WARN with its per-span
//! breakdown (`TRACE SLOW` adjusts it at runtime; 0 disables).
//!
//! `--http HOST:PORT` opens the ops plane: a second listener on the
//! same event loop serving `GET /metrics`, `/healthz`, `/readyz`,
//! `/traces` and `/sessions` (DESIGN.md §14.1). `--watchdog-loop-ms` /
//! `--watchdog-worker-ms` retune the liveness bars behind `/healthz`;
//! `--debug-stall` accepts the `STALL` fault-injection verb (never in
//! production).
//!
//! `--diag-dir DIR` arms the black box: on panic, SIGTERM or SIGINT the
//! daemon writes one diagnostic bundle (watchdog verdicts, session
//! table, metrics, recent traces) to DIR, then — for signals — drains
//! gracefully. Validate a bundle with `igp-cli diag <file>`.
//!
//! Prints `igp-serve listening on <addr>` once the socket is bound
//! (scripts wait for that line), then serves until a client sends
//! `SHUTDOWN` (or SIGTERM/SIGINT arrives).

use igp_service::server::{serve, ServeOptions};
use std::io::Write;

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: igp-serve [--addr HOST:PORT] [--shards N] [--queue-cap N] [--workers N]\n\
         \x20                [--data-dir DIR] [--snapshot-policy SPEC]\n\
         \x20                [--follow HOST:PORT] [--repl-interval-ms N] [--failover-ms N]\n\
         \x20                [--log-level error|warn|info|debug] [--slow-us N]\n\
         \x20                [--http HOST:PORT] [--diag-dir DIR]\n\
         \x20                [--watchdog-loop-ms N] [--watchdog-worker-ms N] [--debug-stall]"
    );
    std::process::exit(code);
}

fn main() {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut opts = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(2),
            },
            "--shards" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => opts.shards = n,
                _ => usage(2),
            },
            "--queue-cap" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => opts.queue_cap = n,
                _ => usage(2),
            },
            // 0 = auto-size from the machine's parallelism.
            "--workers" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.workers = n,
                None => usage(2),
            },
            "--data-dir" => match args.next() {
                Some(d) => opts.data_dir = Some(d.into()),
                None => usage(2),
            },
            "--snapshot-policy" => match args.next().map(|s| s.parse()) {
                Some(Ok(p)) => opts.snapshot_policy = p,
                Some(Err(e)) => {
                    igp_obs::error!(target: "serve", "bad --snapshot-policy"; error = e);
                    usage(2)
                }
                None => usage(2),
            },
            "--follow" => match args.next() {
                Some(a) => opts.follow = Some(a),
                None => usage(2),
            },
            "--repl-interval-ms" => match args.next().and_then(|s| s.parse().ok()) {
                Some(ms) => {
                    let ms: u64 = ms;
                    if ms == 0 {
                        usage(2)
                    }
                    opts.repl_interval = std::time::Duration::from_millis(ms);
                }
                None => usage(2),
            },
            "--failover-ms" => match args.next().and_then(|s| s.parse().ok()) {
                Some(ms) => {
                    let ms: u64 = ms;
                    if ms == 0 {
                        usage(2)
                    }
                    opts.failover = Some(std::time::Duration::from_millis(ms));
                }
                None => usage(2),
            },
            "--log-level" => match args.next().as_deref().and_then(igp_obs::Level::parse) {
                Some(l) => igp_obs::set_max_level(l),
                None => usage(2),
            },
            "--slow-us" => match args.next().and_then(|s| s.parse().ok()) {
                Some(us) => opts.slow_us = Some(us),
                None => usage(2),
            },
            "--http" => match args.next() {
                Some(a) => opts.http = Some(a),
                None => usage(2),
            },
            "--diag-dir" => match args.next() {
                Some(d) => opts.diag_dir = Some(d.into()),
                None => usage(2),
            },
            "--watchdog-loop-ms" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => {
                    opts.loop_stall = std::time::Duration::from_millis(ms);
                }
                _ => usage(2),
            },
            "--watchdog-worker-ms" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(ms) if ms >= 1 => {
                    opts.worker_stall = std::time::Duration::from_millis(ms);
                }
                _ => usage(2),
            },
            "--debug-stall" => opts.debug_stall = true,
            "--help" | "-h" => usage(0),
            _ => usage(2),
        }
    }
    let handle = match serve(&addr, opts) {
        Ok(h) => h,
        Err(e) => {
            igp_obs::error!(target: "serve", "cannot bind"; addr = addr, error = e);
            std::process::exit(1);
        }
    };
    println!("igp-serve listening on {}", handle.addr());
    if let Some(http) = handle.http_addr() {
        println!("igp-serve http on {http}");
    }
    let _ = std::io::stdout().flush();
    igp_obs::info!(target: "serve", "listening"; addr = handle.addr());
    // SIGTERM/SIGINT: write the black box, then drain gracefully. The
    // handler itself only pokes a pipe; this watcher thread does the
    // real work and the main thread's `wait()` observes the drain.
    {
        let trigger = handle.trigger();
        match igp_net::signal::pipe_on_signals(&[igp_net::signal::SIGTERM, igp_net::signal::SIGINT])
        {
            Ok(mut pipe) => {
                std::thread::Builder::new()
                    .name("igp-signal".into())
                    .spawn(move || {
                        if let Ok(sig) = pipe.wait() {
                            let name = match sig {
                                igp_net::signal::SIGINT => "SIGINT",
                                igp_net::signal::SIGTERM => "SIGTERM",
                                _ => "signal",
                            };
                            igp_obs::warn!(target: "serve", "signal received; draining"; signal = name);
                            let _ = igp_service::diag::dump_all(&format!("signal: {name}"));
                            trigger.shutdown();
                            // A second signal while draining: exit hard.
                            if pipe.wait().is_ok() {
                                std::process::exit(130);
                            }
                        }
                    })
                    .expect("spawn signal watcher");
            }
            Err(e) => {
                igp_obs::warn!(target: "serve", "signal handling unavailable"; detail = e.to_string());
            }
        }
    }
    handle.wait();
    igp_obs::info!(target: "serve", "shut down cleanly");
    println!("igp-serve: shut down cleanly");
}
