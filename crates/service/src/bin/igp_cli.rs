//! `igp-cli` — scriptable client for `igp-serve`.
//!
//! ```text
//! igp-cli [--addr HOST:PORT] ping
//! igp-cli [--addr HOST:PORT] open <sid> --parts P (--grid RxC | --metis FILE)
//!                                 [--policy SPEC] [--workers N]
//!                                 [--backend sim-cm5|shared-mem] [--init rsb|rr]
//!                                 [--refined 0|1]
//! igp-cli [--addr HOST:PORT] delta <sid> [av=…] [rv=…] [ae=…] [re=…]
//! igp-cli [--addr HOST:PORT] flush|stat|part|close <sid>
//! igp-cli [--addr HOST:PORT] list | shutdown | promote
//! igp-cli [--addr HOST:PORT] metrics [--watch] [--interval SECS]
//! igp-cli [--addr HOST:PORT] trace [--dump N] [--slow THRESHOLD_US]
//! igp-cli [--addr HOST:PORT] demo [--sessions N] [--deltas K] [--parts P]
//!                                 [--policy SPEC] [--seed S]
//! igp-cli [--addr HOST:PORT] soak [--sessions N] [--parts P] [--hold-secs S]
//! igp-cli health [--http HOST:PORT] [--watch] [--interval SECS]
//! igp-cli diag <bundle-file>
//! igp-cli replay <data-dir> [sid]
//! ```
//!
//! `demo` drives the full loop end to end: it opens N sessions on
//! generated grids, streams K churn deltas each (tracking the virtual
//! graph client-side), forces a final flush, prints per-session
//! statistics and closes the sessions — the CI smoke test in a box.
//!
//! `promote` turns a read-replica follower (`igp-serve --follow`) into
//! a writable primary — the manual half of failover; the daemon can
//! also self-promote on heartbeat timeout (`--failover-ms`).
//!
//! `soak` is the event-loop scale probe: it opens N concurrent
//! connections, each holding one tiny open session, verifies via
//! `METRICS` that the daemon sees all N (`active_sessions`,
//! `conns_active`), prints `soak ready`, idles for `--hold-secs`, then
//! drops every connection. While it holds, the daemon's thread count
//! must stay O(worker pool) — the CI idle-soak job asserts that from
//! `/proc/<pid>/status`.
//!
//! `trace` dumps the daemon's flight recorder: the span trees of the
//! most recently completed request traces (`--dump N` picks how many,
//! newest last). `--slow N` instead sets the daemon's slow-request
//! threshold in µs (0 disables the slow log).
//!
//! `health` talks to the daemon's ops-plane HTTP listener (`igp-serve
//! --http`, not the line-protocol port): it fetches `/healthz` and
//! `/readyz`, prints the per-component watchdog verdicts, and exits
//! nonzero unless both answered 200 — a scriptable probe for CI and
//! process supervisors. `--watch` re-probes on an interval and never
//! exits on an unhealthy answer (the point is to watch it recover).
//!
//! `diag` validates a black-box bundle written by `igp-serve
//! --diag-dir` (structure, magic, end marker) and prints its reason and
//! section inventory; exits nonzero on a malformed or truncated bundle.
//!
//! `replay` needs no server: it inspects a `--data-dir` tree offline —
//! per session, the stored config, the latest snapshot, the WAL tail
//! (record counts + bytes), the tail coalesced into one canonical
//! delta, its dirt statistics, and any corruption the frame checksums
//! caught.

use igp_graph::{generators, io as graph_io};
use igp_service::client::{http_get, DeltaAck, IgpClient};
use igp_service::protocol::{parse_bool, parse_delta_fields};
use igp_service::session::SessionConfig;
use igp_store::SessionStore;
use std::io::Write as _;

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: igp-cli [--addr HOST:PORT] [--log-level LEVEL] \
         <ping|open|delta|flush|stat|part|close|list|metrics|trace|promote|shutdown|demo|soak> …\n\
         \x20      igp-cli metrics [--watch] [--interval SECS]\n\
         \x20      igp-cli trace [--dump N] [--slow THRESHOLD_US]\n\
         \x20      igp-cli soak [--sessions N] [--parts P] [--hold-secs S]\n\
         \x20      igp-cli health [--http HOST:PORT] [--watch] [--interval SECS]\n\
         \x20      igp-cli diag <bundle-file>\n\
         \x20      igp-cli replay <data-dir> [sid]"
    );
    std::process::exit(code);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    igp_obs::error!(target: "cli", msg);
    std::process::exit(1);
}

fn connect(addr: &str) -> IgpClient {
    IgpClient::connect(addr).unwrap_or_else(|e| fail(format!("connect {addr}: {e}")))
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        usage(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let addr = take_value(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:7421".into());
    if let Some(l) = take_value(&mut args, "--log-level") {
        match igp_obs::Level::parse(&l) {
            Some(l) => igp_obs::set_max_level(l),
            None => fail(format!("bad --log-level `{l}` (error|warn|info|debug)")),
        }
    }
    if args.is_empty() {
        usage(2);
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "ping" => {
            connect(&addr).ping().unwrap_or_else(|e| fail(e));
            println!("PONG");
        }
        "open" => cmd_open(&addr, args),
        "delta" => {
            if args.is_empty() {
                usage(2);
            }
            let sid = args.remove(0);
            let fields: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
            let delta = parse_delta_fields(&fields).unwrap_or_else(|e| fail(e));
            match connect(&addr)
                .delta(&sid, &delta)
                .unwrap_or_else(|e| fail(e))
            {
                DeltaAck::Queued { pending } => println!("queued pending={pending}"),
                DeltaAck::Stepped(s) => println!(
                    "step={} coalesced={} n={} cut={} imbalance={:.4} moved={}",
                    s.step, s.coalesced, s.n, s.cut, s.imbalance, s.moved
                ),
            }
        }
        "flush" | "stat" | "part" | "close" => {
            if args.len() != 1 {
                usage(2);
            }
            let sid = &args[0];
            let mut cli = connect(&addr);
            match cmd.as_str() {
                "flush" => match cli.flush(sid).unwrap_or_else(|e| fail(e)) {
                    Some(s) => println!(
                        "step={} coalesced={} n={} cut={} imbalance={:.4} moved={}",
                        s.step, s.coalesced, s.n, s.cut, s.imbalance, s.moved
                    ),
                    None => println!("noop"),
                },
                "stat" => {
                    let s = cli.stat(sid).unwrap_or_else(|e| fail(e));
                    if let Some(role) = &s.role {
                        print!("role={role} ");
                    }
                    print!(
                        "n={} m={} cut={} imbalance={:.4} pending={} steps={} moved={} scratch={}",
                        s.n, s.m, s.cut, s.imbalance, s.pending, s.steps, s.moved, s.scratch
                    );
                    if let (Some(r), Some(b), Some(q)) = (s.wal_records, s.wal_bytes, s.snap_seq) {
                        print!(" wal_records={r} wal_bytes={b} snap_seq={q}");
                    }
                    if let (Some(p50), Some(p99), Some(mx)) =
                        (s.repart_p50_us, s.repart_p99_us, s.repart_max_us)
                    {
                        print!(" repart_p50_us={p50} repart_p99_us={p99} repart_max_us={mx}");
                    }
                    println!();
                }
                "part" => {
                    let assign = cli.partition(sid).unwrap_or_else(|e| fail(e));
                    let strs: Vec<String> = assign.iter().map(|p| p.to_string()).collect();
                    println!("{}", strs.join(" "));
                }
                "close" => {
                    cli.close(sid).unwrap_or_else(|e| fail(e));
                    println!("closed {sid}");
                }
                _ => unreachable!(),
            }
        }
        "list" => {
            for sid in connect(&addr).list().unwrap_or_else(|e| fail(e)) {
                println!("{sid}");
            }
        }
        "shutdown" => {
            connect(&addr).shutdown().unwrap_or_else(|e| fail(e));
            println!("server shut down");
        }
        "promote" => {
            let was_follower = connect(&addr).promote().unwrap_or_else(|e| fail(e));
            if was_follower {
                println!("promoted to primary");
            } else {
                println!("already primary");
            }
        }
        "metrics" => cmd_metrics(&addr, args),
        "trace" => cmd_trace(&addr, args),
        "demo" => cmd_demo(&addr, args),
        "soak" => cmd_soak(&addr, args),
        "health" => cmd_health(args),
        "diag" => cmd_diag(args),
        "replay" => cmd_replay(args),
        _ => usage(2),
    }
}

/// Scrape the daemon's `METRICS` exposition; `--watch` re-scrapes on an
/// interval (default 2s) over one connection, with a form-feed-free
/// `---` separator between scrapes so the output stays pipeable.
fn cmd_metrics(addr: &str, mut args: Vec<String>) {
    let watch = args
        .iter()
        .position(|a| a == "--watch")
        .map(|i| args.remove(i))
        .is_some();
    let interval: u64 = take_value(&mut args, "--interval")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| fail(format!("--interval: {e}")))
        })
        .unwrap_or(2);
    if !args.is_empty() {
        usage(2);
    }
    let mut cli = connect(addr);
    let mut out = std::io::stdout();
    loop {
        let text = cli.metrics().unwrap_or_else(|e| fail(e));
        // `--watch` is made for piping (`| head`, `| grep -m1 …`): a
        // closed stdout ends the watch instead of panicking.
        if write!(out, "{text}").and_then(|()| out.flush()).is_err() {
            return;
        }
        if !watch {
            return;
        }
        if writeln!(out, "---").is_err() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_secs(interval.max(1)));
    }
}

/// Dump the daemon's flight recorder (`TRACE DUMP`), or set its
/// slow-request threshold (`--slow N`, µs).
fn cmd_trace(addr: &str, mut args: Vec<String>) {
    let slow: Option<u64> = take_value(&mut args, "--slow")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--slow: {e}"))));
    let dump: Option<usize> = take_value(&mut args, "--dump")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--dump: {e}"))));
    if !args.is_empty() {
        usage(2);
    }
    let mut cli = connect(addr);
    if let Some(us) = slow {
        let acked = cli.trace_slow(us).unwrap_or_else(|e| fail(e));
        println!("slow_us={acked}");
        return;
    }
    let text = cli.trace_dump(dump).unwrap_or_else(|e| fail(e));
    print!("{text}");
    let _ = std::io::stdout().flush();
}

/// Probe the ops plane: `GET /healthz` + `GET /readyz` against the
/// daemon's `--http` listener, render the component verdicts, and exit
/// nonzero unless both answered 200. `--watch` re-probes forever
/// instead (supervisors use the one-shot form to gate restarts).
fn cmd_health(mut args: Vec<String>) {
    let http = take_value(&mut args, "--http").unwrap_or_else(|| "127.0.0.1:7422".into());
    let watch = args
        .iter()
        .position(|a| a == "--watch")
        .map(|i| args.remove(i))
        .is_some();
    let interval: u64 = take_value(&mut args, "--interval")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| fail(format!("--interval: {e}")))
        })
        .unwrap_or(2);
    if !args.is_empty() {
        usage(2);
    }
    let timeout = std::time::Duration::from_secs(5);
    let mut out = std::io::stdout();
    loop {
        let (hcode, hbody) =
            http_get(&http, "/healthz", timeout).unwrap_or_else(|e| fail(format!("{http}: {e}")));
        let (rcode, rbody) =
            http_get(&http, "/readyz", timeout).unwrap_or_else(|e| fail(format!("{http}: {e}")));
        let mut text = format!("healthz {hcode}\n");
        // /healthz bodies are `status <overall>` + one line per
        // component; indent them under the probe line.
        for line in hbody.lines() {
            text.push_str(&format!("  {line}\n"));
        }
        // /readyz repeats the component table; only its verdict lines
        // (`ready 0|1`, `draining 1`) add information here.
        text.push_str(&format!("readyz {rcode}\n"));
        for line in rbody
            .lines()
            .take_while(|l| !l.starts_with("status "))
            .filter(|l| !l.is_empty())
        {
            text.push_str(&format!("  {line}\n"));
        }
        if write!(out, "{text}").and_then(|()| out.flush()).is_err() {
            return;
        }
        if !watch {
            if hcode != 200 || rcode != 200 {
                std::process::exit(1);
            }
            return;
        }
        if writeln!(out, "---").is_err() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_secs(interval.max(1)));
    }
}

/// Validate a black-box bundle (`igp-serve --diag-dir`) and print its
/// inventory; exit 1 if the bundle is malformed or truncated.
fn cmd_diag(mut args: Vec<String>) {
    if args.len() != 1 {
        usage(2);
    }
    let path = args.remove(0);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("read {path}: {e}")));
    match igp_obs::dump::validate(&text) {
        Ok(summary) => {
            println!("valid bundle: {path}");
            println!("  reason: {}", summary.reason);
            for (name, bytes) in &summary.sections {
                println!("  section {name}: {bytes} bytes");
            }
        }
        Err(e) => fail(format!("{path}: invalid bundle: {e}")),
    }
}

/// Offline WAL/snapshot inspector: no server, read-only.
fn cmd_replay(mut args: Vec<String>) {
    if args.is_empty() || args.len() > 2 {
        usage(2);
    }
    let data_dir = std::path::PathBuf::from(args.remove(0));
    let dirs: Vec<std::path::PathBuf> = if let Some(sid) = args.pop() {
        vec![data_dir.join(sid)]
    } else {
        let mut dirs: Vec<_> = std::fs::read_dir(&data_dir)
            .unwrap_or_else(|e| fail(format!("read {}: {e}", data_dir.display())))
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        if dirs.is_empty() {
            fail(format!(
                "no session directories under {}",
                data_dir.display()
            ));
        }
        dirs
    };
    let mut failed = false;
    for dir in dirs {
        let insp = match SessionStore::inspect(&dir) {
            Ok(i) => i,
            Err(e) => {
                igp_obs::error!(target: "cli", "inspect failed"; dir = dir.display(), error = e);
                failed = true;
                continue;
            }
        };
        let snap = &insp.snapshot;
        println!("{}:", insp.meta.sid);
        println!("  config   {}", insp.meta.config_line);
        println!(
            "  snapshot seq={} n={} m={} steps={} moved={} deltas={} scratch={} \
             (compacted {} WAL records into its lineage)",
            snap.seq,
            snap.graph.num_vertices(),
            snap.graph.num_edges(),
            snap.steps,
            snap.total_moved,
            snap.deltas_received,
            u8::from(snap.needs_scratch),
            snap.compacted_records,
        );
        println!(
            "  wal tail {} records ({} deltas, {} flushes), {} bytes",
            insp.tail_deltas + insp.tail_flushes,
            insp.tail_deltas,
            insp.tail_flushes,
            insp.tail_bytes,
        );
        let dirt = insp.tail_dirt;
        println!(
            "  coalesced tail: {} (touched={} +w{})",
            insp.tail_net.summary(),
            dirt.touched_vertices,
            dirt.added_weight,
        );
        if let Some(c) = &insp.corruption {
            println!("  WARNING: {c}");
        }
        if let Some(n) = &insp.note {
            println!("  note: {n}");
        }
    }
    if failed {
        // Scripts gate on the inspector's exit status; a directory that
        // failed to inspect must not read as success.
        std::process::exit(1);
    }
}

fn cmd_open(addr: &str, mut args: Vec<String>) {
    if args.is_empty() {
        usage(2);
    }
    let sid = args.remove(0);
    let parts: usize = take_value(&mut args, "--parts")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(2));
    if parts == 0 {
        fail("--parts must be ≥ 1");
    }
    let mut cfg = SessionConfig::new(parts);
    if let Some(p) = take_value(&mut args, "--policy") {
        cfg.policy = p.parse().unwrap_or_else(|e| fail(e));
    }
    if let Some(w) = take_value(&mut args, "--workers") {
        cfg.workers = w
            .parse()
            .unwrap_or_else(|e| fail(format!("--workers: {e}")));
    }
    if let Some(b) = take_value(&mut args, "--backend") {
        cfg.backend = b
            .parse()
            .unwrap_or_else(|_| fail(format!("bad --backend `{b}`")));
    }
    if let Some(i) = take_value(&mut args, "--init") {
        cfg.init = i.parse().unwrap_or_else(|e| fail(e));
    }
    if let Some(r) = take_value(&mut args, "--refined") {
        cfg.refined = parse_bool(&r).unwrap_or_else(|e| fail(format!("--refined: {e}")));
    }
    let grid = take_value(&mut args, "--grid");
    let metis = take_value(&mut args, "--metis");
    if !args.is_empty() {
        usage(2);
    }
    let graph = match (grid, metis) {
        (Some(spec), None) => {
            let (r, c) = spec
                .split_once('x')
                .and_then(|(r, c)| Some((r.parse().ok()?, c.parse().ok()?)))
                .unwrap_or_else(|| fail(format!("bad --grid `{spec}` (want RxC)")));
            generators::grid(r, c)
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(format!("read {path}: {e}")));
            graph_io::read_metis(&text).unwrap_or_else(|e| fail(format!("{path}: {e}")))
        }
        _ => fail("open needs exactly one of --grid RxC | --metis FILE"),
    };
    let ack = connect(addr)
        .open(&sid, &graph, &cfg)
        .unwrap_or_else(|e| fail(e));
    println!(
        "open {sid}: n={} m={} cut={} imbalance={:.4}",
        ack.n, ack.m, ack.cut, ack.imbalance
    );
}

/// Hold N concurrent idle sessions against the daemon and verify it
/// counts them all; the caller (CI's idle-soak job) asserts the
/// daemon's thread count stays flat while this holds.
fn cmd_soak(addr: &str, mut args: Vec<String>) {
    let sessions: usize = take_value(&mut args, "--sessions")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| fail(format!("--sessions: {e}")))
        })
        .unwrap_or(1000);
    let parts: usize = take_value(&mut args, "--parts")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--parts: {e}"))))
        .unwrap_or(2);
    let hold_secs: u64 = take_value(&mut args, "--hold-secs")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| fail(format!("--hold-secs: {e}")))
        })
        .unwrap_or(5);
    if !args.is_empty() {
        usage(2);
    }
    // Tiny per-session graph: the probe measures connection/session
    // bookkeeping, not partitioning throughput.
    let base = generators::grid(4, 4);
    let cfg = SessionConfig::new(parts);
    let mut conns = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let mut cli = connect(addr);
        let sid = format!("soak-{i}");
        cli.open(&sid, &base, &cfg)
            .unwrap_or_else(|e| fail(format!("open {sid}: {e}")));
        conns.push(cli);
    }
    // The daemon must account for every held session and connection
    // (the scrape connection itself may add one to conns_active).
    let text = connect(addr).metrics().unwrap_or_else(|e| fail(e));
    let active = scrape_value(&text, "igp_service_active_sessions")
        .unwrap_or_else(|| fail("METRICS lacks igp_service_active_sessions"));
    if active != sessions as i64 {
        fail(format!(
            "daemon reports active_sessions={active}, expected {sessions}"
        ));
    }
    let conns_active = scrape_value(&text, "igp_service_conns_active")
        .unwrap_or_else(|| fail("METRICS lacks igp_service_conns_active"));
    if conns_active < sessions as i64 {
        fail(format!(
            "daemon reports conns_active={conns_active}, expected ≥ {sessions}"
        ));
    }
    println!("soak ready sessions={sessions} conns_active={conns_active}");
    let _ = std::io::stdout().flush();
    std::thread::sleep(std::time::Duration::from_secs(hold_secs));
    drop(conns); // the daemon may already be gone (shutdown-under-load drill)
    println!("soak done sessions={sessions}");
}

/// First sample of an unlabeled metric in a rendered exposition.
fn scrape_value(text: &str, name: &str) -> Option<i64> {
    text.lines().find_map(|l| {
        let (n, v) = l.split_once(' ')?;
        (n == name).then(|| v.trim().parse().ok())?
    })
}

fn cmd_demo(addr: &str, mut args: Vec<String>) {
    let sessions: usize = take_value(&mut args, "--sessions")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|e| fail(format!("--sessions: {e}")))
        })
        .unwrap_or(2);
    let deltas: usize = take_value(&mut args, "--deltas")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--deltas: {e}"))))
        .unwrap_or(12);
    let parts: usize = take_value(&mut args, "--parts")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--parts: {e}"))))
        .unwrap_or(4);
    let seed: u64 = take_value(&mut args, "--seed")
        .map(|v| v.parse().unwrap_or_else(|e| fail(format!("--seed: {e}"))))
        .unwrap_or(42);
    let policy = take_value(&mut args, "--policy").unwrap_or_else(|| "cost".into());
    if !args.is_empty() {
        usage(2);
    }
    let mut cfg = SessionConfig::new(parts);
    cfg.policy = policy.parse().unwrap_or_else(|e| fail(e));
    let mut cli = connect(addr);
    for s in 0..sessions {
        let sid = format!("demo-{s}");
        let base = generators::grid(8 + s, 8);
        let ack = cli.open(&sid, &base, &cfg).unwrap_or_else(|e| fail(e));
        println!("[{sid}] open n={} cut={}", ack.n, ack.cut);
        let mut mirror = base;
        let mut steps = 0usize;
        for k in 0..deltas {
            let d =
                generators::random_churn_delta(&mirror, 3, 1, seed ^ (s as u64) << 32 ^ k as u64);
            mirror = d.apply(&mirror).new_graph().clone();
            match cli.delta(&sid, &d).unwrap_or_else(|e| fail(e)) {
                DeltaAck::Queued { .. } => {}
                DeltaAck::Stepped(st) => {
                    steps += 1;
                    println!(
                        "[{sid}] step {} coalesced={} n={} cut={} imbalance={:.4}",
                        st.step, st.coalesced, st.n, st.cut, st.imbalance
                    );
                }
            }
        }
        if let Some(st) = cli.flush(&sid).unwrap_or_else(|e| fail(e)) {
            steps += 1;
            println!(
                "[{sid}] final flush: step {} coalesced={} n={}",
                st.step, st.coalesced, st.n
            );
        }
        let stat = cli.stat(&sid).unwrap_or_else(|e| fail(e));
        assert_eq!(stat.n, mirror.num_vertices(), "graph diverged from mirror");
        println!(
            "[{sid}] done: {deltas} deltas → {steps} repartitions, n={} cut={} imbalance={:.4}",
            stat.n, stat.cut, stat.imbalance
        );
        cli.close(&sid).unwrap_or_else(|e| fail(e));
    }
    println!("demo OK: {sessions} sessions × {deltas} deltas");
}
