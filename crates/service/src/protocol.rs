//! The line-delimited text protocol (DESIGN.md §8.1 has the grammar).
//!
//! One UTF-8 line per request, one line per response. The single
//! exception is `OPEN`, whose request line is followed by the graph in
//! METIS format terminated by a line reading `END`. Responses begin
//! with `OK`, `PONG` or `ERR`; fields are `key=value` tokens so both
//! sides parse with the same helpers.
//!
//! ```text
//! PING
//! OPEN <sid> parts=<p> [policy=<spec>] [refined=0|1] [workers=<n>]
//!      [backend=<sim-cm5|shared-mem>] [init=<rsb|rr>]
//! DELTA <sid> [av=w,…] [rv=v,…] [ae=u:v:w,…] [re=u:v,…]
//! FLUSH <sid>   STAT <sid>   PART <sid>   CLOSE <sid>   LIST   SHUTDOWN
//! METRICS
//! REPL SYNC <sid>
//! REPL FRAME <sid> <seq> <offset>
//! PROMOTE
//! TRACE DUMP [n]
//! TRACE SLOW <threshold_us>
//! STALL LOOP <ms> | STALL WORKER <ms>
//! ```
//!
//! `METRICS` is the other multi-line exception, on the response side:
//! `OK metrics`, then the Prometheus-style text exposition, then a
//! line reading `END`. `TRACE DUMP` answers the same way (`OK trace`,
//! indented span trees, `END`); `TRACE SLOW` sets the slow-request log
//! threshold (0 disables) and answers `OK trace slow_us=<v>`.
//!
//! The two `REPL` verbs (DESIGN.md §11) also answer multi-line: a
//! header with byte counts, hex-encoded payload lines (64 KiB of raw
//! bytes per line), then `END`. `REPL SYNC` ships the session's meta,
//! current snapshot and WAL files; `REPL FRAME` ships the raw WAL
//! frames in `[offset, wal_end)` of log `<seq>`, answering
//! `ERR repl-stale` after a rotation so the follower knows to resync.
//! `PROMOTE` flips a follower to primary.
//!
//! `STALL` is fault injection for the liveness watchdogs (DESIGN.md
//! §14.2): it wedges the event loop (`LOOP`) or one pool worker
//! (`WORKER`) for the given number of milliseconds, so tests and chaos
//! drills can assert `/healthz` flips to degraded and recovers. It is
//! refused with `ERR proto` unless the daemon was started with
//! `--debug-stall`.

use crate::policy::RepartitionPolicy;
use crate::session::{InitPartition, SessionConfig};
use igp_graph::GraphDelta;

/// A parsed request line (the `OPEN` graph block is read separately).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    Ping,
    Open { sid: String, cfg: SessionConfig },
    Delta { sid: String, delta: GraphDelta },
    Flush { sid: String },
    Stat { sid: String },
    Part { sid: String },
    Close { sid: String },
    List,
    Metrics,
    Shutdown,
    ReplSync { sid: String },
    ReplFrames { sid: String, seq: u64, offset: u64 },
    Promote,
    TraceDump { n: usize },
    TraceSlow { threshold_us: u64 },
    Stall { target: StallTarget, ms: u64 },
}

/// What `STALL` wedges: the event loop thread or one pool worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallTarget {
    Loop,
    Worker,
}

/// Longest accepted `STALL` (keeps fault injection from turning into a
/// denial of service even with `--debug-stall` on).
pub const STALL_MAX_MS: u64 = 10_000;

/// Traces a bare `TRACE DUMP` renders.
pub const TRACE_DUMP_DEFAULT: usize = 32;

/// Upper bound on `TRACE DUMP <n>` (the completed-trace ring holds no
/// more anyway).
pub const TRACE_DUMP_MAX: usize = 1024;

/// Session ids are single tokens: no whitespace, printable, bounded.
fn check_sid(sid: &str) -> Result<String, String> {
    if sid.is_empty() || sid.len() > 128 {
        return Err("session id must be 1..=128 characters".into());
    }
    if !sid
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'))
    {
        return Err(format!("bad session id `{sid}` (alnum -_.: only)"));
    }
    Ok(sid.to_string())
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut tokens = line.split_ascii_whitespace();
    let verb = tokens.next().ok_or("empty request")?;
    let rest: Vec<&str> = tokens.collect();
    let one_sid = |what: &str| -> Result<String, String> {
        match rest.as_slice() {
            [sid] => check_sid(sid),
            _ => Err(format!("usage: {what} <sid>")),
        }
    };
    match verb {
        "PING" => {
            if rest.is_empty() {
                Ok(Request::Ping)
            } else {
                Err("usage: PING".into())
            }
        }
        "OPEN" => {
            let (sid, opts) = rest.split_first().ok_or("usage: OPEN <sid> parts=<p> …")?;
            let sid = check_sid(sid)?;
            let cfg = parse_open_opts(opts)?;
            Ok(Request::Open { sid, cfg })
        }
        "DELTA" => {
            let (sid, fields) = rest.split_first().ok_or("usage: DELTA <sid> [av=…] …")?;
            let sid = check_sid(sid)?;
            let delta = parse_delta_fields(fields)?;
            Ok(Request::Delta { sid, delta })
        }
        "FLUSH" => Ok(Request::Flush {
            sid: one_sid("FLUSH")?,
        }),
        "STAT" => Ok(Request::Stat {
            sid: one_sid("STAT")?,
        }),
        "PART" => Ok(Request::Part {
            sid: one_sid("PART")?,
        }),
        "CLOSE" => Ok(Request::Close {
            sid: one_sid("CLOSE")?,
        }),
        "LIST" => {
            if rest.is_empty() {
                Ok(Request::List)
            } else {
                Err("usage: LIST".into())
            }
        }
        "METRICS" => {
            if rest.is_empty() {
                Ok(Request::Metrics)
            } else {
                Err("usage: METRICS".into())
            }
        }
        "SHUTDOWN" => {
            if rest.is_empty() {
                Ok(Request::Shutdown)
            } else {
                Err("usage: SHUTDOWN".into())
            }
        }
        "REPL" => match rest.as_slice() {
            ["SYNC", sid] => Ok(Request::ReplSync {
                sid: check_sid(sid)?,
            }),
            ["FRAME", sid, seq, offset] => Ok(Request::ReplFrames {
                sid: check_sid(sid)?,
                seq: seq.parse().map_err(|e| format!("bad seq: {e}"))?,
                offset: offset.parse().map_err(|e| format!("bad offset: {e}"))?,
            }),
            _ => Err("usage: REPL SYNC <sid> | REPL FRAME <sid> <seq> <offset>".into()),
        },
        "PROMOTE" => {
            if rest.is_empty() {
                Ok(Request::Promote)
            } else {
                Err("usage: PROMOTE".into())
            }
        }
        "TRACE" => match rest.as_slice() {
            ["DUMP"] => Ok(Request::TraceDump {
                n: TRACE_DUMP_DEFAULT,
            }),
            ["DUMP", n] => {
                let n: usize = n.parse().map_err(|e| format!("bad trace count: {e}"))?;
                if n == 0 || n > TRACE_DUMP_MAX {
                    return Err(format!("trace count must be 1..={TRACE_DUMP_MAX}"));
                }
                Ok(Request::TraceDump { n })
            }
            ["SLOW", us] => Ok(Request::TraceSlow {
                threshold_us: us.parse().map_err(|e| format!("bad threshold: {e}"))?,
            }),
            _ => Err("usage: TRACE DUMP [n] | TRACE SLOW <threshold_us>".into()),
        },
        "STALL" => {
            let (target, ms) = match rest.as_slice() {
                ["LOOP", ms] => (StallTarget::Loop, ms),
                ["WORKER", ms] => (StallTarget::Worker, ms),
                _ => return Err("usage: STALL LOOP <ms> | STALL WORKER <ms>".into()),
            };
            let ms: u64 = ms.parse().map_err(|e| format!("bad stall ms: {e}"))?;
            if ms == 0 || ms > STALL_MAX_MS {
                return Err(format!("stall ms must be 1..={STALL_MAX_MS}"));
            }
            Ok(Request::Stall { target, ms })
        }
        other => Err(format!("unknown verb `{other}`")),
    }
}

/// Parse `OPEN` options (`parts=` is mandatory).
pub fn parse_open_opts(opts: &[&str]) -> Result<SessionConfig, String> {
    let mut parts: Option<usize> = None;
    let mut cfg = SessionConfig::new(1);
    for opt in opts {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got `{opt}`"))?;
        match key {
            "parts" => {
                let p: usize = value.parse().map_err(|e| format!("bad parts: {e}"))?;
                if p == 0 {
                    return Err("parts must be ≥ 1".into());
                }
                parts = Some(p);
            }
            "policy" => {
                cfg.policy = value.parse::<RepartitionPolicy>()?;
            }
            "refined" => {
                cfg.refined = parse_bool(value).map_err(|e| format!("bad refined: {e}"))?;
            }
            "workers" => {
                let w: usize = value.parse().map_err(|e| format!("bad workers: {e}"))?;
                if w > crate::session::MAX_WORKERS {
                    return Err(format!(
                        "workers={w} exceeds the per-session cap of {}",
                        crate::session::MAX_WORKERS
                    ));
                }
                cfg.workers = w;
            }
            "backend" => {
                cfg.backend = value
                    .parse()
                    .map_err(|_| format!("bad backend `{value}` (sim-cm5|shared-mem)"))?;
            }
            "init" => {
                cfg.init = value.parse::<InitPartition>()?;
            }
            other => return Err(format!("unknown OPEN option `{other}`")),
        }
    }
    cfg.parts = parts.ok_or("OPEN requires parts=<p>")?;
    Ok(cfg)
}

/// Check that a config survives the wire unchanged: encoding then
/// parsing must reproduce it exactly. Fails for configs the grammar
/// cannot express — e.g. a [`crate::policy::CostTrigger`] with custom
/// [`igp_runtime::CostModel`] constants (the wire always reconstructs
/// CM-5 constants) — so the daemon-equals-replay contract cannot be
/// silently broken by a lossy upload.
pub fn check_wire_representable(cfg: &SessionConfig) -> Result<(), String> {
    let enc = encode_open_opts(cfg);
    let tokens: Vec<&str> = enc.split_ascii_whitespace().collect();
    let back = parse_open_opts(&tokens)?;
    if back != *cfg {
        return Err(
            "session config is not wire-representable (custom CostModel constants?); \
             the daemon would reconstruct a different config"
                .into(),
        );
    }
    Ok(())
}

/// Encode `OPEN` options for a config (inverse of [`parse_open_opts`]).
pub fn encode_open_opts(cfg: &SessionConfig) -> String {
    format!(
        "parts={} policy={} refined={} workers={} backend={} init={}",
        cfg.parts,
        cfg.policy,
        u8::from(cfg.refined),
        cfg.workers,
        cfg.backend,
        cfg.init
    )
}

/// Strict protocol boolean: `0|1|true|false` only (shared with
/// `igp-cli` so flag and wire semantics cannot drift).
pub fn parse_bool(s: &str) -> Result<bool, String> {
    match s {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        other => Err(format!("`{other}` is not a boolean (0|1)")),
    }
}

/// Encode a delta as `DELTA` request fields. Empty lists are omitted;
/// an empty delta encodes to an empty string. (Delegates to
/// [`igp_graph::io::write_delta_fields`] — the one delta text grammar,
/// shared with the durability tooling.)
pub fn encode_delta_fields(d: &GraphDelta) -> String {
    igp_graph::io::write_delta_fields(d)
}

/// Parse `DELTA` request fields (inverse of [`encode_delta_fields`]).
pub fn parse_delta_fields(fields: &[&str]) -> Result<GraphDelta, String> {
    igp_graph::io::read_delta_fields(fields).map_err(|e| e.to_string())
}

/// Raw bytes per hex line in multi-line `REPL` replies: 64 KiB of
/// payload → 128 KiB lines, well under any reader's line budget.
pub const HEX_LINE_BYTES: usize = 64 * 1024;

/// Hex-encode `bytes` as newline-terminated lines of at most
/// [`HEX_LINE_BYTES`] raw bytes each; empty input yields no lines. The
/// receiver knows the byte count from the reply header, so the lines
/// carry no length framing of their own.
pub fn encode_hex_lines(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let lines = bytes.len().div_ceil(HEX_LINE_BYTES);
    let mut out = String::with_capacity(bytes.len() * 2 + lines);
    for chunk in bytes.chunks(HEX_LINE_BYTES) {
        for &b in chunk {
            out.push(HEX[(b >> 4) as usize] as char);
            out.push(HEX[(b & 0xf) as usize] as char);
        }
        out.push('\n');
    }
    out
}

/// Decode one hex line produced by [`encode_hex_lines`], appending the
/// bytes to `out`.
pub fn decode_hex_into(line: &str, out: &mut Vec<u8>) -> Result<(), String> {
    fn nibble(b: u8) -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            other => Err(format!("bad hex byte 0x{other:02x}")),
        }
    }
    let bytes = line.trim_end().as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(format!("odd hex line length {}", bytes.len()));
    }
    out.reserve(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(())
}

/// Split a response tail of `key=value` tokens into pairs (shared by
/// client-side parsers and tests).
pub fn parse_kv(tokens: &[&str]) -> Result<Vec<(String, String)>, String> {
    tokens
        .iter()
        .map(|t| {
            t.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| format!("expected key=value, got `{t}`"))
        })
        .collect()
}

/// Fetch a required field from [`parse_kv`] output.
pub fn kv_get<'a>(kv: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    kv.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RepartitionPolicy;

    #[test]
    fn delta_fields_roundtrip() {
        let d = GraphDelta {
            add_vertices: vec![1, 7],
            remove_vertices: vec![3, 9],
            add_edges: vec![(0, 20, 2), (20, 21, 1)],
            remove_edges: vec![(4, 5)],
        };
        let enc = encode_delta_fields(&d);
        let tokens: Vec<&str> = enc.split_ascii_whitespace().collect();
        assert_eq!(parse_delta_fields(&tokens).unwrap(), d);
        // Empty delta → empty encoding → empty delta.
        assert_eq!(encode_delta_fields(&GraphDelta::default()), "");
        assert_eq!(parse_delta_fields(&[]).unwrap(), GraphDelta::default());
    }

    #[test]
    fn open_opts_roundtrip() {
        let mut cfg = SessionConfig::new(8);
        cfg.policy = RepartitionPolicy::DirtFraction(0.05);
        cfg.refined = false;
        cfg.workers = 3;
        cfg.backend = igp_runtime::Backend::SharedMem;
        cfg.init = InitPartition::RoundRobin;
        let enc = encode_open_opts(&cfg);
        let tokens: Vec<&str> = enc.split_ascii_whitespace().collect();
        assert_eq!(parse_open_opts(&tokens).unwrap(), cfg);
    }

    #[test]
    fn wire_representability_guard() {
        use crate::policy::CostTrigger;
        use igp_runtime::CostModel;

        // Everything the grammar can express passes.
        let mut cfg = SessionConfig::new(4);
        cfg.policy = RepartitionPolicy::CostModelDriven(CostTrigger::default());
        check_wire_representable(&cfg).unwrap();
        // Custom cost-model constants cannot ride the wire: the daemon
        // would rebuild CM-5 constants and diverge from replay.
        cfg.policy = RepartitionPolicy::CostModelDriven(CostTrigger {
            cost: CostModel {
                t_work: 1.0,
                alpha: 0.0,
                beta: 0.0,
            },
            ..CostTrigger::default()
        });
        assert!(check_wire_representable(&cfg).is_err());
    }

    #[test]
    fn request_lines_parse() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("LIST").unwrap(), Request::List);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        match parse_request("OPEN s1 parts=4 policy=every:2").unwrap() {
            Request::Open { sid, cfg } => {
                assert_eq!(sid, "s1");
                assert_eq!(cfg.parts, 4);
                assert_eq!(cfg.policy, RepartitionPolicy::EveryK(2));
            }
            other => panic!("{other:?}"),
        }
        match parse_request("DELTA s1 av=1 ae=0:16:1").unwrap() {
            Request::Delta { sid, delta } => {
                assert_eq!(sid, "s1");
                assert_eq!(delta.add_vertices, vec![1]);
                assert_eq!(delta.add_edges, vec![(0, 16, 1)]);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request("FLUSH s1").unwrap(),
            Request::Flush { sid: "s1".into() }
        );
        for bad in [
            "",
            "NOPE",
            "OPEN",
            "OPEN s1", // missing parts
            "OPEN s1 parts=0",
            "OPEN bad id parts=2",              // whitespace id → extra token
            "OPEN s1 parts=2 workers=10000000", // above MAX_WORKERS
            "DELTA s1 av=x",
            "DELTA s1 ae=1:2",
            "FLUSH",
            "FLUSH a b",
            "PING extra",
            "METRICS extra",
            "OPEN s!/ parts=2",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn repl_and_promote_lines_parse() {
        assert_eq!(
            parse_request("REPL SYNC s1").unwrap(),
            Request::ReplSync { sid: "s1".into() }
        );
        assert_eq!(
            parse_request("REPL FRAME s1 3 1024").unwrap(),
            Request::ReplFrames {
                sid: "s1".into(),
                seq: 3,
                offset: 1024
            }
        );
        assert_eq!(parse_request("PROMOTE").unwrap(), Request::Promote);
        for bad in [
            "REPL",
            "REPL SYNC",
            "REPL SYNC a b",
            "REPL FRAME s1 3",
            "REPL FRAME s1 x 0",
            "REPL FRAME s1 3 -1",
            "REPL NOPE s1",
            "PROMOTE now",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn trace_lines_parse() {
        assert_eq!(
            parse_request("TRACE DUMP").unwrap(),
            Request::TraceDump {
                n: TRACE_DUMP_DEFAULT
            }
        );
        assert_eq!(
            parse_request("TRACE DUMP 5").unwrap(),
            Request::TraceDump { n: 5 }
        );
        assert_eq!(
            parse_request(&format!("TRACE DUMP {TRACE_DUMP_MAX}")).unwrap(),
            Request::TraceDump { n: TRACE_DUMP_MAX }
        );
        assert_eq!(
            parse_request("TRACE SLOW 2500").unwrap(),
            Request::TraceSlow { threshold_us: 2500 }
        );
        assert_eq!(
            parse_request("TRACE SLOW 0").unwrap(),
            Request::TraceSlow { threshold_us: 0 }
        );
        for bad in [
            "TRACE",
            "TRACE DUMP 0",
            "TRACE DUMP x",
            "TRACE DUMP 5 6",
            &format!("TRACE DUMP {}", TRACE_DUMP_MAX + 1),
            "TRACE SLOW",
            "TRACE SLOW -1",
            "TRACE SLOW x",
            "TRACE NOPE",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn stall_lines_parse() {
        assert_eq!(
            parse_request("STALL LOOP 250").unwrap(),
            Request::Stall {
                target: StallTarget::Loop,
                ms: 250
            }
        );
        assert_eq!(
            parse_request("STALL WORKER 1").unwrap(),
            Request::Stall {
                target: StallTarget::Worker,
                ms: 1
            }
        );
        for bad in [
            "STALL",
            "STALL LOOP",
            "STALL LOOP 0",
            "STALL LOOP x",
            "STALL WORKER 10001",
            "STALL BOTH 5",
            "STALL LOOP 5 6",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn hex_lines_roundtrip() {
        for len in [
            0usize,
            1,
            2,
            255,
            HEX_LINE_BYTES - 1,
            HEX_LINE_BYTES,
            HEX_LINE_BYTES + 7,
        ] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let enc = encode_hex_lines(&bytes);
            let mut back = Vec::new();
            for line in enc.lines() {
                assert!(line.len() <= 2 * HEX_LINE_BYTES);
                decode_hex_into(line, &mut back).unwrap();
            }
            assert_eq!(back, bytes, "len={len}");
        }
        let mut out = Vec::new();
        assert!(decode_hex_into("0g", &mut out).is_err());
        assert!(decode_hex_into("abc", &mut out).is_err());
    }

    #[test]
    fn kv_helpers() {
        let kv = parse_kv(&["a=1", "b=x"]).unwrap();
        assert_eq!(kv_get(&kv, "a").unwrap(), "1");
        assert_eq!(kv_get(&kv, "b").unwrap(), "x");
        assert!(kv_get(&kv, "c").is_err());
        assert!(parse_kv(&["noequals"]).is_err());
    }
}
