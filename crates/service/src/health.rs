//! Per-daemon watchdog wiring (DESIGN.md §14.2).
//!
//! [`igp_obs::health`] supplies the primitives (busy-since
//! [`HealthCell`]s, last-success [`FreshnessCell`]s, the [`Watchdog`]
//! that renders verdicts); this module owns how one daemon composes
//! them:
//!
//! * `loop` — one cell the event loop stamps busy before its readiness
//!   sweep and idle before each poll wait;
//! * `worker-<i>` — one cell per pool worker, stamped via the
//!   [`igp_net::PoolHook`] around every job;
//! * `store` — the process-global durability cell
//!   ([`igp_store::obs::health_cell`]), stamped around WAL appends and
//!   snapshot writes;
//! * `repl` — follower only: a freshness cell stamped on every
//!   successful replication tick, plus the caught-up bookkeeping behind
//!   the `repl_lag_ms` gauge.
//!
//! Each daemon owns its own [`DaemonHealth`] (in-process test fleets
//! must not share verdicts); the one exception is the store cell, which
//! is process-global because a stalling disk is process-wide.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use igp_net::PoolHook;
use igp_obs::health::{FreshnessCell, HealthCell, Watchdog};

/// Follower replication liveness: a freshness heartbeat plus the
/// "since when have we been behind?" bookkeeping that defines
/// `repl_lag_ms` (milliseconds since last fully caught up; 0 while
/// caught up).
pub(crate) struct ReplHealth {
    /// Stamped on every successful replication tick.
    pub fresh: Arc<FreshnessCell>,
    /// When the follower last *fell* behind; `None` while caught up.
    behind_since: Mutex<Option<Instant>>,
}

impl ReplHealth {
    /// Freshness bar: four missed ticks, floored at 500ms so very fast
    /// test intervals don't flap.
    pub fn new(repl_interval: Duration) -> Arc<ReplHealth> {
        let bar = (repl_interval * 4).max(Duration::from_millis(500));
        Arc::new(ReplHealth {
            fresh: FreshnessCell::new(bar),
            behind_since: Mutex::new(None),
        })
    }

    /// Record a successful tick that observed `lag_bytes` of WAL still
    /// to fetch; returns the current time-lag in milliseconds.
    pub fn note_tick(&self, lag_bytes: u64) -> u64 {
        self.fresh.stamp();
        let mut behind = self.behind_since.lock().unwrap_or_else(|p| p.into_inner());
        if lag_bytes == 0 {
            *behind = None;
            0
        } else {
            let since = behind.get_or_insert_with(Instant::now);
            since.elapsed().as_millis() as u64
        }
    }

    /// Current `repl_lag_ms` without recording a tick.
    pub fn lag_ms(&self) -> u64 {
        let behind = self.behind_since.lock().unwrap_or_else(|p| p.into_inner());
        behind.map_or(0, |t| t.elapsed().as_millis() as u64)
    }

    /// Milliseconds since the last successful tick; `None` before the
    /// first one.
    pub fn heartbeat_age_ms(&self) -> Option<u64> {
        self.fresh.age().map(|d| d.as_millis() as u64)
    }
}

/// One daemon's full watchdog: the component cells plus the
/// [`Watchdog`] they are registered in.
pub(crate) struct DaemonHealth {
    pub watchdog: Watchdog,
    pub loop_cell: Arc<HealthCell>,
    pub worker_cells: Vec<Arc<HealthCell>>,
    /// `Some` on followers only.
    pub repl: Option<Arc<ReplHealth>>,
}

impl DaemonHealth {
    /// Build and register the full component set for one daemon.
    pub fn new(
        loop_bar: Duration,
        worker_bar: Duration,
        workers: usize,
        repl: Option<Arc<ReplHealth>>,
    ) -> Arc<DaemonHealth> {
        let watchdog = Watchdog::new();
        let loop_cell = HealthCell::new(loop_bar);
        watchdog.register_cell("loop", loop_cell.clone());
        let worker_cells: Vec<_> = (0..workers)
            .map(|i| {
                let cell = HealthCell::new(worker_bar);
                watchdog.register_cell(&format!("worker-{i}"), cell.clone());
                cell
            })
            .collect();
        watchdog.register_cell("store", igp_store::obs::health_cell().clone());
        if let Some(r) = &repl {
            watchdog.register_freshness("repl", r.fresh.clone());
        }
        Arc::new(DaemonHealth {
            watchdog,
            loop_cell,
            worker_cells,
            repl,
        })
    }
}

/// [`PoolHook`] adapter stamping each worker's cell around its jobs.
pub(crate) struct WorkerHealthHook {
    cells: Vec<Arc<HealthCell>>,
}

impl WorkerHealthHook {
    pub fn new(cells: Vec<Arc<HealthCell>>) -> Arc<WorkerHealthHook> {
        Arc::new(WorkerHealthHook { cells })
    }
}

impl PoolHook for WorkerHealthHook {
    fn busy(&self, worker: usize) {
        if let Some(c) = self.cells.get(worker) {
            c.busy();
        }
    }
    fn idle(&self, worker: usize) {
        if let Some(c) = self.cells.get(worker) {
            c.idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_obs::health::HealthState;

    #[test]
    fn daemon_health_registers_expected_components() {
        let dh = DaemonHealth::new(
            Duration::from_millis(250),
            Duration::from_secs(60),
            2,
            Some(ReplHealth::new(Duration::from_millis(50))),
        );
        let r = dh.watchdog.check();
        let names: Vec<_> = r.components.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["loop", "worker-0", "worker-1", "store", "repl"]);
        // Fresh follower: repl never stamped yet → degraded, not ok.
        assert_eq!(r.overall, HealthState::Degraded);
        dh.repl.as_ref().unwrap().note_tick(0);
        assert_eq!(dh.watchdog.check().overall, HealthState::Ok);
    }

    #[test]
    fn repl_lag_ms_tracks_behind_time() {
        let rh = ReplHealth::new(Duration::from_millis(50));
        assert_eq!(rh.note_tick(0), 0);
        assert_eq!(rh.lag_ms(), 0);
        let first = rh.note_tick(100);
        std::thread::sleep(Duration::from_millis(5));
        let later = rh.note_tick(40);
        assert!(
            later >= first + 5,
            "lag grows while behind: {first} → {later}"
        );
        assert!(rh.lag_ms() >= later);
        assert_eq!(rh.note_tick(0), 0, "caught up resets the clock");
        assert!(rh.heartbeat_age_ms().unwrap() < 1_000);
    }

    #[test]
    fn worker_hook_out_of_range_is_ignored() {
        let cells = vec![HealthCell::new(Duration::from_secs(1))];
        let hook = WorkerHealthHook::new(cells.clone());
        hook.busy(0);
        hook.idle(0);
        hook.busy(7); // no panic
        hook.idle(7);
        assert_eq!(cells[0].stalls(), 0);
    }
}
