//! # igp-service — the serving layer over the incremental partitioner
//!
//! Ou & Ranka's use case is a *live* solver loop: the mesh refines, the
//! partition staleness grows, and repartitioning happens exactly when
//! "the remapping \[has\] a lower cost relative to the computational cost
//! of executing the few iterations for which the computational
//! structure remains fixed". This crate packages that decision as a
//! multi-tenant daemon on top of [`igp_core::session::IgpSession`]:
//!
//! * [`registry::SessionRegistry`] — many independent sessions keyed by
//!   id behind a sharded lock map; safe from any connection thread;
//! * delta **coalescing** — each session queues incoming
//!   [`igp_graph::GraphDelta`]s into an
//!   [`igp_graph::DeltaCoalescer`], paying one apply + repartition per
//!   *batch* (the algebra lives in `igp-graph` beside `GraphDelta`);
//! * [`policy::RepartitionPolicy`] — `every:k`, `dirt:θ`, or the
//!   paper's cost trigger made explicit
//!   ([`policy::CostTrigger`], priced with
//!   [`igp_runtime::CostModel`]);
//! * [`server`] / [`client`] — a line-delimited text protocol over
//!   TCP ([`protocol`] has the grammar; DESIGN.md §8 the semantics):
//!   an event-loop daemon (`igp-serve`) built on the [`igp_net`]
//!   readiness poller — nonblocking accept, per-connection state
//!   machines, CPU-heavy verbs on a fixed worker pool (DESIGN.md §12)
//!   — and a scriptable client (`igp-cli`);
//! * **replication** — a follower daemon (`igp-serve --follow`) pulls
//!   the primary's durable state and WAL frames over the same wire
//!   protocol (`REPL SYNC` / `REPL FRAME`), serves reads from its
//!   replica, and takes writes after `PROMOTE` or heartbeat-timeout
//!   failover (DESIGN.md §11).
//!
//! In-process quickstart (the binaries speak the same protocol):
//!
//! ```
//! use igp_service::client::IgpClient;
//! use igp_service::server::{serve, ServeOptions};
//! use igp_service::session::{InitPartition, SessionConfig};
//! use igp_graph::generators;
//!
//! let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let mut cli = IgpClient::connect(server.addr()).unwrap();
//! cli.ping().unwrap();
//!
//! let g = generators::grid(8, 8);
//! let mut cfg = SessionConfig::new(4);
//! cfg.policy = "every:2".parse().unwrap();
//! cfg.init = InitPartition::RoundRobin;
//! let ack = cli.open("doc", &g, &cfg).unwrap();
//! assert_eq!(ack.n, 64);
//!
//! let delta = generators::localized_growth_delta(&g, 0, 5, 1);
//! cli.delta("doc", &delta).unwrap(); // queued (policy = every:2)
//! let step = cli.flush("doc").unwrap().expect("one delta pending");
//! assert_eq!(step.n, 69);
//! cli.close("doc").unwrap();
//! cli.shutdown().unwrap();
//! ```

pub mod client;
pub mod diag;
pub mod durable;
mod health;
pub mod obs;
pub mod policy;
pub mod protocol;
pub mod registry;
mod repl;
pub mod server;
pub mod session;

pub use client::{ClientError, DeltaAck, IgpClient, OpenAck, StatInfo, StepInfo};
pub use durable::{recover_all, recover_session, RecoveredSession};
pub use igp_store::SnapshotPolicy;
pub use policy::{CostTrigger, PolicyView, RepartitionPolicy};
pub use registry::SessionRegistry;
pub use server::{serve, ServeOptions, ServerHandle, ShutdownTrigger};
pub use session::{Ingest, InitPartition, ServiceSession, SessionConfig};

use igp_graph::CoalesceError;

/// Service-level failure, reported over the wire as `ERR <kind> <detail>`.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// No session with this id.
    UnknownSession(String),
    /// `OPEN` with an id already registered.
    SessionExists(String),
    /// The delta was rejected at the boundary (typed validation or
    /// sequence-level coalescing error — never a downstream panic).
    Delta(CoalesceError),
    /// The uploaded graph was rejected.
    Graph(String),
    /// Admission control: the session's pending-delta queue is at its
    /// cap; the client must `FLUSH` (or wait for the policy to fire via
    /// some other session activity) before sending more.
    Backpressure {
        /// The session at capacity.
        sid: String,
        /// Deltas currently pending.
        pending: usize,
        /// The per-session cap in force.
        cap: usize,
    },
    /// The durability layer failed (journal append, snapshot write or
    /// recovery); the in-memory session survives but is no longer
    /// durable.
    Storage(String),
    /// The session is unusable (e.g. its lock was poisoned by a panic
    /// in an earlier request); close and re-open it.
    Internal(String),
    /// The daemon is serving as a read-replica follower: write verbs
    /// (`OPEN`/`DELTA`/`FLUSH`/`CLOSE`) are refused until promotion.
    ReadOnly,
    /// A `REPL FRAME` cursor no longer matches the primary's WAL (the
    /// log rotated under it); the follower must full-resync via
    /// `REPL SYNC`.
    ReplStale {
        /// The session whose cursor went stale.
        sid: String,
        /// The primary's current snapshot/WAL sequence.
        seq: u64,
    },
}

impl ServiceError {
    /// Stable one-token error kind for the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::UnknownSession(_) => "unknown-session",
            ServiceError::SessionExists(_) => "session-exists",
            ServiceError::Delta(_) => "delta",
            ServiceError::Graph(_) => "graph",
            ServiceError::Backpressure { .. } => "backpressure",
            ServiceError::Storage(_) => "storage",
            ServiceError::Internal(_) => "internal",
            ServiceError::ReadOnly => "read-only",
            ServiceError::ReplStale { .. } => "repl-stale",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(sid) => write!(f, "no session `{sid}`"),
            ServiceError::SessionExists(sid) => write!(f, "session `{sid}` already open"),
            ServiceError::Delta(e) => write!(f, "{e}"),
            ServiceError::Graph(m) => write!(f, "{m}"),
            ServiceError::Backpressure { sid, pending, cap } => write!(
                f,
                "session `{sid}` has {pending} deltas pending (cap {cap}); FLUSH first"
            ),
            ServiceError::Storage(m) => write!(f, "{m}"),
            ServiceError::Internal(m) => write!(f, "{m}"),
            ServiceError::ReadOnly => {
                write!(f, "this daemon is a read-only follower; PROMOTE it first")
            }
            ServiceError::ReplStale { sid, seq } => write!(
                f,
                "cursor for `{sid}` is stale (log rotated; now at seq {seq}); REPL SYNC required"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}
