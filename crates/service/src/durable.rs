//! Crash recovery: turning an on-disk [`SessionStore`] back into a
//! live [`ServiceSession`].
//!
//! The protocol (DESIGN.md §9.5):
//!
//! 1. [`SessionStore::recover`] yields the stored config line, the
//!    latest valid snapshot, and the intact WAL tail (corrupt trailing
//!    bytes already reported and truncated).
//! 2. The config line is parsed by the same grammar the `OPEN` request
//!    uses ([`crate::protocol::parse_open_opts`]) — a recovered session
//!    runs under exactly the configuration the original acked.
//! 3. [`igp_core::session::IgpSession::rehydrate`] rebuilds the solver
//!    session from the snapshot (graph, partitioning, composed
//!    identity map, counters, from-scratch flag).
//! 4. The WAL tail is replayed through the *same* ingest/flush code
//!    the daemon runs — journaled deltas re-queue, the repartition
//!    policy re-fires at the same points, explicit flush markers
//!    re-flush — without re-journaling anything.
//! 5. The reopened store is attached; subsequent traffic journals
//!    as before.
//!
//! Because every repartition driver is deterministic in (graph,
//! partitioning, config), the recovered session is bit-identical —
//! partition assignment, graph, composed identity map, pending queue —
//! to the session that never crashed (property-tested in
//! `tests/store_recovery.rs`, kill-9-tested in CI).
//!
//! Replication rides the same path (DESIGN.md §11): a follower
//! bootstraps each session by installing the primary's shipped files
//! ([`igp_store::install_replica`]) and rehydrating through
//! [`recover_session`] — so the equivalence argument above is also the
//! correctness argument for `REPL SYNC`.

use crate::session::ServiceSession;
use crate::ServiceError;
use igp_core::session::SessionSeed;
use igp_store::{SessionStore, SnapshotPolicy};
use std::path::Path;

/// One session brought back from disk.
pub struct RecoveredSession {
    /// Session id (from the store's meta file).
    pub sid: String,
    /// The rehydrated session, store attached, ready to register.
    pub session: ServiceSession,
    /// Non-fatal recovery notes (dropped corrupt WAL tail, skipped
    /// stale snapshot files) for the operator log.
    pub warning: Option<String>,
}

/// Recover one session directory.
pub fn recover_session(
    dir: &Path,
    snapshot_policy: SnapshotPolicy,
) -> Result<RecoveredSession, ServiceError> {
    let rec = SessionStore::recover(dir, snapshot_policy)
        .map_err(|e| ServiceError::Storage(e.to_string()))?;
    let tokens: Vec<&str> = rec.meta.config_line.split_ascii_whitespace().collect();
    let cfg = crate::protocol::parse_open_opts(&tokens)
        .map_err(|e| ServiceError::Storage(format!("stored config line does not parse: {e}")))?;
    let seed = SessionSeed {
        graph: rec.snapshot.graph,
        part: rec.snapshot.part,
        base_of_current: rec.snapshot.base_of_current,
        steps: rec.snapshot.steps as usize,
        total_moved: rec.snapshot.total_moved,
        needs_scratch: rec.snapshot.needs_scratch,
    };
    let mut session = ServiceSession::rehydrate(cfg, seed, rec.snapshot.deltas_received as usize);
    for (i, r) in rec.tail.iter().enumerate() {
        session
            .replay_record(r)
            .map_err(|e| ServiceError::Storage(format!("WAL record {i}: {e}")))?;
    }
    session.attach_store(rec.store);
    Ok(RecoveredSession {
        sid: rec.meta.sid,
        session,
        warning: rec.dropped_tail,
    })
}

/// Recover every session directory under `data_dir`. Directories that
/// fail to recover are skipped and reported (second element) — one
/// corrupt tenant must not take the daemon down with it.
pub fn recover_all(
    data_dir: &Path,
    snapshot_policy: SnapshotPolicy,
) -> std::io::Result<(Vec<RecoveredSession>, Vec<String>)> {
    let mut recovered = Vec::new();
    let mut failures = Vec::new();
    let mut dirs: Vec<_> = std::fs::read_dir(data_dir)?
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.path())
        .collect();
    dirs.sort();
    for dir in dirs {
        match recover_session(&dir, snapshot_policy) {
            Ok(r) => recovered.push(r),
            Err(e) => failures.push(format!("{}: {e}", dir.display())),
        }
    }
    Ok((recovered, failures))
}
