//! Crash-time black-box dumps (DESIGN.md §14.3).
//!
//! Every daemon started with a `diag_dir` registers itself here; the
//! first registration also installs a process-wide panic hook. On a
//! panic — or on demand via [`dump_all`], which `igp-serve`'s signal
//! watcher calls for SIGTERM/SIGINT — each registered daemon writes one
//! [`igp_obs::dump`] bundle to its directory: build identity, watchdog
//! verdicts, the session table, a full metrics exposition, and the
//! flight recorder's recent traces. The bundle is what you read when
//! the process is already gone — the black box, not a live endpoint.
//!
//! Everything on this path must work from inside a panic hook: session
//! rows come from `try_lock` (a panicking worker holds its session's
//! lock), and a dump failure is logged, never propagated.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, Once, Weak};

use crate::server::ServerCtx;
use igp_obs::dump::DumpBuilder;

/// Daemons participating in crash-time dumps (weak: a shut-down
/// server's context must not be kept alive by the diagnostic plane).
static TARGETS: Mutex<Vec<Weak<ServerCtx>>> = Mutex::new(Vec::new());

/// Register a daemon for crash-time dumps. No-op for daemons without a
/// `diag_dir`. Called by `serve()`; the first effective registration
/// installs the panic hook.
pub(crate) fn register_server(ctx: &Arc<ServerCtx>) {
    if ctx.diag_dir.is_none() {
        return;
    }
    let mut targets = TARGETS.lock().unwrap_or_else(|p| p.into_inner());
    targets.retain(|w| w.upgrade().is_some());
    targets.push(Arc::downgrade(ctx));
    drop(targets);
    install_panic_hook();
}

fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Dump first: `prev` may abort (panic = abort profiles).
            let _ = dump_all(&format!("panic: {info}"));
            prev(info);
        }));
    });
}

/// Write a diagnostic bundle for every registered (still-live) daemon;
/// returns the paths written. `reason` lands in the bundle header.
pub fn dump_all(reason: &str) -> Vec<PathBuf> {
    let targets: Vec<Arc<ServerCtx>> = {
        let t = TARGETS.lock().unwrap_or_else(|p| p.into_inner());
        t.iter().filter_map(Weak::upgrade).collect()
    };
    let mut written = Vec::new();
    for ctx in targets {
        let Some(dir) = ctx.diag_dir.clone() else {
            continue;
        };
        match write_bundle(&ctx, reason, &dir) {
            Ok(path) => {
                igp_obs::warn!(
                    target: "diag", "black-box dump written";
                    path = path.display().to_string(), reason = reason,
                );
                written.push(path);
            }
            Err(e) => {
                igp_obs::error!(
                    target: "diag", "black-box dump failed";
                    dir = dir.display().to_string(), detail = e.to_string(),
                );
            }
        }
    }
    written
}

fn write_bundle(ctx: &ServerCtx, reason: &str, dir: &std::path::Path) -> std::io::Result<PathBuf> {
    let mut b = DumpBuilder::new(reason);
    b.kv("version", env!("CARGO_PKG_VERSION"))
        .kv(
            "profile",
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        )
        .kv(
            "role",
            if ctx.is_follower() {
                "follower"
            } else {
                "primary"
            },
        )
        .kv("uptime_s", &crate::obs::uptime_s().to_string());
    b.section("watchdog", &ctx.health.watchdog.check().render());
    b.section("sessions", &crate::server::render_sessions(ctx));
    crate::server::refresh_serving_gauges(ctx);
    b.section("metrics", &igp_obs::registry().render());
    b.section("traces", &igp_obs::trace::render_traces(16));
    b.write_to(dir)
}

#[cfg(test)]
mod tests {
    use crate::server::{serve, ServeOptions};
    use igp_obs::dump::validate;

    #[test]
    fn dump_all_writes_a_valid_bundle_per_registered_daemon() {
        let dir = tempdir::scratch("diag-dump-test");
        let opts = ServeOptions {
            diag_dir: Some(dir.clone()),
            ..ServeOptions::default()
        };
        let h = serve("127.0.0.1:0", opts).expect("serve");
        let written = super::dump_all("test: on-demand");
        let ours: Vec<_> = written.iter().filter(|p| p.starts_with(&dir)).collect();
        assert_eq!(ours.len(), 1, "one bundle for this daemon: {written:?}");
        let text = std::fs::read_to_string(ours[0]).expect("read bundle");
        let summary = validate(&text).expect("bundle validates");
        assert_eq!(summary.reason, "test: on-demand");
        let names: Vec<_> = summary.sections.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["watchdog", "sessions", "metrics", "traces"]);
        drop(h);
        let _ = std::fs::remove_dir_all(&dir);
    }

    mod tempdir {
        use std::path::PathBuf;

        pub fn scratch(tag: &str) -> PathBuf {
            let dir = std::env::temp_dir().join(format!(
                "igp-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos(),
            ));
            std::fs::create_dir_all(&dir).expect("scratch dir");
            dir
        }
    }
}
