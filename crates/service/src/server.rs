//! The daemon: a thread-per-connection TCP server speaking the line
//! protocol, one [`SessionRegistry`] shared by every connection.
//!
//! Shutdown choreography (crossbeam channel + accept-wake):
//! a `SHUTDOWN` request (or [`ServerHandle::shutdown`]) sends on the
//! shutdown channel; a supervisor thread receives, raises the stop
//! flag and opens a throwaway connection to the listener so the
//! blocking `accept` observes the flag. Connection threads poll the
//! flag on a short read timeout, so idle clients cannot hold the
//! server open; the accept thread joins them all before exiting.

use crate::protocol::{encode_hex_lines, parse_request, Request};
use crate::registry::SessionRegistry;
use crate::session::{Ingest, ServiceSession, SessionConfig};
use crate::ServiceError;
use crossbeam::channel::{self, Sender};
use igp_core::session::StepSummary;
use igp_graph::metrics::CutMetrics;
use igp_graph::{io as graph_io, CsrGraph};
use igp_store::wal::HEADER_BYTES;
use igp_store::{decode_frames, SnapshotPolicy};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Registry lock shards.
    pub shards: usize,
    /// Admission control: max queued (unflushed) deltas per session;
    /// further `DELTA`s get a typed `ERR backpressure` until the client
    /// flushes (or the repartition policy drains the queue).
    pub queue_cap: usize,
    /// Durability root. `Some(dir)`: every session journals to
    /// `dir/<sid>/`, all sessions found under `dir` are recovered at
    /// boot, and `CLOSE` deletes the session's directory. `None`:
    /// memory-only (the pre-durability behaviour).
    pub data_dir: Option<PathBuf>,
    /// When durable sessions fold their WAL into a fresh snapshot.
    pub snapshot_policy: SnapshotPolicy,
    /// Follower mode: replicate every session from the primary at this
    /// address (requires `data_dir`). The daemon serves reads
    /// (`PART`/`STAT`/`LIST`/`METRICS`) and refuses write verbs with
    /// `ERR read-only` until promoted (`PROMOTE`, or `failover`).
    pub follow: Option<String>,
    /// Follower poll cadence: how often new WAL frames are fetched from
    /// the primary (doubles as the heartbeat interval).
    pub repl_interval: Duration,
    /// Follower auto-promotion: promote once the primary has been
    /// unreachable this long. `None` = promote only on explicit
    /// `PROMOTE`.
    pub failover: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 16,
            queue_cap: 1024,
            data_dir: None,
            snapshot_policy: SnapshotPolicy::default(),
            follow: None,
            repl_interval: Duration::from_millis(50),
            failover: None,
        }
    }
}

/// Everything a connection handler needs, shared across threads.
pub(crate) struct ServerCtx {
    pub(crate) registry: SessionRegistry,
    pub(crate) queue_cap: usize,
    pub(crate) data_dir: Option<PathBuf>,
    pub(crate) snapshot_policy: SnapshotPolicy,
    /// Role flag: true while serving as a read-replica follower.
    is_follower: AtomicBool,
    /// Raised to stop the replication thread (promotion or shutdown).
    pub(crate) repl_stop: AtomicBool,
}

impl ServerCtx {
    /// True while this daemon is a read-only follower.
    pub(crate) fn is_follower(&self) -> bool {
        self.is_follower.load(Ordering::SeqCst)
    }

    /// Flip to primary and stop replication; returns whether the daemon
    /// had been a follower (idempotent otherwise). Write verbs are
    /// accepted from the moment this returns; the replication thread
    /// observes the flag under each session's lock, so no frame is
    /// applied on top of a post-promotion write.
    pub(crate) fn promote(&self) -> bool {
        let was = self.is_follower.swap(false, Ordering::SeqCst);
        self.repl_stop.store(true, Ordering::SeqCst);
        if was {
            crate::obs::metrics().promotions_total.inc();
            igp_obs::warn!(target: "serve", "promoted to primary");
        }
        was
    }
}

/// A running daemon; dropping it shuts the daemon down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    ctx: Arc<ServerCtx>,
    shutdown_tx: Sender<()>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    follower: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the server exits (i.e. until some client sends
    /// `SHUTDOWN` or another thread calls shutdown).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        // Drop joins the follower (if any) via shutdown().
    }

    /// Stop accepting, drain connections, and join the server threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        // Raise the flag directly too, in case the supervisor already
        // consumed its one shutdown message.
        self.stop.store(true, Ordering::SeqCst);
        self.ctx.repl_stop.store(true, Ordering::SeqCst);
        let _ = self.shutdown_tx.send(());
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.follower.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (port 0 picks an ephemeral port) and serve until
/// shut down. In `data_dir` mode, every session found on disk is
/// recovered (snapshot + WAL replay) before the socket starts
/// accepting, so clients never observe a half-booted daemon.
pub fn serve<A: ToSocketAddrs>(addr: A, opts: ServeOptions) -> io::Result<ServerHandle> {
    if opts.follow.is_some() && opts.data_dir.is_none() {
        // A follower *is* its replica directory; without one there is
        // nothing to promote to.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "follower mode requires a data_dir",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Touch every layer's metric registration at boot so `METRICS`
    // renders the full family set (zero-valued) before any traffic.
    let _ = crate::obs::metrics();
    let _ = igp_core::obs::metrics();
    let _ = igp_store::obs::metrics();
    let _ = igp_runtime::obs::metrics();
    let registry = SessionRegistry::new(opts.shards);
    if let Some(dir) = &opts.data_dir {
        std::fs::create_dir_all(dir)?;
        let (recovered, failures) = crate::durable::recover_all(dir, opts.snapshot_policy)?;
        for r in recovered {
            if let Some(w) = &r.warning {
                igp_obs::warn!(target: "serve", "recovery warning"; sid = r.sid, detail = w);
            }
            let (n, steps, pending) = (
                r.session.inner().graph().num_vertices(),
                r.session.steps(),
                r.session.inner().pending_deltas(),
            );
            igp_obs::info!(
                target: "serve", "recovered session";
                sid = r.sid, n = n, steps = steps, pending = pending,
            );
            registry
                .open(&r.sid, r.session)
                .map_err(|e| io::Error::other(format!("recovered `{}` twice: {e}", r.sid)))?;
        }
        for f in failures {
            igp_obs::error!(target: "serve", "session NOT recovered"; detail = f);
        }
    }
    let ctx = Arc::new(ServerCtx {
        registry,
        queue_cap: opts.queue_cap.max(1),
        data_dir: opts.data_dir.clone(),
        snapshot_policy: opts.snapshot_policy,
        is_follower: AtomicBool::new(opts.follow.is_some()),
        repl_stop: AtomicBool::new(false),
    });
    let stop = Arc::new(AtomicBool::new(false));
    let (shutdown_tx, shutdown_rx) = channel::unbounded::<()>();

    // Follower mode: locally recovered sessions (above) give instant
    // read availability; the replication thread then resyncs each one
    // from the primary and keeps tailing its WAL.
    let follower = opts.follow.as_ref().map(|primary| {
        crate::repl::spawn(
            ctx.clone(),
            stop.clone(),
            crate::repl::FollowerConfig {
                primary: primary.clone(),
                interval: opts.repl_interval,
                failover: opts.failover,
            },
        )
    });

    let supervisor = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            // Ok: a shutdown was requested. Err: every sender dropped,
            // i.e. the server already exited — nothing to do.
            if shutdown_rx.recv().is_ok() {
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop with a throwaway connection. A
                // wildcard bind address (0.0.0.0 / [::]) is not a valid
                // connect target on every platform — aim at loopback on
                // the same port instead.
                let mut wake = addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake.ip() {
                        std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(wake);
            }
        })
    };

    let handle_ctx = ctx.clone();
    let accept = {
        let stop = stop.clone();
        let tx = shutdown_tx.clone();
        std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Reap finished connection threads so a long-lived
                // daemon doesn't accumulate dead JoinHandles.
                conns.retain(|h| !h.is_finished());
                let Ok(stream) = stream else { continue };
                let ctx = ctx.clone();
                let stop = stop.clone();
                let tx = tx.clone();
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &ctx, &stop, &tx);
                }));
            }
            for c in conns {
                let _ = c.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        ctx: handle_ctx,
        shutdown_tx,
        accept: Some(accept),
        supervisor: Some(supervisor),
        follower,
    })
}

/// Longest accepted request line. Generous for DELTA payloads, small
/// enough that a newline-free byte stream cannot balloon the daemon.
const MAX_LINE_BYTES: u64 = 1 << 20;

/// Largest accepted `OPEN` graph upload (METIS text).
const MAX_GRAPH_BYTES: usize = 64 << 20;

/// Read one line, tolerating read timeouts (used to poll `stop`).
/// Returns `None` on EOF, connection error, server stop, or a line
/// exceeding [`MAX_LINE_BYTES`] (the connection cannot be resynced
/// without its newline, so it is dropped).
fn read_line_polling(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    buf: &mut String,
) -> Option<()> {
    buf.clear();
    loop {
        // Bound each read by the line budget left; hitting the budget
        // without a newline means an oversized line.
        let remaining = MAX_LINE_BYTES.saturating_sub(buf.len() as u64);
        if remaining == 0 {
            return None;
        }
        match io::Read::take(io::Read::by_ref(reader), remaining).read_line(buf) {
            Ok(0) => return None,
            Ok(_) => {
                if buf.ends_with('\n') || (buf.len() as u64) < MAX_LINE_BYTES {
                    return Some(()); // full line (or final unterminated line at EOF)
                }
                return None; // budget exhausted mid-line
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Partial data (if any) stays appended in `buf`; keep
                // reading unless the server is stopping.
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    ctx: &ServerCtx,
    stop: &AtomicBool,
    shutdown_tx: &Sender<()>,
) {
    let registry = &ctx.registry;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let m = crate::obs::metrics();
    while read_line_polling(&mut reader, stop, &mut line).is_some() {
        // A busy client can keep every read succeeding before the poll
        // timeout ever fires (a follower heartbeats faster than the
        // timeout), so the stop flag must also be honored between
        // requests or shutdown would never reclaim this thread.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        m.bytes_in_total.add(line.len() as u64);
        let parsed = parse_request(trimmed);
        let vi = parsed.as_ref().ok().map(crate::obs::verb_idx);
        if let Some(vi) = vi {
            m.requests_total[vi].inc();
            igp_obs::debug!(
                target: "serve", "request";
                verb = crate::obs::VERBS[vi], bytes = line.len(),
            );
        }
        // Manual start/stop (not `Histogram::time`): several arms below
        // `break`/`return` out of the match, which a closure cannot.
        let t0 = igp_obs::enabled().then(std::time::Instant::now);
        let reply = match parsed {
            Err(e) => {
                // A malformed OPEN is still followed by the client's
                // graph block: drain through END so the connection stays
                // line-synchronized for the next request.
                if trimmed.split_ascii_whitespace().next() == Some("OPEN")
                    && read_graph_block(&mut reader, stop).is_none()
                {
                    break;
                }
                format!("ERR proto {e}")
            }
            Ok(Request::Ping) => "PONG".to_string(),
            Ok(Request::Open { sid, cfg }) => {
                // The graph block is drained even when the verb is
                // refused, so the connection stays line-synchronized.
                match read_graph_block(&mut reader, stop) {
                    None => break, // connection died mid-upload
                    Some(_) if ctx.is_follower() => err_line(&ServiceError::ReadOnly),
                    Some(text) => {
                        m.bytes_in_total.add(text.len() as u64);
                        open_session(ctx, &sid, cfg, &text)
                    }
                }
            }
            Ok(Request::Delta { .. } | Request::Flush { .. } | Request::Close { .. })
                if ctx.is_follower() =>
            {
                // A follower's sessions advance only by replicated
                // frames; local writes would fork the lineage.
                err_line(&ServiceError::ReadOnly)
            }
            Ok(Request::Delta { sid, delta }) => {
                with_session(registry, &sid, |s| {
                    // Admission control: a client outrunning its own
                    // flushes gets a typed error, not an unbounded
                    // queue.
                    let pending = s.inner().pending_deltas();
                    if pending >= ctx.queue_cap {
                        m.backpressure_total.inc();
                        return err_line(&ServiceError::Backpressure {
                            sid: sid.clone(),
                            pending,
                            cap: ctx.queue_cap,
                        });
                    }
                    match s.ingest(&delta) {
                        Ok(Ingest::Queued { pending }) => {
                            m.queue_depth.set(pending as i64);
                            format!("OK queued sid={sid} pending={pending}")
                        }
                        Ok(Ingest::Stepped { summary, coalesced }) => {
                            m.queue_depth.set(0);
                            m.repartition_counter(&s.config().policy, false).inc();
                            step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                        }
                        Err(e) => err_line(&e),
                    }
                })
            }
            Ok(Request::Flush { sid }) => with_session(registry, &sid, |s| match s.flush() {
                Ok(Some((summary, coalesced))) => {
                    m.queue_depth.set(0);
                    m.repartition_counter(&s.config().policy, true).inc();
                    step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                }
                Ok(None) => format!("OK noop sid={sid}"),
                Err(e) => err_line(&e),
            }),
            Ok(Request::Stat { sid }) => with_session(registry, &sid, |s| {
                let role = if ctx.is_follower() {
                    "follower"
                } else {
                    "primary"
                };
                let g = s.inner().graph();
                let m = CutMetrics::compute(g, s.inner().partitioning());
                let mut line = format!(
                    "OK stat sid={sid} role={role} n={} m={} cut={} imbalance={:.6} pending={} \
                     steps={} moved={} scratch={}",
                    g.num_vertices(),
                    g.num_edges(),
                    m.total_cut_edges,
                    m.count_imbalance,
                    s.inner().pending_deltas(),
                    s.steps(),
                    s.inner().total_moved(),
                    u8::from(s.inner().needs_scratch()),
                );
                if let Some(st) = s.store() {
                    line.push_str(&format!(
                        " wal_records={} wal_bytes={} snap_seq={} snapshots={}",
                        st.wal_records(),
                        st.wal_bytes(),
                        st.seq(),
                        st.snapshots_written(),
                    ));
                }
                // Per-session repartition latency (the session's private
                // histogram — the METRICS exposition has the global one).
                if let Some((p50, p99, max)) = s.repart_latency_us() {
                    line.push_str(&format!(
                        " repart_p50_us={p50} repart_p99_us={p99} repart_max_us={max}"
                    ));
                }
                line
            }),
            Ok(Request::Part { sid }) => with_session(registry, &sid, |s| {
                let assign = s.assignment();
                let mut out = format!("OK part sid={sid} n={}", assign.len());
                for p in assign {
                    out.push(' ');
                    out.push_str(&p.to_string());
                }
                out
            }),
            Ok(Request::Close { sid }) => match registry.close(&sid) {
                Ok(entry) => {
                    // A closed session must not resurrect at next boot:
                    // detach the store (stopping further writes even if
                    // another thread still holds the Arc) and delete
                    // its directory.
                    let dir = match entry.lock() {
                        Ok(mut s) => s.detach_store().map(|st| st.dir().to_path_buf()),
                        // Poisoned by an earlier panic: fall back to
                        // the conventional location.
                        Err(_) => ctx.data_dir.as_ref().map(|d| d.join(&sid)),
                    };
                    if let Some(dir) = dir {
                        let _ = std::fs::remove_dir_all(dir);
                    }
                    format!("OK closed sid={sid}")
                }
                Err(e) => err_line(&e),
            },
            Ok(Request::List) => {
                let ids = registry.list();
                let mut out = format!("OK list count={}", ids.len());
                for id in ids {
                    out.push(' ');
                    out.push_str(&id);
                }
                out
            }
            Ok(Request::Metrics) => {
                // Refresh the registry-derived gauge, then render the
                // whole process registry: service, store, core and
                // runtime families in one exposition.
                m.active_sessions.set(registry.list().len() as i64);
                format!("OK metrics\n{}END", igp_obs::registry().render())
            }
            Ok(Request::ReplSync { sid }) => with_session(registry, &sid, |s| {
                let reply = repl_sync_reply(&sid, s);
                if reply.starts_with("OK ") {
                    m.repl_syncs_shipped_total.inc();
                }
                reply
            }),
            Ok(Request::ReplFrames { sid, seq, offset }) => with_session(registry, &sid, |s| {
                repl_frames_reply(&sid, s, seq, offset, m)
            }),
            Ok(Request::Promote) => {
                let was = ctx.promote();
                format!(
                    "OK promoted role=primary sessions={} was_follower={}",
                    registry.len(),
                    u8::from(was),
                )
            }
            Ok(Request::Shutdown) => {
                m.bytes_out_total.add("OK bye\n".len() as u64);
                let _ = writeln!(out, "OK bye");
                let _ = out.flush();
                let _ = shutdown_tx.send(());
                return;
            }
        };
        if let (Some(t0), Some(vi)) = (t0, vi) {
            m.request_us[vi].observe_duration(t0.elapsed());
        }
        if let Some(rest) = reply.strip_prefix("ERR ") {
            if let Some(c) = rest
                .split_ascii_whitespace()
                .next()
                .and_then(|k| m.error(k))
            {
                c.inc();
            }
        }
        m.bytes_out_total.add(reply.len() as u64 + 1);
        if writeln!(out, "{reply}").and_then(|_| out.flush()).is_err() {
            break;
        }
    }
}

/// Read the METIS graph block that follows an `OPEN` line, up to the
/// `END` terminator.
fn read_graph_block(reader: &mut BufReader<TcpStream>, stop: &AtomicBool) -> Option<String> {
    let mut text = String::new();
    let mut line = String::new();
    loop {
        read_line_polling(reader, stop, &mut line)?;
        if line.trim() == "END" {
            return Some(text);
        }
        if text.len() + line.len() > MAX_GRAPH_BYTES {
            return None; // oversized upload: drop the connection
        }
        text.push_str(&line);
    }
}

fn open_session(ctx: &ServerCtx, sid: &str, cfg: SessionConfig, metis_text: &str) -> String {
    let registry = &ctx.registry;
    // Cheap existence check before paying for parsing + RSB; the
    // post-construction `registry.open` below stays authoritative for
    // the race where two OPENs on one sid pass this check together.
    if registry.get(sid).is_ok() {
        return err_line(&ServiceError::SessionExists(sid.to_string()));
    }
    let graph: CsrGraph = match graph_io::read_metis(metis_text) {
        Ok(g) => g,
        Err(e) => return err_line(&ServiceError::Graph(e.to_string())),
    };
    if graph.num_vertices() < cfg.parts {
        return err_line(&ServiceError::Graph(format!(
            "{} vertices cannot fill parts={}",
            graph.num_vertices(),
            cfg.parts
        )));
    }
    let parts = cfg.parts;
    // Durable configs must survive the config-line roundtrip recovery
    // depends on; reject before any expensive work.
    if ctx.data_dir.is_some() {
        if let Err(e) = crate::protocol::check_wire_representable(&cfg) {
            return err_line(&ServiceError::Storage(e));
        }
    }
    let session = ServiceSession::open(graph, cfg);
    let g = session.inner().graph();
    let m = CutMetrics::compute(g, session.inner().partitioning());
    let (n, num_edges) = (g.num_vertices(), g.num_edges());
    let reply = format!(
        "OK open sid={sid} n={n} m={num_edges} parts={parts} cut={} imbalance={:.6}",
        m.total_cut_edges, m.count_imbalance,
    );
    let entry = match registry.open(sid, session) {
        Ok(entry) => entry,
        Err(e) => return err_line(&e),
    };
    // Disk is touched only after this thread *won* the sid: a loser in
    // a duplicate-OPEN race must never wipe the winner's directory. We
    // operate on the exact entry we registered (not a by-sid lookup,
    // which a concurrent CLOSE + re-OPEN could repoint at someone
    // else's session), and the initial snapshot is taken from the
    // session's state under its lock, so nothing in between is lost.
    if let Some(data_dir) = &ctx.data_dir {
        let made_durable = match entry.lock() {
            Ok(mut s) => s
                .make_durable(&data_dir.join(sid), sid, ctx.snapshot_policy)
                .err(),
            Err(_) => Some(ServiceError::Internal(format!(
                "session `{sid}` poisoned before it became durable"
            ))),
        };
        if let Some(e) = made_durable {
            // A session the daemon cannot journal must not linger
            // half-durable: unregister it again — but only if the table
            // still maps the sid to *our* entry.
            registry.close_if_same(sid, &entry);
            return err_line(&e);
        }
    }
    reply
}

fn with_session<F: FnOnce(&mut ServiceSession) -> String>(
    registry: &SessionRegistry,
    sid: &str,
    f: F,
) -> String {
    match registry.get(sid) {
        Ok(entry) => match entry.lock() {
            Ok(mut session) => f(&mut session),
            // A panic in an earlier request poisoned this session; keep
            // the daemon and the connection alive and tell the client.
            Err(_) => err_line(&ServiceError::Internal(format!(
                "session `{sid}` poisoned by an earlier panic; CLOSE and re-OPEN it"
            ))),
        },
        Err(e) => err_line(&e),
    }
}

fn step_line(sid: &str, s: &StepSummary, coalesced: usize, scratch: bool) -> String {
    format!(
        "OK step sid={sid} step={} coalesced={coalesced} n={} cut={} imbalance={:.6} \
         moved={} stages={} balanced={} scratch={}",
        s.step,
        s.num_vertices,
        s.cut,
        s.imbalance,
        s.moved,
        s.stages,
        u8::from(s.balanced),
        u8::from(scratch),
    )
}

fn err_line(e: &ServiceError) -> String {
    format!("ERR {} {e}", e.kind())
}

/// `REPL SYNC` reply: the session's full durable state — meta, current
/// snapshot, and the acked WAL file — hex-encoded so the line protocol
/// stays text. The header carries the cursor `(seq, wal_end)` the
/// follower resumes `REPL FRAME` tailing from.
fn repl_sync_reply(sid: &str, s: &mut ServiceSession) -> String {
    let Some(st) = s.store() else {
        return err_line(&ServiceError::Storage(format!(
            "session `{sid}` is memory-only; nothing to replicate"
        )));
    };
    let (seq, wal_end) = st.repl_cursor();
    let files = st
        .meta_file_bytes()
        .and_then(|m| st.snapshot_file_bytes().map(|s| (m, s)))
        .and_then(|(m, sn)| st.wal_file_bytes_from(0).map(|w| (m, sn, w)));
    let (meta, snap, wal) = match files {
        Ok(t) => t,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    let mut out = format!(
        "OK replsync sid={sid} seq={seq} wal_end={wal_end} \
         meta_bytes={} snap_bytes={} wal_bytes={}\n",
        meta.len(),
        snap.len(),
        wal.len(),
    );
    out.push_str(&encode_hex_lines(&meta));
    out.push_str(&encode_hex_lines(&snap));
    out.push_str(&encode_hex_lines(&wal));
    out.push_str("END");
    out
}

/// `REPL FRAME` reply: the raw frame bytes in `[offset, wal_end)` of
/// the WAL the cursor names. A cursor from before a rotation (seq
/// mismatch or out-of-range offset) gets `ERR repl-stale`, telling the
/// follower to full-resync.
fn repl_frames_reply(
    sid: &str,
    s: &mut ServiceSession,
    seq: u64,
    offset: u64,
    m: &crate::obs::ServiceMetrics,
) -> String {
    let Some(st) = s.store() else {
        return err_line(&ServiceError::Storage(format!(
            "session `{sid}` is memory-only; nothing to replicate"
        )));
    };
    let (cur_seq, wal_end) = st.repl_cursor();
    if seq != cur_seq || offset < HEADER_BYTES || offset > wal_end {
        return err_line(&ServiceError::ReplStale {
            sid: sid.to_string(),
            seq: cur_seq,
        });
    }
    let bytes = match st.wal_file_bytes_from(offset) {
        Ok(b) => b,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    // Count (and sanity-check) the batch before shipping: a primary
    // must never relay bytes it cannot decode itself.
    let frames = match decode_frames(&bytes) {
        Ok(r) => r.len() as u64,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    m.repl_frames_shipped_total.add(frames);
    let mut out = format!(
        "OK replframes sid={sid} seq={cur_seq} from={offset} to={wal_end} frames={frames} bytes={}\n",
        bytes.len(),
    );
    out.push_str(&encode_hex_lines(&bytes));
    out.push_str("END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: shutting down a daemon bound to a wildcard address
    /// must not hang — the accept-loop wake targets loopback, since a
    /// connect to 0.0.0.0 is not valid on every platform.
    #[test]
    fn shutdown_unblocks_wildcard_bind() {
        let mut h = serve("0.0.0.0:0", ServeOptions::default()).expect("bind");
        assert!(h.addr().ip().is_unspecified());
        h.shutdown(); // joins accept + supervisor; must return promptly
    }
}
