//! The daemon: an event-loop TCP server speaking the line protocol,
//! one [`SessionRegistry`] shared by every connection (DESIGN.md §12).
//!
//! One loop thread owns an [`igp_net::Poller`] (epoll on Linux) with the
//! listener, a [`igp_net::Waker`], and every client socket registered
//! nonblocking. Each connection is a small state machine — incremental
//! line framing into reused per-connection buffers, a graph-upload
//! sub-state for `OPEN`, and a buffered write queue with backpressure —
//! so ten thousand idle sessions cost zero wakeups, not ten thousand
//! 200ms poll syscalls. CPU-heavy verbs (repartition, WAL append,
//! snapshot — anything that locks a session) run on a fixed
//! [`igp_net::WorkerPool`]; the loop never blocks on them. A connection
//! has at most one job in flight and is parked (`Interest::NONE` on the
//! read side) until the reply is queued, which preserves the old
//! thread-per-connection ordering: replies in request order, and the
//! journal-before-ack guarantee holds because the reply string is only
//! produced *after* the worker's durable append returns.
//!
//! Shutdown choreography: `SHUTDOWN` (or [`ServerHandle::shutdown`])
//! raises the stop flag and wakes the loop via the waker — no more
//! throwaway loopback connection to unblock a blocking `accept`, and no
//! 200ms read-timeout polling to let idle connection threads notice the
//! flag. The loop then closes the listener, lets in-flight jobs finish
//! and their replies flush, joins the pool, and exits.

use crate::health::{DaemonHealth, ReplHealth, WorkerHealthHook};
use crate::protocol::{encode_hex_lines, parse_request, Request, StallTarget};
use crate::registry::SessionRegistry;
use crate::session::{Ingest, ServiceSession, SessionConfig};
use crate::ServiceError;
use igp_core::session::StepSummary;
use igp_graph::metrics::CutMetrics;
use igp_graph::{io as graph_io, CsrGraph};
use igp_net::{Events, Interest, Poller, PoolHook, Token, Waker, WorkerPool};
use igp_obs::health::HealthState;
use igp_obs::trace::Span;
use igp_store::wal::HEADER_BYTES;
use igp_store::{decode_frames, SnapshotPolicy};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Registry lock shards.
    pub shards: usize,
    /// Admission control: max queued (unflushed) deltas per session;
    /// further `DELTA`s get a typed `ERR backpressure` until the client
    /// flushes (or the repartition policy drains the queue).
    pub queue_cap: usize,
    /// Durability root. `Some(dir)`: every session journals to
    /// `dir/<sid>/`, all sessions found under `dir` are recovered at
    /// boot, and `CLOSE` deletes the session's directory. `None`:
    /// memory-only (the pre-durability behaviour).
    pub data_dir: Option<PathBuf>,
    /// When durable sessions fold their WAL into a fresh snapshot.
    pub snapshot_policy: SnapshotPolicy,
    /// Follower mode: replicate every session from the primary at this
    /// address (requires `data_dir`). The daemon serves reads
    /// (`PART`/`STAT`/`LIST`/`METRICS`) and refuses write verbs with
    /// `ERR read-only` until promoted (`PROMOTE`, or `failover`).
    pub follow: Option<String>,
    /// Follower poll cadence: how often new WAL frames are fetched from
    /// the primary (doubles as the heartbeat interval).
    pub repl_interval: Duration,
    /// Follower auto-promotion: promote once the primary has been
    /// unreachable this long. `None` = promote only on explicit
    /// `PROMOTE`.
    pub failover: Option<Duration>,
    /// Worker threads for CPU-heavy verbs (everything that locks a
    /// session: `OPEN`/`DELTA`/`FLUSH`/`STAT`/`PART`/`CLOSE`/`REPL *`,
    /// plus replication ticks on a follower). `0` = auto: the machine's
    /// parallelism clamped to `[2, 4]` — the daemon's concurrency now
    /// comes from the event loop, not from thread count.
    pub workers: usize,
    /// Slow-request log threshold (µs): a request whose root trace span
    /// exceeds this emits a structured `warn!` with the full span
    /// breakdown (the `--slow-us` flag; `TRACE SLOW` changes it live).
    /// `None` leaves the process-wide threshold untouched.
    pub slow_us: Option<u64>,
    /// Ops-plane HTTP address (`--http`): a second listener on the same
    /// event loop serving `GET /metrics`, `/healthz`, `/readyz`,
    /// `/traces` and `/sessions` (DESIGN.md §14.1). `None` = no HTTP.
    pub http: Option<String>,
    /// Black-box dump directory (`--diag-dir`): a panic (and, in
    /// `igp-serve`, SIGTERM/SIGINT) writes a diagnostic bundle here
    /// (DESIGN.md §14.3). `None` = no dumps.
    pub diag_dir: Option<PathBuf>,
    /// Watchdog bar for the event loop: one loop iteration (readiness
    /// sweep + completions, poll wait excluded) busy past this is a
    /// stall.
    pub loop_stall: Duration,
    /// Watchdog bar for pool workers: one job busy past this is a
    /// stall. Generous by default — repartitions of large graphs are
    /// legitimately slow.
    pub worker_stall: Duration,
    /// Accept the `STALL` fault-injection verb (`--debug-stall`). Off
    /// by default; production daemons refuse it with `ERR proto`.
    pub debug_stall: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 16,
            queue_cap: 1024,
            data_dir: None,
            snapshot_policy: SnapshotPolicy::default(),
            follow: None,
            repl_interval: Duration::from_millis(50),
            failover: None,
            workers: 0,
            slow_us: None,
            http: None,
            diag_dir: None,
            loop_stall: Duration::from_millis(250),
            worker_stall: Duration::from_secs(60),
            debug_stall: false,
        }
    }
}

fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 4)
}

/// Everything a request handler needs, shared across threads.
pub(crate) struct ServerCtx {
    pub(crate) registry: SessionRegistry,
    pub(crate) queue_cap: usize,
    pub(crate) data_dir: Option<PathBuf>,
    pub(crate) snapshot_policy: SnapshotPolicy,
    /// Role flag: true while serving as a read-replica follower.
    is_follower: AtomicBool,
    /// Raised to stop replication ticks (promotion or shutdown).
    pub(crate) repl_stop: AtomicBool,
    /// This daemon's watchdog and its heartbeat cells.
    pub(crate) health: Arc<DaemonHealth>,
    /// Raised when the loop enters drain — `/readyz` flips not-ready
    /// while in-flight work finishes.
    pub(crate) draining: AtomicBool,
    /// Where this daemon writes black-box dumps, if anywhere.
    pub(crate) diag_dir: Option<PathBuf>,
    /// `STALL` fault injection enabled.
    pub(crate) debug_stall: bool,
}

impl ServerCtx {
    /// True while this daemon is a read-only follower.
    pub(crate) fn is_follower(&self) -> bool {
        self.is_follower.load(Ordering::SeqCst)
    }

    /// Flip to primary and stop replication; returns whether the daemon
    /// had been a follower (idempotent otherwise). Write verbs are
    /// accepted from the moment this returns; the replication tick
    /// observes the flag under each session's lock, so no frame is
    /// applied on top of a post-promotion write.
    pub(crate) fn promote(&self) -> bool {
        let was = self.is_follower.swap(false, Ordering::SeqCst);
        self.repl_stop.store(true, Ordering::SeqCst);
        if was {
            // The replication tick stops on purpose; its freshness cell
            // must stop counting as late or the promoted primary would
            // read degraded (and un-ready) forever.
            if let Some(r) = &self.health.repl {
                r.fresh.retire();
            }
            crate::obs::metrics().promotions_total.inc();
            igp_obs::warn!(target: "serve", "promoted to primary");
        }
        was
    }
}

/// What a worker thread reports back to the event loop. Producers push
/// under the mutex *then* wake — the lock is the happens-before edge the
/// waker's dedup flag relies on.
enum Completion {
    /// A connection's in-flight job finished; `generation` guards against
    /// the slot having been reused by a newer connection.
    Reply {
        token: usize,
        generation: u64,
        reply: String,
    },
    /// The job panicked (the session mutex it held is now poisoned and
    /// will report `ERR internal` on the next request). The connection
    /// dies, exactly as its dedicated thread would have under the old
    /// core.
    Died { token: usize, generation: u64 },
    /// A replication tick returned; `alive == false` means replication
    /// is over (stopped or promoted) and must not be rescheduled.
    ReplTick { alive: bool },
}

/// Loop-side mailbox shared with workers and [`ServerHandle`].
struct LoopShared {
    waker: Waker,
    completions: Mutex<Vec<Completion>>,
}

impl LoopShared {
    fn push(&self, c: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(c);
        self.waker.wake();
    }

    fn take(&self, into: &mut Vec<Completion>) {
        let mut q = self.completions.lock().unwrap_or_else(|p| p.into_inner());
        std::mem::swap(&mut *q, into);
    }
}

/// A running daemon; dropping it shuts the daemon down.
pub struct ServerHandle {
    addr: SocketAddr,
    http_addr: Option<SocketAddr>,
    stop: Arc<AtomicBool>,
    ctx: Arc<ServerCtx>,
    shared: Arc<LoopShared>,
    event_loop: Option<JoinHandle<()>>,
}

/// A cloneable, non-joining shutdown request: raises the stop flag and
/// wakes the loop, nothing more. For contexts that must not block on
/// the loop's exit — the signal watcher thread asks for shutdown with
/// this, then the main thread's [`ServerHandle::wait`] observes it.
#[derive(Clone)]
pub struct ShutdownTrigger {
    stop: Arc<AtomicBool>,
    ctx: Arc<ServerCtx>,
    shared: Arc<LoopShared>,
}

impl ShutdownTrigger {
    /// Request a graceful drain; returns immediately.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ctx.repl_stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }
}

impl ServerHandle {
    /// The bound address (resolves port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The ops-plane HTTP address, when one was requested.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// A detached handle that can request shutdown without joining.
    pub fn trigger(&self) -> ShutdownTrigger {
        ShutdownTrigger {
            stop: self.stop.clone(),
            ctx: self.ctx.clone(),
            shared: self.shared.clone(),
        }
    }

    /// Block until the server exits (i.e. until some client sends
    /// `SHUTDOWN` or another thread calls shutdown).
    pub fn wait(mut self) {
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, drain in-flight work, and join the loop (which
    /// joins the worker pool). Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.ctx.repl_stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (port 0 picks an ephemeral port) and serve until
/// shut down. In `data_dir` mode, every session found on disk is
/// recovered (snapshot + WAL replay) before the socket starts
/// accepting, so clients never observe a half-booted daemon.
pub fn serve<A: ToSocketAddrs>(addr: A, opts: ServeOptions) -> io::Result<ServerHandle> {
    if opts.follow.is_some() && opts.data_dir.is_none() {
        // A follower *is* its replica directory; without one there is
        // nothing to promote to.
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "follower mode requires a data_dir",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let http_listener = match &opts.http {
        Some(a) => {
            let l = TcpListener::bind(a.as_str())?;
            l.set_nonblocking(true)?;
            Some(l)
        }
        None => None,
    };
    let http_addr = match &http_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    // Touch every layer's metric registration at boot so `METRICS`
    // renders the full family set (zero-valued) before any traffic.
    let _ = crate::obs::metrics();
    let _ = igp_core::obs::metrics();
    let _ = igp_store::obs::metrics();
    let _ = igp_runtime::obs::metrics();
    if let Some(us) = opts.slow_us {
        igp_obs::trace::set_slow_threshold_us(us);
    }
    let registry = SessionRegistry::new(opts.shards);
    if let Some(dir) = &opts.data_dir {
        std::fs::create_dir_all(dir)?;
        let (recovered, failures) = crate::durable::recover_all(dir, opts.snapshot_policy)?;
        for r in recovered {
            if let Some(w) = &r.warning {
                igp_obs::warn!(target: "serve", "recovery warning"; sid = r.sid, detail = w);
            }
            let (n, steps, pending) = (
                r.session.inner().graph().num_vertices(),
                r.session.steps(),
                r.session.inner().pending_deltas(),
            );
            igp_obs::info!(
                target: "serve", "recovered session";
                sid = r.sid, n = n, steps = steps, pending = pending,
            );
            registry
                .open(&r.sid, r.session)
                .map_err(|e| io::Error::other(format!("recovered `{}` twice: {e}", r.sid)))?;
        }
        for f in failures {
            igp_obs::error!(target: "serve", "session NOT recovered"; detail = f);
        }
    }
    let workers = effective_workers(opts.workers);
    let repl_health = opts
        .follow
        .as_ref()
        .map(|_| ReplHealth::new(opts.repl_interval));
    let health = DaemonHealth::new(opts.loop_stall, opts.worker_stall, workers, repl_health);
    let ctx = Arc::new(ServerCtx {
        registry,
        queue_cap: opts.queue_cap.max(1),
        data_dir: opts.data_dir.clone(),
        snapshot_policy: opts.snapshot_policy,
        is_follower: AtomicBool::new(opts.follow.is_some()),
        repl_stop: AtomicBool::new(false),
        health,
        draining: AtomicBool::new(false),
        diag_dir: opts.diag_dir.clone(),
        debug_stall: opts.debug_stall,
    });
    // Daemons with a diag dir participate in crash-time dumps (and the
    // process-wide panic hook is installed on first registration).
    crate::diag::register_server(&ctx);
    let stop = Arc::new(AtomicBool::new(false));

    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;
    if let Some(l) = &http_listener {
        poller.register(l.as_raw_fd(), HTTP_LISTENER, Interest::READABLE)?;
    }
    let shared = Arc::new(LoopShared {
        waker: Waker::new(&poller, WAKER)?,
        completions: Mutex::new(Vec::new()),
    });

    // Follower mode: locally recovered sessions (above) give instant
    // read availability; replication ticks then resync each one from
    // the primary and keep tailing its WAL.
    let follower = opts.follow.as_ref().map(|primary| {
        FollowerState::new(
            crate::repl::ReplEngine::new(crate::repl::FollowerConfig {
                primary: primary.clone(),
                failover: opts.failover,
            }),
            opts.repl_interval,
        )
    });

    let hook: Arc<dyn PoolHook> = WorkerHealthHook::new(ctx.health.worker_cells.clone());
    let event_loop = {
        let mut el = EventLoop {
            poller,
            listener: Some(listener),
            http_listener,
            conns: Vec::new(),
            free: Vec::new(),
            next_generation: 0,
            pool: Some(WorkerPool::with_hook(workers, "igp-worker", Some(hook))),
            shared: shared.clone(),
            ctx: ctx.clone(),
            stop: stop.clone(),
            jobs_in_flight: 0,
            follower,
            draining: false,
            drain_deadline: None,
        };
        std::thread::Builder::new()
            .name("igp-loop".into())
            .spawn(move || el.run())?
    };

    Ok(ServerHandle {
        addr,
        http_addr,
        stop,
        ctx,
        shared,
        event_loop: Some(event_loop),
    })
}

/// Longest accepted request line. Generous for DELTA payloads, small
/// enough that a newline-free byte stream cannot balloon the daemon.
const MAX_LINE_BYTES: usize = 1 << 20;

/// Largest accepted `OPEN` graph upload (METIS text).
const MAX_GRAPH_BYTES: usize = 64 << 20;

/// How long the drain phase waits for queued reply bytes to reach
/// clients that are not reading, once all in-flight jobs are done.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(3);

/// Largest accepted ops-plane HTTP request head.
const MAX_HTTP_HEAD: usize = 8 * 1024;

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// The ops-plane HTTP listener (present only with `--http`).
const HTTP_LISTENER: Token = Token(2);
/// Connection slot `i` registers under token `FIRST_CONN + i`.
const FIRST_CONN: usize = 3;

/// Which protocol a connection speaks, fixed by the listener that
/// accepted it.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    /// The line protocol (the primary listener).
    Line,
    /// Ops-plane HTTP/1.0: one GET, one response, close.
    Http,
}

/// Where a connection stands in the request cycle.
enum ConnState {
    /// Between requests: buffered lines are parsed and handled.
    Idle,
    /// Inside the graph block that follows an `OPEN` line, up to `END`.
    Graph {
        /// `Ok`: a parsed `OPEN` waiting for its graph text. `Err`: the
        /// OPEN line was malformed — the block is still drained so the
        /// connection stays line-synchronized, then this reply is sent.
        /// Boxed: `SessionConfig` would otherwise dominate every
        /// `ConnState`, and almost all connections sit in `Idle`/`Busy`.
        pending: Box<Result<(String, SessionConfig), String>>,
        text: String,
        t0: Option<Instant>,
        vi: Option<usize>,
        /// The request's root trace span, held open across the upload.
        root: Span,
    },
    /// A job for this connection is on the worker pool. Reads stay
    /// parked (and buffered lines unprocessed) until the reply comes
    /// back, preserving per-connection request order.
    Busy,
}

/// One client connection: socket + framing/write buffers + state.
///
/// `rbuf`/`line` are reused across requests — framing never allocates a
/// fresh `String` per request — and the line/graph byte caps are
/// enforced incrementally as bytes arrive, so a slow client can never
/// make the daemon buffer unbounded.
struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    /// Distinguishes this connection from an earlier one that used the
    /// same slot, for completions that outlive their connection.
    generation: u64,
    /// Raw inbound bytes; `[consumed, len)` is unframed input.
    rbuf: Vec<u8>,
    /// Bytes before this offset were already framed into lines.
    consumed: usize,
    /// Newline search resumes here (≥ `consumed`), so a trickling
    /// client costs O(bytes), not O(bytes²).
    scan: usize,
    /// Reused per-line buffer the framer copies each request line into.
    line: String,
    /// Outbound bytes not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Interest currently registered with the poller.
    interest: Interest,
    state: ConnState,
    /// Peer sent EOF: finish processing buffered input, flush, close.
    peer_eof: bool,
    /// Reply queued and no further requests accepted (SHUTDOWN, drain);
    /// the connection closes once `wbuf` flushes.
    closing: bool,
    /// Root trace span of the in-flight pool job, kept loop-side so the
    /// completion path can nest the `reply` span under it before it
    /// completes the trace.
    trace_root: Option<Span>,
}

impl Conn {
    /// The interest this connection should be registered with right now.
    fn desired_interest(&self) -> Interest {
        let mut want = Interest::NONE;
        let reading = !self.closing
            && !self.peer_eof
            && !matches!(self.state, ConnState::Busy)
            && self.wbuf.is_empty();
        if reading {
            want = want.add(Interest::READABLE);
        }
        if !self.wbuf.is_empty() {
            want = want.add(Interest::WRITABLE);
        }
        want
    }
}

/// Work the loop hands to the pool on behalf of a connection.
enum PoolJob {
    /// A session-locking verb, exactly as parsed.
    Verb(Request),
    /// A fully uploaded `OPEN`.
    Open {
        sid: String,
        cfg: SessionConfig,
        text: String,
    },
}

/// Replication scheduling state (follower mode only).
struct FollowerState {
    engine: Arc<Mutex<crate::repl::ReplEngine>>,
    interval: Duration,
    /// Next tick is due at this instant (set `interval` after the
    /// previous tick *completed*, matching the old thread's cadence).
    next: Instant,
    in_flight: bool,
    /// Replication ended (shutdown or promotion); stop scheduling.
    done: bool,
}

impl FollowerState {
    fn new(engine: crate::repl::ReplEngine, interval: Duration) -> FollowerState {
        FollowerState {
            engine: Arc::new(Mutex::new(engine)),
            interval,
            next: Instant::now(),
            in_flight: false,
            done: false,
        }
    }
}

struct EventLoop {
    poller: Poller,
    /// Dropped (and deregistered) when draining starts.
    listener: Option<TcpListener>,
    /// The ops-plane HTTP listener, same lifecycle as `listener`.
    http_listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    /// `Option` only so the drain path can move it out to `join`.
    pool: Option<WorkerPool>,
    shared: Arc<LoopShared>,
    ctx: Arc<ServerCtx>,
    stop: Arc<AtomicBool>,
    /// Connection jobs dispatched and not yet completed (counted even if
    /// their connection died meanwhile).
    jobs_in_flight: usize,
    follower: Option<FollowerState>,
    draining: bool,
    /// Armed when the last in-flight job completes during drain.
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) {
        let m = crate::obs::metrics();
        let loop_cell = self.ctx.health.loop_cell.clone();
        let mut events = Events::with_capacity(1024);
        let mut inbox: Vec<Completion> = Vec::new();
        loop {
            if !self.draining && self.stop.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if self.draining && self.drain_complete() {
                break;
            }
            self.schedule_repl_tick();
            let timeout = self.poll_timeout();
            // The watchdog heartbeat brackets the poll wait: blocked in
            // poll is *parked*, everything else in the iteration is
            // *busy* — a stall is an iteration that would not yield.
            loop_cell.idle();
            let t0 = Instant::now();
            let polled = self.poller.poll(&mut events, timeout);
            loop_cell.busy();
            if let Err(e) = polled {
                igp_obs::error!(target: "serve", "poll failed"; detail = e.to_string());
                break;
            }
            m.poll_wait_us.observe_duration(t0.elapsed());
            m.loop_wakeups_total.inc();
            let iter0 = igp_obs::enabled().then(Instant::now);
            for ev in &events {
                match ev.token() {
                    LISTENER => self.accept_all(ConnKind::Line),
                    WAKER => self.shared.waker.drain(),
                    HTTP_LISTENER => self.accept_all(ConnKind::Http),
                    Token(t) => {
                        self.on_conn_event(t - FIRST_CONN, ev.is_readable(), ev.is_writable())
                    }
                }
            }
            // Always sweep the mailbox: a completion pushed between the
            // waker drain and here is either seen now or re-wakes us.
            self.shared.take(&mut inbox);
            for c in inbox.drain(..) {
                self.on_completion(c);
            }
            if let Some(iter0) = iter0 {
                // Iteration time (poll wait excluded): how long the loop
                // was unavailable to new readiness this pass.
                m.loop_iter_us.observe_duration(iter0.elapsed());
            }
        }
        // All jobs completed (drain waits for them), so the queue is
        // empty and this join is immediate.
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }

    /// The nearest timer as a poll timeout; `None` blocks until an event
    /// or a waker wake.
    fn poll_timeout(&self) -> Option<Duration> {
        let mut deadline: Option<Instant> = None;
        if let Some(f) = &self.follower {
            if !f.done && !f.in_flight && !self.draining {
                deadline = Some(f.next);
            }
        }
        if let Some(d) = self.drain_deadline {
            deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        }
        deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    // -- accept path ----------------------------------------------------

    fn accept_all(&mut self, kind: ConnKind) {
        loop {
            let listener = match kind {
                ConnKind::Line => &self.listener,
                ConnKind::Http => &self.http_listener,
            };
            let Some(listener) = listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.install_conn(stream, kind),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept failure (e.g. fd exhaustion): give
                    // up this wakeup rather than spin; the listener stays
                    // level-triggered readable.
                    igp_obs::warn!(target: "serve", "accept failed"; detail = e.to_string());
                    return;
                }
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream, kind: ConnKind) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        self.next_generation += 1;
        let interest = Interest::READABLE;
        if self
            .poller
            .register(stream.as_raw_fd(), Token(FIRST_CONN + slot), interest)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            kind,
            generation: self.next_generation,
            rbuf: Vec::new(),
            consumed: 0,
            scan: 0,
            line: String::new(),
            wbuf: Vec::new(),
            interest,
            state: ConnState::Idle,
            peer_eof: false,
            closing: false,
            trace_root: None,
        });
        crate::obs::metrics().conns_active.add(1);
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            crate::obs::metrics().conns_active.add(-1);
            self.free.push(slot);
        }
    }

    /// Re-register the connection if its desired interest changed.
    fn sync_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let want = conn.desired_interest();
        if want == conn.interest {
            return;
        }
        match self
            .poller
            .reregister(conn.stream.as_raw_fd(), Token(FIRST_CONN + slot), want)
        {
            Ok(()) => conn.interest = want,
            Err(e) => {
                // A registration whose interest we cannot control is worse
                // than a dropped connection: e.g. a failed downgrade to
                // NONE leaves level-triggered readable armed on a socket
                // the loop refuses to read, busy-spinning the loop until
                // the peer goes away. Close instead.
                igp_obs::warn!(
                    target: "serve", "interest change failed; closing connection";
                    detail = e.to_string(),
                );
                self.close_conn(slot);
            }
        }
    }

    // -- read path ------------------------------------------------------

    fn on_conn_event(&mut self, slot: usize, readable: bool, writable: bool) {
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            return; // stale event for a closed connection
        }
        if writable {
            self.flush_conn(slot);
            // Backpressure lifted: requests buffered behind the stalled
            // reply run now (process_conn self-guards against a still
            // non-empty wbuf, Busy, or a closed slot).
            self.process_conn(slot);
        }
        let wants_read = self.conns[slot]
            .as_ref()
            .is_some_and(|c| !c.closing && !c.peer_eof && !matches!(c.state, ConnState::Busy));
        if readable && wants_read {
            self.read_conn(slot);
        }
        self.sync_interest(slot);
    }

    fn read_conn(&mut self, slot: usize) {
        let mut buf = [0u8; 64 * 1024];
        // Per-wakeup read budget: a client blasting bytes faster than we
        // process them must not monopolize the loop or balloon `rbuf`
        // past the caps within a single wakeup. Leftover input keeps the
        // socket level-triggered readable, so the next poll resumes it.
        for _ in 0..16 {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.peer_eof = true;
                    break;
                }
                Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
            // Process per chunk, not per drained socket: the line/graph
            // caps stay incremental (a chunk past the cap closes the
            // connection before the next read), and a connection that
            // goes Busy or backpressured parks with the rest of its
            // input still in the kernel buffer.
            self.process_conn(slot);
            let parked = self.conns[slot].as_ref().is_none_or(|c| {
                c.closing || c.peer_eof || matches!(c.state, ConnState::Busy) || !c.wbuf.is_empty()
            });
            if parked {
                return;
            }
        }
        self.process_conn(slot);
    }

    /// Frame and handle as many buffered lines as the connection's state
    /// allows. Stops at: incomplete line, Busy (job dispatched), closing,
    /// or write backpressure.
    fn process_conn(&mut self, slot: usize) {
        if self.conns[slot]
            .as_ref()
            .is_some_and(|c| c.kind == ConnKind::Http)
        {
            return self.process_http(slot);
        }
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.closing || matches!(conn.state, ConnState::Busy) || !conn.wbuf.is_empty() {
                break;
            }
            // Incremental framing: resume the newline scan where it left
            // off; enforce the line cap on the unframed span as it grows.
            let nl = conn.rbuf[conn.scan..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| conn.scan + i);
            let (end, terminated) = match nl {
                Some(i) => (i + 1, true),
                None => {
                    conn.scan = conn.rbuf.len();
                    if conn.rbuf.len() - conn.consumed >= MAX_LINE_BYTES {
                        // A line that exhausts its budget without a
                        // newline cannot be resynced; drop the
                        // connection, exactly as the old core did.
                        self.close_conn(slot);
                        return;
                    }
                    if conn.peer_eof && conn.consumed < conn.rbuf.len() {
                        (conn.rbuf.len(), false) // final unterminated line
                    } else {
                        break;
                    }
                }
            };
            if terminated && end - conn.consumed > MAX_LINE_BYTES {
                self.close_conn(slot);
                return;
            }
            let Ok(s) = std::str::from_utf8(&conn.rbuf[conn.consumed..end]) else {
                self.close_conn(slot); // the old line reader errored here too
                return;
            };
            conn.line.clear();
            conn.line.push_str(s);
            conn.consumed = end;
            conn.scan = end;
            let _ = terminated;
            // Hand the line over without giving up the reused buffer.
            let line = std::mem::take(&mut conn.line);
            match conn.state {
                ConnState::Idle => self.handle_request_line(slot, &line),
                ConnState::Graph { .. } => self.handle_graph_line(slot, &line),
                ConnState::Busy => unreachable!("loop guard"),
            }
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.line = line;
            }
        }
        // Compact the consumed prefix once per pass (not per line, which
        // would be quadratic over a graph upload).
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.consumed > 0 {
            conn.rbuf.drain(..conn.consumed);
            conn.scan -= conn.consumed;
            conn.consumed = 0;
        }
        if conn.peer_eof && conn.rbuf.is_empty() && !matches!(conn.state, ConnState::Busy) {
            // Input fully handled and the peer is gone: close once the
            // replies have flushed.
            conn.closing = true;
            if conn.wbuf.is_empty() {
                self.close_conn(slot);
                return;
            }
        }
        self.sync_interest(slot);
    }

    // -- ops-plane HTTP -------------------------------------------------

    /// HTTP connections have a one-shot cycle: buffer the request head,
    /// route it, queue the response, close once it flushes. Bodies are
    /// never read (every endpoint is a GET), and the head is capped so
    /// a non-HTTP peer cannot balloon the buffer.
    fn process_http(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if conn.closing || !conn.wbuf.is_empty() {
            self.sync_interest(slot);
            return;
        }
        let Some(head_end) = find_http_head_end(&conn.rbuf) else {
            if conn.rbuf.len() > MAX_HTTP_HEAD || conn.peer_eof {
                self.close_conn(slot);
            }
            return;
        };
        if head_end > MAX_HTTP_HEAD {
            self.close_conn(slot);
            return;
        }
        let head = String::from_utf8_lossy(&conn.rbuf[..head_end]).into_owned();
        conn.rbuf.clear();
        conn.consumed = 0;
        conn.scan = 0;
        let response = self.http_response(&head);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        crate::obs::metrics()
            .bytes_out_total
            .add(response.len() as u64);
        conn.wbuf.extend_from_slice(response.as_bytes());
        conn.closing = true;
        self.flush_conn(slot);
        self.sync_interest(slot);
    }

    /// Route one parsed request head to an endpoint (DESIGN.md §14.1).
    fn http_response(&mut self, head: &str) -> String {
        let line = head.lines().next().unwrap_or("");
        let mut it = line.split_ascii_whitespace();
        let (method, target) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
        let path = target.split('?').next().unwrap_or("");
        let m = crate::obs::metrics();
        if method != "GET" {
            m.http_request("other").inc();
            return http_message(405, "Method Not Allowed", "only GET is served\n");
        }
        match path {
            "/metrics" => {
                m.http_request("metrics").inc();
                refresh_serving_gauges(&self.ctx);
                let body = igp_obs::registry().render();
                format!(
                    "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len(),
                )
            }
            "/healthz" => {
                m.http_request("healthz").inc();
                let r = self.ctx.health.watchdog.check();
                if r.overall == HealthState::Ok {
                    http_message(200, "OK", &r.render())
                } else {
                    http_message(503, "Service Unavailable", &r.render())
                }
            }
            "/readyz" => {
                m.http_request("readyz").inc();
                let r = self.ctx.health.watchdog.check();
                let draining = self.draining;
                // Liveness degradation only blocks readiness at
                // `unhealthy` — but a follower whose replication is not
                // fresh is *not* ready to serve reads, so the `repl`
                // component must be fully ok.
                let repl_ok = r
                    .components
                    .iter()
                    .filter(|c| c.name == "repl")
                    .all(|c| c.state == HealthState::Ok);
                let ready = !draining && r.overall != HealthState::Unhealthy && repl_ok;
                let mut body = format!("ready {}\n", u8::from(ready));
                if draining {
                    body.push_str("draining 1\n");
                }
                body.push_str(&r.render());
                if ready {
                    http_message(200, "OK", &body)
                } else {
                    http_message(503, "Service Unavailable", &body)
                }
            }
            "/traces" => {
                m.http_request("traces").inc();
                let n = target
                    .split_once('?')
                    .and_then(|(_, q)| {
                        q.split('&')
                            .find_map(|kv| kv.strip_prefix("n="))
                            .and_then(|v| v.parse::<usize>().ok())
                    })
                    .unwrap_or(16);
                http_message(200, "OK", &igp_obs::trace::render_traces(n))
            }
            "/sessions" => {
                m.http_request("sessions").inc();
                http_message(200, "OK", &render_sessions(&self.ctx))
            }
            "/" => {
                m.http_request("other").inc();
                http_message(
                    200,
                    "OK",
                    "igp-serve ops plane\n/metrics\n/healthz\n/readyz\n/traces\n/sessions\n",
                )
            }
            _ => {
                m.http_request("other").inc();
                http_message(404, "Not Found", "unknown path\n")
            }
        }
    }

    // -- request handling -----------------------------------------------

    fn handle_request_line(&mut self, slot: usize, line: &str) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        let m = crate::obs::metrics();
        m.bytes_in_total.add(line.len() as u64);
        // Clock before the parse: the root span must start no later
        // than its `parse` child (request_us gains the parse time too,
        // a sub-µs widening).
        let t0 = igp_obs::enabled().then(Instant::now);
        let _lctx = igp_obs::set_log_ctx(format_args!("conn={}", FIRST_CONN + slot));
        let parsed = parse_request(trimmed);
        let vi = parsed.as_ref().ok().map(crate::obs::verb_idx);
        if let Some(vi) = vi {
            m.requests_total[vi].inc();
            igp_obs::debug!(
                target: "serve", "request";
                verb = crate::obs::VERBS[vi], bytes = line.len(),
            );
        }
        let root = match (&parsed, t0) {
            (Ok(req), Some(t0)) => Span::root_from(crate::obs::req_span_name(req), t0),
            _ => Span::disabled(),
        };
        if let (Some(t0), Some(ctx)) = (t0, root.ctx()) {
            igp_obs::trace::record_span(Some(ctx), "parse", t0, t0.elapsed());
        }
        let conn = self.conns[slot].as_mut().expect("caller checked");
        match parsed {
            Err(e) => {
                // A malformed OPEN is still followed by the client's
                // graph block: drain through END so the connection stays
                // line-synchronized for the next request.
                if trimmed.split_ascii_whitespace().next() == Some("OPEN") {
                    conn.state = ConnState::Graph {
                        pending: Box::new(Err(format!("ERR proto {e}"))),
                        text: String::new(),
                        t0: None,
                        vi: None,
                        root,
                    };
                } else {
                    self.finish_request(slot, format!("ERR proto {e}"), t0, vi, root);
                }
            }
            Ok(Request::Ping) => self.finish_request(slot, "PONG".to_string(), t0, vi, root),
            Ok(Request::Open { sid, cfg }) => {
                conn.state = ConnState::Graph {
                    pending: Box::new(Ok((sid, cfg))),
                    text: String::new(),
                    t0,
                    vi,
                    root,
                };
            }
            Ok(Request::Delta { .. } | Request::Flush { .. } | Request::Close { .. })
                if self.ctx.is_follower() =>
            {
                // A follower's sessions advance only by replicated
                // frames; local writes would fork the lineage.
                self.finish_request(slot, err_line(&ServiceError::ReadOnly), t0, vi, root);
            }
            Ok(
                req @ (Request::Delta { .. }
                | Request::Flush { .. }
                | Request::Stat { .. }
                | Request::Part { .. }
                | Request::Close { .. }
                | Request::ReplSync { .. }
                | Request::ReplFrames { .. }),
            ) => self.dispatch(slot, PoolJob::Verb(req), t0, vi, root),
            Ok(Request::List) => {
                let ids = self.ctx.registry.list();
                let mut out = format!("OK list count={}", ids.len());
                for id in ids {
                    out.push(' ');
                    out.push_str(&id);
                }
                self.finish_request(slot, out, t0, vi, root);
            }
            Ok(Request::Metrics) => {
                // Refresh the registry- and clock-derived gauges, then
                // render the whole process registry: service, store,
                // core and runtime families in one exposition.
                refresh_serving_gauges(&self.ctx);
                let out = format!("OK metrics\n{}END", igp_obs::registry().render());
                self.finish_request(slot, out, t0, vi, root);
            }
            Ok(Request::TraceDump { n }) => {
                let out = format!("OK trace\n{}END", igp_obs::trace::render_traces(n));
                self.finish_request(slot, out, t0, vi, root);
            }
            Ok(Request::TraceSlow { threshold_us }) => {
                igp_obs::trace::set_slow_threshold_us(threshold_us);
                igp_obs::info!(target: "serve", "slow-request threshold set"; slow_us = threshold_us);
                let out = format!("OK trace slow_us={threshold_us}");
                self.finish_request(slot, out, t0, vi, root);
            }
            Ok(Request::Promote) => {
                let was = self.ctx.promote();
                if let Some(f) = &mut self.follower {
                    f.done = true;
                }
                let out = format!(
                    "OK promoted role=primary sessions={} was_follower={}",
                    self.ctx.registry.len(),
                    u8::from(was),
                );
                self.finish_request(slot, out, t0, vi, root);
            }
            Ok(Request::Stall { target, ms }) => {
                if !self.ctx.debug_stall {
                    self.finish_request(
                        slot,
                        "ERR proto STALL requires --debug-stall".to_string(),
                        t0,
                        vi,
                        root,
                    );
                } else {
                    match target {
                        StallTarget::Loop => {
                            // Fault injection: hold the loop thread
                            // hostage so the watchdog's stall detection
                            // can be tested end to end.
                            igp_obs::warn!(target: "serve", "injected loop stall"; ms = ms);
                            std::thread::sleep(Duration::from_millis(ms));
                            let out = format!("OK stalled target=loop ms={ms}");
                            self.finish_request(slot, out, t0, vi, root);
                        }
                        StallTarget::Worker => self.dispatch(
                            slot,
                            PoolJob::Verb(Request::Stall { target, ms }),
                            t0,
                            vi,
                            root,
                        ),
                    }
                }
            }
            Ok(Request::Shutdown) => {
                self.queue_reply(slot, "OK bye".to_string());
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.closing = true;
                }
                self.stop.store(true, Ordering::SeqCst);
            }
        }
    }

    fn handle_graph_line(&mut self, slot: usize, line: &str) {
        let conn = self.conns[slot].as_mut().expect("caller checked");
        let ConnState::Graph {
            pending: _, text, ..
        } = &mut conn.state
        else {
            unreachable!("caller checked");
        };
        if line.trim() != "END" {
            if text.len() + line.len() > MAX_GRAPH_BYTES {
                self.close_conn(slot); // oversized upload: drop the connection
                return;
            }
            text.push_str(line);
            return;
        }
        let state = std::mem::replace(&mut conn.state, ConnState::Idle);
        let ConnState::Graph {
            pending,
            text,
            t0,
            vi,
            root,
        } = state
        else {
            unreachable!("matched above");
        };
        match *pending {
            Err(reply) => self.finish_request(slot, reply, t0, vi, root),
            Ok((sid, cfg)) => self.dispatch(slot, PoolJob::Open { sid, cfg, text }, t0, vi, root),
        }
    }

    /// Observe latency and queue the reply (loop-inline verbs). Dropping
    /// `root` here completes the request's trace — after the `reply`
    /// child, so children always hit the ring before their root.
    fn finish_request(
        &mut self,
        slot: usize,
        reply: String,
        t0: Option<Instant>,
        vi: Option<usize>,
        root: Span,
    ) {
        if let (Some(t0), Some(vi)) = (t0, vi) {
            crate::obs::metrics().request_us[vi].observe_duration(t0.elapsed());
        }
        let reply_span = root.child("reply");
        self.queue_reply(slot, reply);
        drop(reply_span);
        drop(root);
    }

    /// Park the connection and run the job on the pool; the completion
    /// routes the reply back through the waker.
    fn dispatch(
        &mut self,
        slot: usize,
        job: PoolJob,
        t0: Option<Instant>,
        vi: Option<usize>,
        root: Span,
    ) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.state = ConnState::Busy;
        let token = FIRST_CONN + slot;
        let generation = conn.generation;
        // The job closure carries only the trace *context*; the root
        // span parks with the connection so the completion path can
        // nest the reply under it and complete the trace loop-side.
        let dispatch_span = root.child("dispatch");
        let job_ctx = root.ctx();
        conn.trace_root = Some(root);
        let sid = job_sid(&job).map(str::to_string);
        let enqueued = igp_obs::enabled().then(Instant::now);
        let ctx = self.ctx.clone();
        let shared = self.shared.clone();
        self.jobs_in_flight += 1;
        let pool = self.pool.as_ref().expect("pool lives until drain ends");
        pool.execute(Box::new(move || {
            let m = crate::obs::metrics();
            let _lctx = worker_log_ctx(token, sid.as_deref(), job_ctx);
            if let Some(enq) = enqueued {
                // Dispatch→pickup latency: the direct measure of pool
                // saturation, as both a histogram and a trace span.
                let wait = enq.elapsed();
                m.pool_queue_wait_us.observe_duration(wait);
                igp_obs::trace::record_span(job_ctx, "queue_wait", enq, wait);
            }
            // A panicking handler poisons the session lock it held (the
            // next request gets a typed `ERR internal`); contain it here
            // so the completion still reaches the loop.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Entering the exec span makes it the thread's ambient
                // context, which is what the store-layer span hooks
                // (wal_append, snapshot, repartition) attach to.
                let exec = Span::child_of(job_ctx, "exec");
                let _ambient = exec.enter();
                let reply = pool_reply(&ctx, job);
                if let (Some(t0), Some(vi)) = (t0, vi) {
                    m.request_us[vi].observe_duration(t0.elapsed());
                }
                reply
            }));
            shared.push(match outcome {
                Ok(reply) => Completion::Reply {
                    token,
                    generation,
                    reply,
                },
                Err(_) => Completion::Died { token, generation },
            });
        }));
        drop(dispatch_span);
    }

    // -- write path -----------------------------------------------------

    /// Count the reply (bytes out, typed-error kind) and queue it on the
    /// connection's write buffer, flushing as much as the socket takes.
    fn queue_reply(&mut self, slot: usize, reply: String) {
        let m = crate::obs::metrics();
        if let Some(rest) = reply.strip_prefix("ERR ") {
            if let Some(c) = rest
                .split_ascii_whitespace()
                .next()
                .and_then(|k| m.error(k))
            {
                c.inc();
            }
        }
        m.bytes_out_total.add(reply.len() as u64 + 1);
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.wbuf.extend_from_slice(reply.as_bytes());
        conn.wbuf.push(b'\n');
        self.flush_conn(slot);
        self.sync_interest(slot);
    }

    /// Write as much of `wbuf` as the socket accepts; close on error or
    /// when a closing connection finishes flushing.
    fn flush_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let mut written = 0;
        let mut backpressured = false;
        while written < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    backpressured = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        if written > 0 {
            conn.wbuf.drain(..written);
        }
        if backpressured && !conn.wbuf.is_empty() {
            crate::obs::metrics().write_backpressure_total.inc();
        }
        if conn.wbuf.is_empty() && conn.closing {
            self.close_conn(slot);
        }
        // Deliberately NOT re-entering process_conn here: flush_conn is
        // called from inside process_conn's own loop (via queue_reply), so
        // re-entry would nest one stack frame per buffered pipelined line —
        // a 64KB burst of `PING\n` must not overflow the loop thread's
        // stack. Callers that need to resume parked input after a flush
        // (the writability-event and completion paths) call process_conn
        // themselves, iteratively.
    }

    // -- completions ----------------------------------------------------

    fn on_completion(&mut self, c: Completion) {
        match c {
            Completion::Reply {
                token,
                generation,
                reply,
            } => {
                self.jobs_in_flight -= 1;
                let slot = token - FIRST_CONN;
                if self.conn_matches(slot, generation) {
                    let mut root = None;
                    if let Some(conn) = self.conns[slot].as_mut() {
                        conn.state = ConnState::Idle;
                        root = conn.trace_root.take();
                        if self.draining {
                            // In-flight requests complete and reply even
                            // under shutdown (the old core joined its
                            // connection threads), but nothing new runs.
                            conn.closing = true;
                        }
                    }
                    let reply_span = root.as_ref().map(|r| r.child("reply"));
                    self.queue_reply(slot, reply);
                    // Child before root, so the slow log and the dump
                    // both see the complete tree.
                    drop(reply_span);
                    drop(root);
                    if let Some(conn) = self.conns[slot].as_mut() {
                        if !conn.closing {
                            // Pipelined requests may already be buffered.
                            self.process_conn(slot);
                        }
                    }
                    self.sync_interest(slot);
                }
                self.arm_drain_deadline();
            }
            Completion::Died { token, generation } => {
                self.jobs_in_flight -= 1;
                let slot = token - FIRST_CONN;
                if self.conn_matches(slot, generation) {
                    self.close_conn(slot);
                }
                self.arm_drain_deadline();
            }
            Completion::ReplTick { alive } => {
                if let Some(f) = &mut self.follower {
                    f.in_flight = false;
                    f.done |= !alive;
                    f.next = Instant::now() + f.interval;
                }
                self.arm_drain_deadline();
            }
        }
    }

    fn conn_matches(&self, slot: usize, generation: u64) -> bool {
        self.conns
            .get(slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.generation == generation)
    }

    // -- replication scheduling -----------------------------------------

    fn schedule_repl_tick(&mut self) {
        if self.draining {
            return;
        }
        let Some(f) = &mut self.follower else { return };
        if f.done || f.in_flight || Instant::now() < f.next {
            return;
        }
        if !self.ctx.is_follower() || self.ctx.repl_stop.load(Ordering::SeqCst) {
            f.done = true;
            return;
        }
        f.in_flight = true;
        let engine = f.engine.clone();
        let ctx = self.ctx.clone();
        let stop = self.stop.clone();
        let shared = self.shared.clone();
        let pool = self.pool.as_ref().expect("pool lives until drain ends");
        pool.execute(Box::new(move || {
            let alive = match engine.lock() {
                Ok(mut e) => e.run_tick(&ctx, &stop),
                Err(_) => false,
            };
            shared.push(Completion::ReplTick { alive });
        }));
    }

    // -- shutdown -------------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = true;
        self.ctx.draining.store(true, Ordering::SeqCst);
        self.ctx.repl_stop.store(true, Ordering::SeqCst);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        if let Some(listener) = self.http_listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        // Idle connections close now (in-flight ones reply first, then
        // close via the completion path).
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            if matches!(conn.state, ConnState::Busy) {
                continue;
            }
            conn.closing = true;
            if conn.wbuf.is_empty() {
                self.close_conn(slot);
            }
        }
        self.arm_drain_deadline();
    }

    /// Once nothing is in flight, give lingering write buffers a bounded
    /// grace to reach their clients.
    fn arm_drain_deadline(&mut self) {
        if self.draining
            && self.jobs_in_flight == 0
            && !self.follower.as_ref().is_some_and(|f| f.in_flight)
        {
            self.drain_deadline
                .get_or_insert_with(|| Instant::now() + DRAIN_FLUSH_GRACE);
        }
    }

    fn drain_complete(&mut self) -> bool {
        if self.jobs_in_flight > 0 || self.follower.as_ref().is_some_and(|f| f.in_flight) {
            return false;
        }
        let open = self.conns.iter().filter(|c| c.is_some()).count();
        if open == 0 {
            return true;
        }
        if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
            // Grace expired: abandon unflushed bytes to unreading peers.
            for slot in 0..self.conns.len() {
                self.close_conn(slot);
            }
            return true;
        }
        false
    }
}

/// The session id a pool job targets, if any (worker log context).
fn job_sid(job: &PoolJob) -> Option<&str> {
    match job {
        PoolJob::Verb(req) => crate::obs::request_sid(req),
        PoolJob::Open { sid, .. } => Some(sid),
    }
}

/// Worker-thread log context for a dispatched job: connection token,
/// plus session id and trace id when the job has them.
fn worker_log_ctx(
    token: usize,
    sid: Option<&str>,
    ctx: Option<igp_obs::trace::TraceCtx>,
) -> igp_obs::LogCtxGuard {
    match (sid, ctx) {
        (Some(sid), Some(c)) => igp_obs::set_log_ctx(format_args!(
            "conn={token} sid={sid} trace={:#018x}",
            c.trace
        )),
        (Some(sid), None) => igp_obs::set_log_ctx(format_args!("conn={token} sid={sid}")),
        (None, Some(c)) => {
            igp_obs::set_log_ctx(format_args!("conn={token} trace={:#018x}", c.trace))
        }
        (None, None) => igp_obs::set_log_ctx(format_args!("conn={token}")),
    }
}

/// Compute the reply for a pool-dispatched verb. Runs on a worker
/// thread; every arm is the old thread-per-connection handler arm,
/// verbatim — including journal-before-ack: the reply string exists only
/// after the session's durable append (inside `ingest`/`flush`) has
/// returned.
fn pool_reply(ctx: &Arc<ServerCtx>, job: PoolJob) -> String {
    let registry = &ctx.registry;
    let m = crate::obs::metrics();
    match job {
        PoolJob::Open { sid, cfg, text } => {
            // Follower check sits here (not at dispatch) to mirror the
            // old core, which decided after the upload finished.
            if ctx.is_follower() {
                err_line(&ServiceError::ReadOnly)
            } else {
                m.bytes_in_total.add(text.len() as u64);
                open_session(ctx, &sid, cfg, &text)
            }
        }
        PoolJob::Verb(Request::Delta { sid, delta }) => with_session(registry, &sid, |s| {
            // Admission control: a client outrunning its own flushes
            // gets a typed error, not an unbounded queue.
            let pending = s.inner().pending_deltas();
            if pending >= ctx.queue_cap {
                m.backpressure_total.inc();
                return err_line(&ServiceError::Backpressure {
                    sid: sid.clone(),
                    pending,
                    cap: ctx.queue_cap,
                });
            }
            match s.ingest(&delta) {
                Ok(Ingest::Queued { pending }) => {
                    m.queue_depth.set(pending as i64);
                    format!("OK queued sid={sid} pending={pending}")
                }
                Ok(Ingest::Stepped { summary, coalesced }) => {
                    m.queue_depth.set(0);
                    m.repartition_counter(&s.config().policy, false).inc();
                    step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                }
                Err(e) => err_line(&e),
            }
        }),
        PoolJob::Verb(Request::Flush { sid }) => {
            with_session(registry, &sid, |s| match s.flush() {
                Ok(Some((summary, coalesced))) => {
                    m.queue_depth.set(0);
                    m.repartition_counter(&s.config().policy, true).inc();
                    step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                }
                Ok(None) => format!("OK noop sid={sid}"),
                Err(e) => err_line(&e),
            })
        }
        PoolJob::Verb(Request::Stat { sid }) => with_session(registry, &sid, |s| {
            let role = if ctx.is_follower() {
                "follower"
            } else {
                "primary"
            };
            let g = s.inner().graph();
            let m = CutMetrics::compute(g, s.inner().partitioning());
            let mut line = format!(
                "OK stat sid={sid} role={role} n={} m={} cut={} imbalance={:.6} pending={} \
                 steps={} moved={} scratch={}",
                g.num_vertices(),
                g.num_edges(),
                m.total_cut_edges,
                m.count_imbalance,
                s.inner().pending_deltas(),
                s.steps(),
                s.inner().total_moved(),
                u8::from(s.inner().needs_scratch()),
            );
            if let Some(st) = s.store() {
                line.push_str(&format!(
                    " wal_records={} wal_bytes={} snap_seq={} snapshots={}",
                    st.wal_records(),
                    st.wal_bytes(),
                    st.seq(),
                    st.snapshots_written(),
                ));
            }
            // Per-session repartition latency (the session's private
            // histogram — the METRICS exposition has the global one).
            if let Some((p50, p99, max)) = s.repart_latency_us() {
                line.push_str(&format!(
                    " repart_p50_us={p50} repart_p99_us={p99} repart_max_us={max}"
                ));
            }
            line.push_str(&format!(" uptime_s={}", crate::obs::uptime_s()));
            if ctx.is_follower() {
                if let Some(rh) = &ctx.health.repl {
                    line.push_str(&format!(" repl_lag_ms={}", rh.lag_ms()));
                    if let Some(age) = rh.heartbeat_age_ms() {
                        line.push_str(&format!(" repl_heartbeat_age_ms={age}"));
                    }
                }
            }
            line
        }),
        PoolJob::Verb(Request::Part { sid }) => with_session(registry, &sid, |s| {
            let assign = s.assignment();
            let mut out = format!("OK part sid={sid} n={}", assign.len());
            for p in assign {
                out.push(' ');
                out.push_str(&p.to_string());
            }
            out
        }),
        PoolJob::Verb(Request::Close { sid }) => match registry.close(&sid) {
            Ok(entry) => {
                // A closed session must not resurrect at next boot:
                // detach the store (stopping further writes even if
                // another thread still holds the Arc) and delete its
                // directory.
                let dir = match entry.lock() {
                    Ok(mut s) => s.detach_store().map(|st| st.dir().to_path_buf()),
                    // Poisoned by an earlier panic: fall back to the
                    // conventional location.
                    Err(_) => ctx.data_dir.as_ref().map(|d| d.join(&sid)),
                };
                if let Some(dir) = dir {
                    let _ = std::fs::remove_dir_all(dir);
                }
                format!("OK closed sid={sid}")
            }
            Err(e) => err_line(&e),
        },
        PoolJob::Verb(Request::ReplSync { sid }) => with_session(registry, &sid, |s| {
            let reply = repl_sync_reply(&sid, s);
            if reply.starts_with("OK ") {
                m.repl_syncs_shipped_total.inc();
            }
            reply
        }),
        PoolJob::Verb(Request::ReplFrames { sid, seq, offset }) => {
            with_session(registry, &sid, |s| {
                repl_frames_reply(&sid, s, seq, offset, m)
            })
        }
        PoolJob::Verb(Request::Stall {
            target: StallTarget::Worker,
            ms,
        }) => {
            // Fault injection (gated at dispatch by --debug-stall):
            // occupy this worker so its heartbeat cell registers a
            // stall.
            igp_obs::warn!(target: "serve", "injected worker stall"; ms = ms);
            std::thread::sleep(Duration::from_millis(ms));
            format!("OK stalled target=worker ms={ms}")
        }
        PoolJob::Verb(req) => {
            // Ping/List/Metrics/Promote/Shutdown/Open are loop-inline and
            // never dispatched; reaching here is a loop bug, not a client
            // error.
            err_line(&ServiceError::Internal(format!(
                "verb `{}` is not a pool verb",
                crate::obs::VERBS[crate::obs::verb_idx(&req)]
            )))
        }
    }
}

fn open_session(ctx: &ServerCtx, sid: &str, cfg: SessionConfig, metis_text: &str) -> String {
    let registry = &ctx.registry;
    // Cheap existence check before paying for parsing + RSB; the
    // post-construction `registry.open` below stays authoritative for
    // the race where two OPENs on one sid pass this check together.
    if registry.get(sid).is_ok() {
        return err_line(&ServiceError::SessionExists(sid.to_string()));
    }
    let graph: CsrGraph = match graph_io::read_metis(metis_text) {
        Ok(g) => g,
        Err(e) => return err_line(&ServiceError::Graph(e.to_string())),
    };
    if graph.num_vertices() < cfg.parts {
        return err_line(&ServiceError::Graph(format!(
            "{} vertices cannot fill parts={}",
            graph.num_vertices(),
            cfg.parts
        )));
    }
    let parts = cfg.parts;
    // Durable configs must survive the config-line roundtrip recovery
    // depends on; reject before any expensive work.
    if ctx.data_dir.is_some() {
        if let Err(e) = crate::protocol::check_wire_representable(&cfg) {
            return err_line(&ServiceError::Storage(e));
        }
    }
    let session = ServiceSession::open(graph, cfg);
    let g = session.inner().graph();
    let m = CutMetrics::compute(g, session.inner().partitioning());
    let (n, num_edges) = (g.num_vertices(), g.num_edges());
    let reply = format!(
        "OK open sid={sid} n={n} m={num_edges} parts={parts} cut={} imbalance={:.6}",
        m.total_cut_edges, m.count_imbalance,
    );
    let entry = match registry.open(sid, session) {
        Ok(entry) => entry,
        Err(e) => return err_line(&e),
    };
    // Disk is touched only after this thread *won* the sid: a loser in
    // a duplicate-OPEN race must never wipe the winner's directory. We
    // operate on the exact entry we registered (not a by-sid lookup,
    // which a concurrent CLOSE + re-OPEN could repoint at someone
    // else's session), and the initial snapshot is taken from the
    // session's state under its lock, so nothing in between is lost.
    if let Some(data_dir) = &ctx.data_dir {
        let made_durable = match entry.lock() {
            Ok(mut s) => s
                .make_durable(&data_dir.join(sid), sid, ctx.snapshot_policy)
                .err(),
            Err(_) => Some(ServiceError::Internal(format!(
                "session `{sid}` poisoned before it became durable"
            ))),
        };
        if let Some(e) = made_durable {
            // A session the daemon cannot journal must not linger
            // half-durable: unregister it again — but only if the table
            // still maps the sid to *our* entry.
            registry.close_if_same(sid, &entry);
            return err_line(&e);
        }
    }
    reply
}

fn with_session<F: FnOnce(&mut ServiceSession) -> String>(
    registry: &SessionRegistry,
    sid: &str,
    f: F,
) -> String {
    match registry.get(sid) {
        Ok(entry) => match entry.lock() {
            Ok(mut session) => f(&mut session),
            // A panic in an earlier request poisoned this session; keep
            // the daemon and the connection alive and tell the client.
            Err(_) => err_line(&ServiceError::Internal(format!(
                "session `{sid}` poisoned by an earlier panic; CLOSE and re-OPEN it"
            ))),
        },
        Err(e) => err_line(&e),
    }
}

fn step_line(sid: &str, s: &StepSummary, coalesced: usize, scratch: bool) -> String {
    format!(
        "OK step sid={sid} step={} coalesced={coalesced} n={} cut={} imbalance={:.6} \
         moved={} stages={} balanced={} scratch={}",
        s.step,
        s.num_vertices,
        s.cut,
        s.imbalance,
        s.moved,
        s.stages,
        u8::from(s.balanced),
        u8::from(scratch),
    )
}

fn err_line(e: &ServiceError) -> String {
    format!("ERR {} {e}", e.kind())
}

/// End of the HTTP request head (`\r\n\r\n` or bare `\n\n`), if fully
/// buffered; returns the offset one past the blank line.
fn find_http_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// A complete plain-text HTTP/1.0 response.
fn http_message(code: u16, reason: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {code} {reason}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
}

/// The `/sessions` table: one line per session, read with `try_lock` so
/// a busy session shows as `busy=1` instead of blocking the loop (or a
/// crash-time dump) on a worker's session lock.
pub(crate) fn render_sessions(ctx: &ServerCtx) -> String {
    let ids = ctx.registry.list();
    let role = if ctx.is_follower() {
        "follower"
    } else {
        "primary"
    };
    let mut out = format!("role {role}\nsessions {}\n", ids.len());
    for sid in ids {
        let Ok(entry) = ctx.registry.get(&sid) else {
            continue; // closed between list and get
        };
        match entry.try_lock() {
            Ok(s) => {
                let g = s.inner().graph();
                out.push_str(&format!(
                    "{sid} n={} m={} pending={} steps={} scratch={}\n",
                    g.num_vertices(),
                    g.num_edges(),
                    s.inner().pending_deltas(),
                    s.steps(),
                    u8::from(s.inner().needs_scratch()),
                ));
            }
            Err(std::sync::TryLockError::WouldBlock) => {
                out.push_str(&format!("{sid} busy=1\n"));
            }
            Err(std::sync::TryLockError::Poisoned(_)) => {
                out.push_str(&format!("{sid} poisoned=1\n"));
            }
        };
    }
    out
}

/// Refresh every registry- or clock-derived gauge ahead of a metrics
/// render (the `METRICS` verb, HTTP `/metrics`, and the dump all route
/// through here).
pub(crate) fn refresh_serving_gauges(ctx: &ServerCtx) {
    let m = crate::obs::metrics();
    m.active_sessions.set(ctx.registry.len() as i64);
    crate::obs::refresh_process_gauges();
    if let Some(rh) = &ctx.health.repl {
        m.repl_lag_ms.set(rh.lag_ms() as i64);
        if let Some(age) = rh.heartbeat_age_ms() {
            m.repl_heartbeat_age_ms.set(age as i64);
        }
    }
}

/// `REPL SYNC` reply: the session's full durable state — meta, current
/// snapshot, and the acked WAL file — hex-encoded so the line protocol
/// stays text. The header carries the cursor `(seq, wal_end)` the
/// follower resumes `REPL FRAME` tailing from.
fn repl_sync_reply(sid: &str, s: &mut ServiceSession) -> String {
    let Some(st) = s.store() else {
        return err_line(&ServiceError::Storage(format!(
            "session `{sid}` is memory-only; nothing to replicate"
        )));
    };
    let (seq, wal_end) = st.repl_cursor();
    let files = st
        .meta_file_bytes()
        .and_then(|m| st.snapshot_file_bytes().map(|s| (m, s)))
        .and_then(|(m, sn)| st.wal_file_bytes_from(0).map(|w| (m, sn, w)));
    let (meta, snap, wal) = match files {
        Ok(t) => t,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    let mut out = format!(
        "OK replsync sid={sid} seq={seq} wal_end={wal_end} \
         meta_bytes={} snap_bytes={} wal_bytes={}\n",
        meta.len(),
        snap.len(),
        wal.len(),
    );
    out.push_str(&encode_hex_lines(&meta));
    out.push_str(&encode_hex_lines(&snap));
    out.push_str(&encode_hex_lines(&wal));
    out.push_str("END");
    out
}

/// `REPL FRAME` reply: the raw frame bytes in `[offset, wal_end)` of
/// the WAL the cursor names. A cursor from before a rotation (seq
/// mismatch or out-of-range offset) gets `ERR repl-stale`, telling the
/// follower to full-resync.
fn repl_frames_reply(
    sid: &str,
    s: &mut ServiceSession,
    seq: u64,
    offset: u64,
    m: &crate::obs::ServiceMetrics,
) -> String {
    let Some(st) = s.store() else {
        return err_line(&ServiceError::Storage(format!(
            "session `{sid}` is memory-only; nothing to replicate"
        )));
    };
    let (cur_seq, wal_end) = st.repl_cursor();
    if seq != cur_seq || offset < HEADER_BYTES || offset > wal_end {
        return err_line(&ServiceError::ReplStale {
            sid: sid.to_string(),
            seq: cur_seq,
        });
    }
    let bytes = match st.wal_file_bytes_from(offset) {
        Ok(b) => b,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    // Count (and sanity-check) the batch before shipping: a primary
    // must never relay bytes it cannot decode itself.
    let frames = match decode_frames(&bytes) {
        Ok(r) => r.len() as u64,
        Err(e) => return err_line(&ServiceError::Storage(e.to_string())),
    };
    m.repl_frames_shipped_total.add(frames);
    let mut out = format!(
        "OK replframes sid={sid} seq={cur_seq} from={offset} to={wal_end} frames={frames} bytes={}",
        bytes.len(),
    );
    // The primary's trace id rides the header — never the frame bytes,
    // which must re-journal byte-identical on the follower — so the
    // follower's apply spans can join this request's trace.
    if let Some(trace) = igp_obs::trace::current_trace_id() {
        out.push_str(&format!(" trace={trace}"));
    }
    out.push('\n');
    out.push_str(&encode_hex_lines(&bytes));
    out.push_str("END");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: shutting down a daemon bound to a wildcard address
    /// must not hang. The old core woke its blocking `accept` with a
    /// throwaway loopback connection (wildcard addresses are not valid
    /// connect targets everywhere); the event loop's waker has no such
    /// address sensitivity, but the behaviour must hold.
    #[test]
    fn shutdown_unblocks_wildcard_bind() {
        let mut h = serve("0.0.0.0:0", ServeOptions::default()).expect("bind");
        assert!(h.addr().ip().is_unspecified());
        h.shutdown(); // joins the loop (and pool); must return promptly
    }

    /// The auto worker count stays small and fixed: the loop, not the
    /// thread count, provides concurrency.
    #[test]
    fn auto_workers_is_small_and_fixed() {
        let w = effective_workers(0);
        assert!((2..=4).contains(&w), "auto workers = {w}");
        assert_eq!(effective_workers(7), 7);
    }
}
