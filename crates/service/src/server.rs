//! The daemon: a thread-per-connection TCP server speaking the line
//! protocol, one [`SessionRegistry`] shared by every connection.
//!
//! Shutdown choreography (crossbeam channel + accept-wake):
//! a `SHUTDOWN` request (or [`ServerHandle::shutdown`]) sends on the
//! shutdown channel; a supervisor thread receives, raises the stop
//! flag and opens a throwaway connection to the listener so the
//! blocking `accept` observes the flag. Connection threads poll the
//! flag on a short read timeout, so idle clients cannot hold the
//! server open; the accept thread joins them all before exiting.

use crate::protocol::{parse_request, Request};
use crate::registry::SessionRegistry;
use crate::session::{Ingest, ServiceSession, SessionConfig};
use crate::ServiceError;
use crossbeam::channel::{self, Sender};
use igp_core::session::StepSummary;
use igp_graph::metrics::CutMetrics;
use igp_graph::{io as graph_io, CsrGraph};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Registry lock shards.
    pub shards: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { shards: 16 }
    }
}

/// A running daemon; dropping it shuts the daemon down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_tx: Sender<()>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the server exits (i.e. until some client sends
    /// `SHUTDOWN` or another thread calls shutdown).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting, drain connections, and join the server threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        // Raise the flag directly too, in case the supervisor already
        // consumed its one shutdown message.
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.shutdown_tx.send(());
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (port 0 picks an ephemeral port) and serve until
/// shut down.
pub fn serve<A: ToSocketAddrs>(addr: A, opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(SessionRegistry::new(opts.shards));
    let stop = Arc::new(AtomicBool::new(false));
    let (shutdown_tx, shutdown_rx) = channel::unbounded::<()>();

    let supervisor = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            // Ok: a shutdown was requested. Err: every sender dropped,
            // i.e. the server already exited — nothing to do.
            if shutdown_rx.recv().is_ok() {
                stop.store(true, Ordering::SeqCst);
                // Wake the accept loop with a throwaway connection. A
                // wildcard bind address (0.0.0.0 / [::]) is not a valid
                // connect target on every platform — aim at loopback on
                // the same port instead.
                let mut wake = addr;
                if wake.ip().is_unspecified() {
                    wake.set_ip(match wake.ip() {
                        std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                        std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                    });
                }
                let _ = TcpStream::connect(wake);
            }
        })
    };

    let accept = {
        let stop = stop.clone();
        let tx = shutdown_tx.clone();
        std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Reap finished connection threads so a long-lived
                // daemon doesn't accumulate dead JoinHandles.
                conns.retain(|h| !h.is_finished());
                let Ok(stream) = stream else { continue };
                let registry = registry.clone();
                let stop = stop.clone();
                let tx = tx.clone();
                conns.push(std::thread::spawn(move || {
                    handle_connection(stream, &registry, &stop, &tx);
                }));
            }
            for c in conns {
                let _ = c.join();
            }
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        shutdown_tx,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Longest accepted request line. Generous for DELTA payloads, small
/// enough that a newline-free byte stream cannot balloon the daemon.
const MAX_LINE_BYTES: u64 = 1 << 20;

/// Largest accepted `OPEN` graph upload (METIS text).
const MAX_GRAPH_BYTES: usize = 64 << 20;

/// Read one line, tolerating read timeouts (used to poll `stop`).
/// Returns `None` on EOF, connection error, server stop, or a line
/// exceeding [`MAX_LINE_BYTES`] (the connection cannot be resynced
/// without its newline, so it is dropped).
fn read_line_polling(
    reader: &mut BufReader<TcpStream>,
    stop: &AtomicBool,
    buf: &mut String,
) -> Option<()> {
    buf.clear();
    loop {
        // Bound each read by the line budget left; hitting the budget
        // without a newline means an oversized line.
        let remaining = MAX_LINE_BYTES.saturating_sub(buf.len() as u64);
        if remaining == 0 {
            return None;
        }
        match io::Read::take(io::Read::by_ref(reader), remaining).read_line(buf) {
            Ok(0) => return None,
            Ok(_) => {
                if buf.ends_with('\n') || (buf.len() as u64) < MAX_LINE_BYTES {
                    return Some(()); // full line (or final unterminated line at EOF)
                }
                return None; // budget exhausted mid-line
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Partial data (if any) stays appended in `buf`; keep
                // reading unless the server is stopping.
                if stop.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    registry: &SessionRegistry,
    stop: &AtomicBool,
    shutdown_tx: &Sender<()>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut out = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while read_line_polling(&mut reader, stop, &mut line).is_some() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match parse_request(trimmed) {
            Err(e) => {
                // A malformed OPEN is still followed by the client's
                // graph block: drain through END so the connection stays
                // line-synchronized for the next request.
                if trimmed.split_ascii_whitespace().next() == Some("OPEN")
                    && read_graph_block(&mut reader, stop).is_none()
                {
                    break;
                }
                format!("ERR proto {e}")
            }
            Ok(Request::Ping) => "PONG".to_string(),
            Ok(Request::Open { sid, cfg }) => {
                match read_graph_block(&mut reader, stop) {
                    None => break, // connection died mid-upload
                    Some(text) => open_session(registry, &sid, cfg, &text),
                }
            }
            Ok(Request::Delta { sid, delta }) => {
                with_session(registry, &sid, |s| match s.ingest(&delta) {
                    Ok(Ingest::Queued { pending }) => {
                        format!("OK queued sid={sid} pending={pending}")
                    }
                    Ok(Ingest::Stepped { summary, coalesced }) => {
                        step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                    }
                    Err(e) => err_line(&ServiceError::Delta(e)),
                })
            }
            Ok(Request::Flush { sid }) => with_session(registry, &sid, |s| match s.flush() {
                Some((summary, coalesced)) => {
                    step_line(&sid, &summary, coalesced, s.inner().needs_scratch())
                }
                None => format!("OK noop sid={sid}"),
            }),
            Ok(Request::Stat { sid }) => with_session(registry, &sid, |s| {
                let g = s.inner().graph();
                let m = CutMetrics::compute(g, s.inner().partitioning());
                format!(
                    "OK stat sid={sid} n={} m={} cut={} imbalance={:.6} pending={} \
                     steps={} moved={} scratch={}",
                    g.num_vertices(),
                    g.num_edges(),
                    m.total_cut_edges,
                    m.count_imbalance,
                    s.inner().pending_deltas(),
                    s.steps(),
                    s.inner().total_moved(),
                    u8::from(s.inner().needs_scratch()),
                )
            }),
            Ok(Request::Part { sid }) => with_session(registry, &sid, |s| {
                let assign = s.assignment();
                let mut out = format!("OK part sid={sid} n={}", assign.len());
                for p in assign {
                    out.push(' ');
                    out.push_str(&p.to_string());
                }
                out
            }),
            Ok(Request::Close { sid }) => match registry.close(&sid) {
                Ok(_) => format!("OK closed sid={sid}"),
                Err(e) => err_line(&e),
            },
            Ok(Request::List) => {
                let ids = registry.list();
                let mut out = format!("OK list count={}", ids.len());
                for id in ids {
                    out.push(' ');
                    out.push_str(&id);
                }
                out
            }
            Ok(Request::Shutdown) => {
                let _ = writeln!(out, "OK bye");
                let _ = out.flush();
                let _ = shutdown_tx.send(());
                return;
            }
        };
        if writeln!(out, "{reply}").and_then(|_| out.flush()).is_err() {
            break;
        }
    }
}

/// Read the METIS graph block that follows an `OPEN` line, up to the
/// `END` terminator.
fn read_graph_block(reader: &mut BufReader<TcpStream>, stop: &AtomicBool) -> Option<String> {
    let mut text = String::new();
    let mut line = String::new();
    loop {
        read_line_polling(reader, stop, &mut line)?;
        if line.trim() == "END" {
            return Some(text);
        }
        if text.len() + line.len() > MAX_GRAPH_BYTES {
            return None; // oversized upload: drop the connection
        }
        text.push_str(&line);
    }
}

fn open_session(
    registry: &SessionRegistry,
    sid: &str,
    cfg: SessionConfig,
    metis_text: &str,
) -> String {
    // Cheap existence check before paying for parsing + RSB; the
    // post-construction `registry.open` below stays authoritative for
    // the race where two OPENs on one sid pass this check together.
    if registry.get(sid).is_ok() {
        return err_line(&ServiceError::SessionExists(sid.to_string()));
    }
    let graph: CsrGraph = match graph_io::read_metis(metis_text) {
        Ok(g) => g,
        Err(e) => return err_line(&ServiceError::Graph(e.to_string())),
    };
    if graph.num_vertices() < cfg.parts {
        return err_line(&ServiceError::Graph(format!(
            "{} vertices cannot fill parts={}",
            graph.num_vertices(),
            cfg.parts
        )));
    }
    let parts = cfg.parts;
    let session = ServiceSession::open(graph, cfg);
    let g = session.inner().graph();
    let m = CutMetrics::compute(g, session.inner().partitioning());
    let (n, num_edges) = (g.num_vertices(), g.num_edges());
    let reply = format!(
        "OK open sid={sid} n={n} m={num_edges} parts={parts} cut={} imbalance={:.6}",
        m.total_cut_edges, m.count_imbalance,
    );
    match registry.open(sid, session) {
        Ok(()) => reply,
        Err(e) => err_line(&e),
    }
}

fn with_session<F: FnOnce(&mut ServiceSession) -> String>(
    registry: &SessionRegistry,
    sid: &str,
    f: F,
) -> String {
    match registry.get(sid) {
        Ok(entry) => match entry.lock() {
            Ok(mut session) => f(&mut session),
            // A panic in an earlier request poisoned this session; keep
            // the daemon and the connection alive and tell the client.
            Err(_) => err_line(&ServiceError::Internal(format!(
                "session `{sid}` poisoned by an earlier panic; CLOSE and re-OPEN it"
            ))),
        },
        Err(e) => err_line(&e),
    }
}

fn step_line(sid: &str, s: &StepSummary, coalesced: usize, scratch: bool) -> String {
    format!(
        "OK step sid={sid} step={} coalesced={coalesced} n={} cut={} imbalance={:.6} \
         moved={} stages={} balanced={} scratch={}",
        s.step,
        s.num_vertices,
        s.cut,
        s.imbalance,
        s.moved,
        s.stages,
        u8::from(s.balanced),
        u8::from(scratch),
    )
}

fn err_line(e: &ServiceError) -> String {
    format!("ERR {} {e}", e.kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: shutting down a daemon bound to a wildcard address
    /// must not hang — the accept-loop wake targets loopback, since a
    /// connect to 0.0.0.0 is not valid on every platform.
    #[test]
    fn shutdown_unblocks_wildcard_bind() {
        let mut h = serve("0.0.0.0:0", ServeOptions::default()).expect("bind");
        assert!(h.addr().ip().is_unspecified());
        h.shutdown(); // joins accept + supervisor; must return promptly
    }
}
