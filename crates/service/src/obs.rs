//! Service-layer metrics: per-verb request counts and latency, typed
//! error counts, repartition triggers by policy, queue depth,
//! backpressure rejections, active sessions and wire volume. Registered
//! into the global igp-obs registry (naming per DESIGN.md §10.1); the
//! daemon's `METRICS` verb renders the whole registry, so the
//! store/core/runtime families appear beside these.

use std::sync::{Arc, OnceLock};

use crate::policy::RepartitionPolicy;
use crate::protocol::Request;
use igp_obs::{registry, Counter, Gauge, Histogram};

/// The protocol verbs, in the order [`verb_idx`] assigns; used as the
/// `verb` label value.
pub const VERBS: [&str; 15] = [
    "ping",
    "open",
    "delta",
    "flush",
    "stat",
    "part",
    "close",
    "list",
    "metrics",
    "shutdown",
    "repl-sync",
    "repl-frames",
    "promote",
    "trace",
    "stall",
];

/// Index of a parsed request's verb into the per-verb metric arrays.
pub fn verb_idx(req: &Request) -> usize {
    match req {
        Request::Ping => 0,
        Request::Open { .. } => 1,
        Request::Delta { .. } => 2,
        Request::Flush { .. } => 3,
        Request::Stat { .. } => 4,
        Request::Part { .. } => 5,
        Request::Close { .. } => 6,
        Request::List => 7,
        Request::Metrics => 8,
        Request::Shutdown => 9,
        Request::ReplSync { .. } => 10,
        Request::ReplFrames { .. } => 11,
        Request::Promote => 12,
        Request::TraceDump { .. } | Request::TraceSlow { .. } => 13,
        Request::Stall { .. } => 14,
    }
}

/// Root span names for request traces, parallel to [`VERBS`].
const REQ_SPAN_NAMES: [&str; VERBS.len()] = [
    "req:ping",
    "req:open",
    "req:delta",
    "req:flush",
    "req:stat",
    "req:part",
    "req:close",
    "req:list",
    "req:metrics",
    "req:shutdown",
    "req:repl-sync",
    "req:repl-frames",
    "req:promote",
    "req:trace",
    "req:stall",
];

/// The trace root-span name for a parsed request (`req:<verb>`).
pub fn req_span_name(req: &Request) -> &'static str {
    REQ_SPAN_NAMES[verb_idx(req)]
}

/// The session id a request targets, if any — worker log context.
pub fn request_sid(req: &Request) -> Option<&str> {
    match req {
        Request::Open { sid, .. }
        | Request::Delta { sid, .. }
        | Request::Flush { sid }
        | Request::Stat { sid }
        | Request::Part { sid }
        | Request::Close { sid }
        | Request::ReplSync { sid }
        | Request::ReplFrames { sid, .. } => Some(sid),
        _ => None,
    }
}

/// Wire error kinds (`ERR <kind> …`): every [`crate::ServiceError`]
/// kind plus `proto` for unparseable request lines.
const ERROR_KINDS: [&str; 10] = [
    "proto",
    "unknown-session",
    "session-exists",
    "delta",
    "graph",
    "backpressure",
    "storage",
    "internal",
    "read-only",
    "repl-stale",
];

/// Ops-plane HTTP paths, in the order `ServiceMetrics::http_requests_total`
/// indexes; the final `other` bucket absorbs 404s and unknown paths.
pub const HTTP_PATHS: [&str; 6] = [
    "metrics", "healthz", "readyz", "traces", "sessions", "other",
];

/// All service-layer metric handles; one instance per process.
pub struct ServiceMetrics {
    /// `igp_service_requests_total{verb=…}` — indexed by [`verb_idx`].
    pub requests_total: [Arc<Counter>; VERBS.len()],
    /// `igp_service_request_us{verb=…}` — wall time from parse to reply.
    pub request_us: [Arc<Histogram>; VERBS.len()],
    /// `igp_service_errors_total{kind=…}` — indexed per [`ERROR_KINDS`];
    /// use [`ServiceMetrics::error`] for the by-kind lookup.
    errors_total: [Arc<Counter>; ERROR_KINDS.len()],
    /// `igp_service_repartitions_total{policy=…,trigger=…}` —
    /// `[policy: every|dirt|cost][trigger: policy|flush]`; use
    /// [`ServiceMetrics::repartition_counter`].
    repartitions_total: [[Arc<Counter>; 2]; 3],
    /// `igp_service_queue_depth` — pending deltas after the most recent
    /// `DELTA` (whichever session it hit).
    pub queue_depth: Arc<Gauge>,
    /// `igp_service_backpressure_total` — `DELTA`s rejected at the
    /// queue cap.
    pub backpressure_total: Arc<Counter>,
    /// `igp_service_active_sessions` — open sessions (refreshed on
    /// `METRICS`).
    pub active_sessions: Arc<Gauge>,
    /// `igp_service_bytes_in_total` — request bytes read, graph uploads
    /// included.
    pub bytes_in_total: Arc<Counter>,
    /// `igp_service_bytes_out_total` — reply bytes written.
    pub bytes_out_total: Arc<Counter>,
    /// `igp_service_repl_frames_total{dir="shipped"}` — WAL frames this
    /// primary served to followers over `REPL FRAME`.
    pub repl_frames_shipped_total: Arc<Counter>,
    /// `igp_service_repl_frames_total{dir="applied"}` — WAL frames this
    /// follower decoded and applied through the replay ingest path.
    pub repl_frames_applied_total: Arc<Counter>,
    /// `igp_service_repl_syncs_total{dir="shipped"}` — full `REPL SYNC`
    /// bootstraps served by this primary.
    pub repl_syncs_shipped_total: Arc<Counter>,
    /// `igp_service_repl_syncs_total{dir="applied"}` — full syncs this
    /// follower installed (bootstrap or post-rotation resync).
    pub repl_syncs_applied_total: Arc<Counter>,
    /// `igp_service_repl_lag_bytes` — WAL bytes the follower still had
    /// to fetch at its most recent poll, summed over sessions.
    pub repl_lag_bytes: Arc<Gauge>,
    /// `igp_service_repl_apply_us` — per-frame apply latency on the
    /// follower (decode + ingest/flush through the replay path).
    pub repl_apply_us: Arc<Histogram>,
    /// `igp_service_promotions_total` — follower→primary promotions
    /// (manual `PROMOTE` or heartbeat-timeout failover).
    pub promotions_total: Arc<Counter>,
    /// `igp_service_conns_active` — TCP connections currently registered
    /// with the event loop.
    pub conns_active: Arc<Gauge>,
    /// `igp_service_loop_wakeups_total` — times the event loop returned
    /// from its poll wait (readiness, waker, or timer). A slow client
    /// must cost O(bytes) wakeups, not a busy spin — the slowloris
    /// regression test asserts on this counter.
    pub loop_wakeups_total: Arc<Counter>,
    /// `igp_service_poll_wait_us` — time the loop spent blocked in each
    /// poll wait; the idle-heavy distribution is the proof the loop
    /// sleeps instead of spinning.
    pub poll_wait_us: Arc<Histogram>,
    /// `igp_service_write_backpressure_total` — writes that filled the
    /// socket buffer and left the connection parked on writability.
    pub write_backpressure_total: Arc<Counter>,
    /// `igp_service_loop_iter_us` — time per event-loop iteration
    /// (readiness sweep + completions), excluding the poll wait. The
    /// loop-health gauge traces contextualize: a fat tail here means
    /// inline work is starving the loop.
    pub loop_iter_us: Arc<Histogram>,
    /// `igp_service_pool_queue_wait_us` — dispatch→pickup latency for
    /// worker-pool jobs; the direct measure of pool saturation, and
    /// the same quantity the `queue_wait` trace span shows per request.
    pub pool_queue_wait_us: Arc<Histogram>,
    /// `igp_service_http_requests_total{path=…}` — ops-plane HTTP GETs
    /// served, indexed per [`HTTP_PATHS`]; use
    /// [`ServiceMetrics::http_request`] for the by-path lookup.
    http_requests_total: [Arc<Counter>; HTTP_PATHS.len()],
    /// `igp_service_repl_lag_ms` — milliseconds since this follower was
    /// last fully caught up with its primary (0 while caught up).
    pub repl_lag_ms: Arc<Gauge>,
    /// `igp_service_repl_heartbeat_age_ms` — milliseconds since the
    /// follower's last successful replication tick against the primary.
    pub repl_heartbeat_age_ms: Arc<Gauge>,
    /// `process_start_time_seconds` — Unix time this process started
    /// (Prometheus well-known name; constant after startup).
    pub process_start_time_seconds: Arc<Gauge>,
    /// `process_uptime_seconds` — seconds since process start; refreshed
    /// on every `METRICS` / `/metrics` render.
    pub process_uptime_seconds: Arc<Gauge>,
    /// `igp_build_info{version=…,profile=…}` — constant 1; the labels
    /// carry the build identity.
    pub build_info: Arc<Gauge>,
}

impl ServiceMetrics {
    /// The error counter for a wire kind token (`None` for tokens the
    /// protocol never emits).
    pub fn error(&self, kind: &str) -> Option<&Counter> {
        ERROR_KINDS
            .iter()
            .position(|k| *k == kind)
            .map(|i| &*self.errors_total[i])
    }

    /// The repartition counter for a session's policy and the firing
    /// trigger (`trigger="policy"` for policy-initiated steps,
    /// `trigger="flush"` for explicit `FLUSH`).
    pub fn repartition_counter(
        &self,
        policy: &RepartitionPolicy,
        explicit_flush: bool,
    ) -> &Counter {
        let p = match policy {
            RepartitionPolicy::EveryK(_) => 0,
            RepartitionPolicy::DirtFraction(_) => 1,
            RepartitionPolicy::CostModelDriven(_) => 2,
        };
        &self.repartitions_total[p][usize::from(explicit_flush)]
    }

    /// The HTTP request counter for an ops-plane path token (see
    /// [`HTTP_PATHS`]); unknown tokens land in the `other` bucket.
    pub fn http_request(&self, path: &str) -> &Counter {
        let i = HTTP_PATHS
            .iter()
            .position(|p| *p == path)
            .unwrap_or(HTTP_PATHS.len() - 1);
        &self.http_requests_total[i]
    }
}

/// Monotonic process start instant (first call wins; the daemon calls
/// this at startup so it reflects serve time, not first-metric time).
pub fn process_start() -> std::time::Instant {
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    *START.get_or_init(std::time::Instant::now)
}

/// Whole seconds since [`process_start`].
pub fn uptime_s() -> u64 {
    process_start().elapsed().as_secs()
}

/// Refresh `process_uptime_seconds`; called from every metrics render
/// path (`METRICS` verb and the HTTP `/metrics` endpoint).
pub fn refresh_process_gauges() {
    metrics().process_uptime_seconds.set(uptime_s() as i64);
}

/// The service layer's registered metric handles.
pub fn metrics() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        let policy_names = ["every", "dirt", "cost"];
        let trigger_names = ["policy", "flush"];
        ServiceMetrics {
            requests_total: std::array::from_fn(|i| {
                r.counter(
                    "igp_service_requests_total",
                    "Requests handled, by protocol verb",
                    vec![("verb", VERBS[i].to_string())],
                )
            }),
            request_us: std::array::from_fn(|i| {
                r.histogram(
                    "igp_service_request_us",
                    "Request wall time from parse to reply (microseconds)",
                    vec![("verb", VERBS[i].to_string())],
                )
            }),
            errors_total: std::array::from_fn(|i| {
                r.counter(
                    "igp_service_errors_total",
                    "ERR replies sent, by wire error kind",
                    vec![("kind", ERROR_KINDS[i].to_string())],
                )
            }),
            repartitions_total: std::array::from_fn(|p| {
                std::array::from_fn(|t| {
                    r.counter(
                        "igp_service_repartitions_total",
                        "Repartition steps, by session policy and firing trigger",
                        vec![
                            ("policy", policy_names[p].to_string()),
                            ("trigger", trigger_names[t].to_string()),
                        ],
                    )
                })
            }),
            queue_depth: r.gauge(
                "igp_service_queue_depth",
                "Pending deltas after the most recent DELTA",
                vec![],
            ),
            backpressure_total: r.counter(
                "igp_service_backpressure_total",
                "DELTA requests rejected at the per-session queue cap",
                vec![],
            ),
            active_sessions: r.gauge(
                "igp_service_active_sessions",
                "Sessions currently open in the registry",
                vec![],
            ),
            bytes_in_total: r.counter(
                "igp_service_bytes_in_total",
                "Request bytes read from clients (graph uploads included)",
                vec![],
            ),
            bytes_out_total: r.counter(
                "igp_service_bytes_out_total",
                "Reply bytes written to clients",
                vec![],
            ),
            repl_frames_shipped_total: r.counter(
                "igp_service_repl_frames_total",
                "WAL frames crossing the replication link, by direction",
                vec![("dir", "shipped".to_string())],
            ),
            repl_frames_applied_total: r.counter(
                "igp_service_repl_frames_total",
                "WAL frames crossing the replication link, by direction",
                vec![("dir", "applied".to_string())],
            ),
            repl_syncs_shipped_total: r.counter(
                "igp_service_repl_syncs_total",
                "Full REPL SYNC bootstraps, by direction",
                vec![("dir", "shipped".to_string())],
            ),
            repl_syncs_applied_total: r.counter(
                "igp_service_repl_syncs_total",
                "Full REPL SYNC bootstraps, by direction",
                vec![("dir", "applied".to_string())],
            ),
            repl_lag_bytes: r.gauge(
                "igp_service_repl_lag_bytes",
                "WAL bytes the follower had left to fetch at its last poll",
                vec![],
            ),
            repl_apply_us: r.histogram(
                "igp_service_repl_apply_us",
                "Per-frame apply latency on the follower (microseconds)",
                vec![],
            ),
            promotions_total: r.counter(
                "igp_service_promotions_total",
                "Follower-to-primary promotions (manual or heartbeat failover)",
                vec![],
            ),
            conns_active: r.gauge(
                "igp_service_conns_active",
                "TCP connections currently registered with the event loop",
                vec![],
            ),
            loop_wakeups_total: r.counter(
                "igp_service_loop_wakeups_total",
                "Event-loop poll returns (readiness, waker, or timer)",
                vec![],
            ),
            poll_wait_us: r.histogram(
                "igp_service_poll_wait_us",
                "Time the event loop spent blocked per poll wait (microseconds)",
                vec![],
            ),
            write_backpressure_total: r.counter(
                "igp_service_write_backpressure_total",
                "Writes that filled the socket buffer and parked the connection on writability",
                vec![],
            ),
            loop_iter_us: r.histogram(
                "igp_service_loop_iter_us",
                "Event-loop iteration time, poll wait excluded (microseconds)",
                vec![],
            ),
            pool_queue_wait_us: r.histogram(
                "igp_service_pool_queue_wait_us",
                "Worker-pool job wait from dispatch to pickup (microseconds)",
                vec![],
            ),
            http_requests_total: std::array::from_fn(|i| {
                r.counter(
                    "igp_service_http_requests_total",
                    "Ops-plane HTTP GET requests served, by path",
                    vec![("path", HTTP_PATHS[i].to_string())],
                )
            }),
            repl_lag_ms: r.gauge(
                "igp_service_repl_lag_ms",
                "Milliseconds since the follower was last fully caught up (0 while caught up)",
                vec![],
            ),
            repl_heartbeat_age_ms: r.gauge(
                "igp_service_repl_heartbeat_age_ms",
                "Milliseconds since the follower's last successful replication tick",
                vec![],
            ),
            process_start_time_seconds: {
                let g = r.gauge(
                    "process_start_time_seconds",
                    "Unix time the process started, in seconds",
                    vec![],
                );
                let started = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| {
                        d.as_secs()
                            .saturating_sub(process_start().elapsed().as_secs())
                    })
                    .unwrap_or(0);
                g.set(started as i64);
                g
            },
            process_uptime_seconds: r.gauge(
                "process_uptime_seconds",
                "Seconds since the process started",
                vec![],
            ),
            build_info: {
                let g = r.gauge(
                    "igp_build_info",
                    "Build identity (constant 1; labels carry version and profile)",
                    vec![
                        ("version", env!("CARGO_PKG_VERSION").to_string()),
                        (
                            "profile",
                            if cfg!(debug_assertions) {
                                "debug"
                            } else {
                                "release"
                            }
                            .to_string(),
                        ),
                    ],
                );
                g.set(1);
                g
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verb_table_matches_request_enum() {
        let reqs = [
            Request::Ping,
            Request::List,
            Request::Metrics,
            Request::Shutdown,
            Request::Flush { sid: "s".into() },
        ];
        for req in &reqs {
            let i = verb_idx(req);
            assert!(i < VERBS.len());
        }
        assert_eq!(VERBS[verb_idx(&Request::Metrics)], "metrics");
        assert_eq!(VERBS[verb_idx(&Request::Ping)], "ping");
    }

    #[test]
    fn error_kind_lookup_covers_service_errors() {
        let m = metrics();
        for e in [
            crate::ServiceError::UnknownSession("x".into()),
            crate::ServiceError::SessionExists("x".into()),
            crate::ServiceError::Graph("g".into()),
            crate::ServiceError::Backpressure {
                sid: "x".into(),
                pending: 1,
                cap: 1,
            },
            crate::ServiceError::Storage("s".into()),
            crate::ServiceError::Internal("i".into()),
            crate::ServiceError::ReadOnly,
            crate::ServiceError::ReplStale {
                sid: "x".into(),
                seq: 1,
            },
        ] {
            assert!(m.error(e.kind()).is_some(), "{}", e.kind());
        }
        assert!(m.error("proto").is_some());
        assert!(m.error("not-a-kind").is_none());
    }

    #[test]
    fn http_path_lookup_and_process_gauges() {
        let m = metrics();
        let before = m.http_request("other").get();
        m.http_request("metrics").inc();
        m.http_request("not-a-path").inc();
        assert_eq!(m.http_request("other").get(), before + 1);
        refresh_process_gauges();
        assert_eq!(m.build_info.get(), 1);
        assert!(m.process_start_time_seconds.get() > 0);
        assert_eq!(
            VERBS[verb_idx(&Request::Stall {
                target: crate::protocol::StallTarget::Loop,
                ms: 1,
            })],
            "stall"
        );
    }
}
