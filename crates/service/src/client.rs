//! Client side of the line protocol: typed requests/acks over a
//! [`TcpStream`], used by `igp-cli`, the end-to-end tests and the
//! throughput bench.

use crate::protocol::{
    check_wire_representable, decode_hex_into, encode_delta_fields, encode_open_opts, kv_get,
    parse_kv,
};
use crate::session::SessionConfig;
use igp_graph::{io as graph_io, CsrGraph, GraphDelta, PartId};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport, server-reported, or malformed reply.
#[derive(Debug)]
pub enum ClientError {
    /// Transport error.
    Io(io::Error),
    /// The server answered `ERR <kind> <detail>`.
    Server {
        /// Error kind token (e.g. `unknown-session`, `delta`).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The reply did not match the protocol.
    Proto(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server { kind, detail } => write!(f, "server: {kind}: {detail}"),
            ClientError::Proto(m) => write!(f, "bad reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One repartition step as reported on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct StepInfo {
    pub step: usize,
    pub coalesced: usize,
    pub n: usize,
    pub cut: u64,
    pub imbalance: f64,
    pub moved: u64,
    pub stages: usize,
    pub balanced: bool,
    pub scratch: bool,
}

/// Ack for a `DELTA` request.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaAck {
    /// Queued; the policy did not fire (`pending` deltas waiting).
    Queued { pending: usize },
    /// The policy fired and the batch was applied.
    Stepped(StepInfo),
}

/// Ack for an `OPEN` request.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenAck {
    pub n: usize,
    pub m: usize,
    pub cut: u64,
    pub imbalance: f64,
}

/// Session statistics from `STAT`. The `wal_*`/`snap_*` fields are
/// reported only by sessions running in `--data-dir` (durable) mode;
/// `None` means the session is memory-only.
#[derive(Clone, Debug, PartialEq)]
pub struct StatInfo {
    pub n: usize,
    pub m: usize,
    pub cut: u64,
    pub imbalance: f64,
    pub pending: usize,
    pub steps: usize,
    pub moved: u64,
    pub scratch: bool,
    /// Records in the current WAL tail (durable sessions only).
    pub wal_records: Option<u64>,
    /// Bytes in the current WAL tail (durable sessions only).
    pub wal_bytes: Option<u64>,
    /// Current snapshot sequence number (durable sessions only).
    pub snap_seq: Option<u64>,
    /// Snapshots written by the serving process (durable sessions only).
    pub snapshots: Option<u64>,
    /// p50 repartition wall time in µs (absent until the first step).
    pub repart_p50_us: Option<u64>,
    /// p99 repartition wall time in µs (absent until the first step).
    pub repart_p99_us: Option<u64>,
    /// Max repartition wall time in µs (absent until the first step).
    pub repart_max_us: Option<u64>,
    /// The daemon's role (`primary` or `follower`); absent when talking
    /// to a pre-replication daemon.
    pub role: Option<String>,
    /// Daemon uptime in whole seconds; absent on pre-ops-plane daemons.
    pub uptime_s: Option<u64>,
    /// Follower only: milliseconds since last fully caught up with the
    /// primary (0 while caught up).
    pub repl_lag_ms: Option<u64>,
    /// Follower only: milliseconds since the last successful
    /// replication tick (absent before the first one).
    pub repl_heartbeat_age_ms: Option<u64>,
}

/// A session's full durable state as shipped by `REPL SYNC`: the raw
/// bytes of its meta, current snapshot and current WAL files. Installed
/// verbatim on the follower and rehydrated through the crash-recovery
/// path.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplSyncInfo {
    /// Snapshot/WAL sequence the shipped pair carries.
    pub seq: u64,
    /// WAL byte length at ship time — the follower's starting cursor.
    pub wal_end: u64,
    /// Raw `meta` file bytes.
    pub meta: Vec<u8>,
    /// Raw `snap-<seq>.snap` file bytes.
    pub snapshot: Vec<u8>,
    /// Raw `wal-<seq>.log` file bytes (header included).
    pub wal: Vec<u8>,
}

/// A batch of raw WAL frames shipped by `REPL FRAME`.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplFrameBatch {
    /// The WAL sequence the frames extend.
    pub seq: u64,
    /// Byte offset the batch starts at (the requested cursor).
    pub from: u64,
    /// Byte offset just past the batch — the follower's next cursor.
    pub to: u64,
    /// Number of complete frames in `bytes`.
    pub frames: u64,
    /// Raw frame bytes (`to - from` of them; decode with
    /// [`igp_store::decode_frames`]).
    pub bytes: Vec<u8>,
    /// Trace id of the primary request that served this batch; the
    /// follower adopts it so its frame-apply spans join the primary's
    /// trace. Absent when the primary traces nothing.
    pub trace: Option<u64>,
}

/// A connected protocol client.
pub struct IgpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl IgpClient {
    /// Connect to a daemon.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(IgpClient {
            reader,
            writer: stream,
        })
    }

    fn send(&mut self, line: &str) -> Result<(), ClientError> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Proto("connection closed".into()));
        }
        Ok(line.trim().to_string())
    }

    /// Send one request line and return the reply tokens after checking
    /// the `OK <tag>` prefix (or propagating an `ERR`).
    fn roundtrip_ok(&mut self, line: &str, tag: &str) -> Result<Vec<String>, ClientError> {
        self.send(line)?;
        let reply = self.recv()?;
        let tokens: Vec<&str> = reply.split_ascii_whitespace().collect();
        match tokens.as_slice() {
            ["ERR", kind, detail @ ..] => Err(ClientError::Server {
                kind: kind.to_string(),
                detail: detail.join(" "),
            }),
            ["OK", t, rest @ ..] if *t == tag => Ok(rest.iter().map(|s| s.to_string()).collect()),
            _ => Err(ClientError::Proto(format!(
                "expected `OK {tag}`, got `{reply}`"
            ))),
        }
    }

    /// `PING` → `PONG`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send("PING")?;
        match self.recv()?.as_str() {
            "PONG" => Ok(()),
            other => Err(ClientError::Proto(format!("expected PONG, got `{other}`"))),
        }
    }

    /// Open a session: uploads `graph` in METIS format.
    ///
    /// Fails without sending anything if `cfg` cannot be expressed
    /// exactly by the wire grammar (e.g. custom cost-model constants) —
    /// otherwise the daemon's session would silently diverge from an
    /// in-process replay of the same config.
    pub fn open(
        &mut self,
        sid: &str,
        graph: &CsrGraph,
        cfg: &SessionConfig,
    ) -> Result<OpenAck, ClientError> {
        check_wire_representable(cfg).map_err(ClientError::Proto)?;
        let mut block = format!("OPEN {sid} {}\n", encode_open_opts(cfg));
        block.push_str(&graph_io::write_metis(graph));
        if !block.ends_with('\n') {
            block.push('\n');
        }
        block.push_str("END");
        let rest = self.roundtrip_ok(&block, "open")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        Ok(OpenAck {
            n: field(&kv, "n")?,
            m: field(&kv, "m")?,
            cut: field(&kv, "cut")?,
            imbalance: field(&kv, "imbalance")?,
        })
    }

    /// Stream one delta into a session.
    pub fn delta(&mut self, sid: &str, delta: &GraphDelta) -> Result<DeltaAck, ClientError> {
        let fields = encode_delta_fields(delta);
        let line = if fields.is_empty() {
            format!("DELTA {sid}")
        } else {
            format!("DELTA {sid} {fields}")
        };
        self.send(&line)?;
        let reply = self.recv()?;
        let tokens: Vec<&str> = reply.split_ascii_whitespace().collect();
        match tokens.as_slice() {
            ["ERR", kind, detail @ ..] => Err(ClientError::Server {
                kind: kind.to_string(),
                detail: detail.join(" "),
            }),
            ["OK", "queued", rest @ ..] => {
                let kv = parse_kv(rest).map_err(ClientError::Proto)?;
                Ok(DeltaAck::Queued {
                    pending: field(&kv, "pending")?,
                })
            }
            ["OK", "step", rest @ ..] => Ok(DeltaAck::Stepped(parse_step(rest)?)),
            _ => Err(ClientError::Proto(format!("unexpected reply `{reply}`"))),
        }
    }

    /// Force a repartition; `None` if nothing was pending.
    pub fn flush(&mut self, sid: &str) -> Result<Option<StepInfo>, ClientError> {
        self.send(&format!("FLUSH {sid}"))?;
        let reply = self.recv()?;
        let tokens: Vec<&str> = reply.split_ascii_whitespace().collect();
        match tokens.as_slice() {
            ["ERR", kind, detail @ ..] => Err(ClientError::Server {
                kind: kind.to_string(),
                detail: detail.join(" "),
            }),
            ["OK", "noop", ..] => Ok(None),
            ["OK", "step", rest @ ..] => Ok(Some(parse_step(rest)?)),
            _ => Err(ClientError::Proto(format!("unexpected reply `{reply}`"))),
        }
    }

    /// Session statistics.
    pub fn stat(&mut self, sid: &str) -> Result<StatInfo, ClientError> {
        let rest = self.roundtrip_ok(&format!("STAT {sid}"), "stat")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        Ok(StatInfo {
            n: field(&kv, "n")?,
            m: field(&kv, "m")?,
            cut: field(&kv, "cut")?,
            imbalance: field(&kv, "imbalance")?,
            pending: field(&kv, "pending")?,
            steps: field(&kv, "steps")?,
            moved: field(&kv, "moved")?,
            scratch: field::<u8>(&kv, "scratch")? != 0,
            wal_records: field_opt(&kv, "wal_records")?,
            wal_bytes: field_opt(&kv, "wal_bytes")?,
            snap_seq: field_opt(&kv, "snap_seq")?,
            snapshots: field_opt(&kv, "snapshots")?,
            repart_p50_us: field_opt(&kv, "repart_p50_us")?,
            repart_p99_us: field_opt(&kv, "repart_p99_us")?,
            repart_max_us: field_opt(&kv, "repart_max_us")?,
            role: kv.iter().find(|(k, _)| k == "role").map(|(_, v)| v.clone()),
            uptime_s: field_opt(&kv, "uptime_s")?,
            repl_lag_ms: field_opt(&kv, "repl_lag_ms")?,
            repl_heartbeat_age_ms: field_opt(&kv, "repl_heartbeat_age_ms")?,
        })
    }

    /// `METRICS` → the daemon's Prometheus-style text exposition
    /// (service, store, core and runtime families).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.send("METRICS")?;
        let first = self.recv()?;
        let tokens: Vec<&str> = first.split_ascii_whitespace().collect();
        match tokens.as_slice() {
            ["ERR", kind, detail @ ..] => {
                return Err(ClientError::Server {
                    kind: kind.to_string(),
                    detail: detail.join(" "),
                })
            }
            ["OK", "metrics"] => {}
            _ => {
                return Err(ClientError::Proto(format!(
                    "expected `OK metrics`, got `{first}`"
                )))
            }
        }
        self.read_text_until_end()
    }

    /// `TRACE DUMP [n]` → the rendered span trees of the daemon's `n`
    /// most recently completed traces (daemon default when `None`).
    pub fn trace_dump(&mut self, n: Option<usize>) -> Result<String, ClientError> {
        let line = match n {
            Some(n) => format!("TRACE DUMP {n}"),
            None => "TRACE DUMP".to_string(),
        };
        self.send(&line)?;
        let first = self.recv()?;
        match first.as_str() {
            "OK trace" => {}
            _ => {
                let tokens: Vec<&str> = first.split_ascii_whitespace().collect();
                if let ["ERR", kind, detail @ ..] = tokens.as_slice() {
                    return Err(ClientError::Server {
                        kind: kind.to_string(),
                        detail: detail.join(" "),
                    });
                }
                return Err(ClientError::Proto(format!(
                    "expected `OK trace`, got `{first}`"
                )));
            }
        }
        self.read_text_until_end()
    }

    /// `TRACE SLOW <threshold_us>` — set the daemon's slow-request
    /// threshold (0 disables the slow log). Returns the value the
    /// daemon acknowledged.
    pub fn trace_slow(&mut self, threshold_us: u64) -> Result<u64, ClientError> {
        let rest = self.roundtrip_ok(&format!("TRACE SLOW {threshold_us}"), "trace")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        field(&kv, "slow_us")
    }

    /// Read the raw-text body of a multi-line reply up to (and
    /// consuming) its `END` terminator.
    fn read_text_until_end(&mut self) -> Result<String, ClientError> {
        let mut text = String::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Proto(
                    "connection closed mid-exposition".into(),
                ));
            }
            if line.trim_end() == "END" {
                return Ok(text);
            }
            text.push_str(&line);
        }
    }

    /// The session's full assignment (vertex → partition).
    pub fn partition(&mut self, sid: &str) -> Result<Vec<PartId>, ClientError> {
        let rest = self.roundtrip_ok(&format!("PART {sid}"), "part")?;
        // Layout: sid=<sid> n=<n> <p0> <p1> …
        let mut iter = rest.iter();
        let mut n: Option<usize> = None;
        let mut assign: Vec<PartId> = Vec::new();
        for tok in iter.by_ref() {
            if let Some((k, v)) = tok.split_once('=') {
                if k == "n" {
                    n = Some(
                        v.parse()
                            .map_err(|e| ClientError::Proto(format!("bad n: {e}")))?,
                    );
                }
            } else {
                assign.push(
                    tok.parse()
                        .map_err(|e| ClientError::Proto(format!("bad part id: {e}")))?,
                );
            }
        }
        let n = n.ok_or_else(|| ClientError::Proto("missing n".into()))?;
        if assign.len() != n {
            return Err(ClientError::Proto(format!(
                "expected {n} part ids, got {}",
                assign.len()
            )));
        }
        Ok(assign)
    }

    /// Close (unregister) a session.
    pub fn close(&mut self, sid: &str) -> Result<(), ClientError> {
        self.roundtrip_ok(&format!("CLOSE {sid}"), "closed")
            .map(|_| ())
    }

    /// List open session ids.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        let rest = self.roundtrip_ok("LIST", "list")?;
        Ok(rest.into_iter().filter(|t| !t.contains('=')).collect())
    }

    /// Set a read timeout on the underlying socket. The follower's
    /// replication loop uses this so a frozen (but not dead) primary
    /// cannot wedge it past the heartbeat window.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// `REPL SYNC` — fetch a session's full durable state for follower
    /// bootstrap (or post-rotation resync).
    pub fn repl_sync(&mut self, sid: &str) -> Result<ReplSyncInfo, ClientError> {
        let rest = self.roundtrip_ok(&format!("REPL SYNC {sid}"), "replsync")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        let seq = field(&kv, "seq")?;
        let wal_end = field(&kv, "wal_end")?;
        let meta_bytes: usize = field(&kv, "meta_bytes")?;
        let snap_bytes: usize = field(&kv, "snap_bytes")?;
        let wal_bytes: usize = field(&kv, "wal_bytes")?;
        let meta = self.read_hex_block(meta_bytes)?;
        let snapshot = self.read_hex_block(snap_bytes)?;
        let wal = self.read_hex_block(wal_bytes)?;
        self.expect_end()?;
        Ok(ReplSyncInfo {
            seq,
            wal_end,
            meta,
            snapshot,
            wal,
        })
    }

    /// `REPL FRAME` — fetch the raw WAL frames in `[offset, wal_end)`
    /// of log `seq`. Answers `ERR repl-stale` (as
    /// [`ClientError::Server`] with kind `repl-stale`) once the primary
    /// has rotated past `seq`; the follower then re-syncs.
    pub fn repl_frames(
        &mut self,
        sid: &str,
        seq: u64,
        offset: u64,
    ) -> Result<ReplFrameBatch, ClientError> {
        let rest = self.roundtrip_ok(&format!("REPL FRAME {sid} {seq} {offset}"), "replframes")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        let nbytes: usize = field(&kv, "bytes")?;
        let batch = ReplFrameBatch {
            seq: field(&kv, "seq")?,
            from: field(&kv, "from")?,
            to: field(&kv, "to")?,
            frames: field(&kv, "frames")?,
            trace: field_opt(&kv, "trace")?,
            bytes: self.read_hex_block(nbytes)?,
        };
        self.expect_end()?;
        Ok(batch)
    }

    /// `PROMOTE` — flip a follower to primary. Returns whether the
    /// daemon had actually been a follower (`false`: it was already
    /// primary; the call is idempotent).
    pub fn promote(&mut self) -> Result<bool, ClientError> {
        let rest = self.roundtrip_ok("PROMOTE", "promoted")?;
        let kv = parse_kv(&to_strs(&rest)).map_err(ClientError::Proto)?;
        Ok(field::<u8>(&kv, "was_follower")? != 0)
    }

    /// Read `nbytes` of hex-encoded payload (the multi-line body of a
    /// `REPL` reply).
    fn read_hex_block(&mut self, nbytes: usize) -> Result<Vec<u8>, ClientError> {
        let mut out = Vec::with_capacity(nbytes);
        while out.len() < nbytes {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Proto("connection closed mid-payload".into()));
            }
            decode_hex_into(&line, &mut out).map_err(ClientError::Proto)?;
        }
        if out.len() != nbytes {
            return Err(ClientError::Proto(format!(
                "payload overrun: expected {nbytes} bytes, got {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Consume the `END` line terminating a multi-line reply.
    fn expect_end(&mut self) -> Result<(), ClientError> {
        let line = self.recv()?;
        if line == "END" {
            Ok(())
        } else {
            Err(ClientError::Proto(format!("expected END, got `{line}`")))
        }
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send("SHUTDOWN")?;
        match self.recv()?.as_str() {
            "OK bye" => Ok(()),
            other => Err(ClientError::Proto(format!("expected bye, got `{other}`"))),
        }
    }
}

/// One blocking `GET` against a daemon's ops-plane HTTP listener
/// (`--http`); returns the status code and the response body. A
/// deliberately minimal HTTP/1.0 client — enough for `igp-cli health`,
/// the test suite and CI smoke scripts, with a read timeout so a hung
/// daemon cannot wedge the caller.
pub fn http_get<A: ToSocketAddrs>(
    addr: A,
    path: &str,
    timeout: std::time::Duration,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").as_bytes())?;
    let mut raw = Vec::new();
    {
        use io::Read;
        stream.read_to_end(&mut raw)?;
    }
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some(t) => t,
        None => text
            .split_once("\n\n")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP head/body split"))?,
    };
    let status = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no HTTP status code"))?;
    Ok((status, body.to_string()))
}

fn to_strs(v: &[String]) -> Vec<&str> {
    v.iter().map(|s| s.as_str()).collect()
}

fn field<T: std::str::FromStr>(kv: &[(String, String)], key: &str) -> Result<T, ClientError>
where
    T::Err: fmt::Display,
{
    let raw = kv_get(kv, key).map_err(ClientError::Proto)?;
    raw.parse()
        .map_err(|e| ClientError::Proto(format!("bad {key}: {e}")))
}

/// Like [`field`], but an absent key is `None` (a present-but-garbled
/// value is still an error).
fn field_opt<T: std::str::FromStr>(
    kv: &[(String, String)],
    key: &str,
) -> Result<Option<T>, ClientError>
where
    T::Err: fmt::Display,
{
    match kv.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, raw)) => raw
            .parse()
            .map(Some)
            .map_err(|e| ClientError::Proto(format!("bad {key}: {e}"))),
    }
}

fn parse_step(tokens: &[&str]) -> Result<StepInfo, ClientError> {
    let kv = parse_kv(tokens).map_err(ClientError::Proto)?;
    Ok(StepInfo {
        step: field(&kv, "step")?,
        coalesced: field(&kv, "coalesced")?,
        n: field(&kv, "n")?,
        cut: field(&kv, "cut")?,
        imbalance: field(&kv, "imbalance")?,
        moved: field(&kv, "moved")?,
        stages: field(&kv, "stages")?,
        balanced: field::<u8>(&kv, "balanced")? != 0,
        scratch: field::<u8>(&kv, "scratch")? != 0,
    })
}
