//! The per-session store: one directory holding a meta file, the
//! latest snapshot and the WAL extending it.
//!
//! ```text
//! <dir>/meta            text: format version · sid · config line
//! <dir>/snap-<seq>.snap latest snapshot (see `snapshot`)
//! <dir>/wal-<seq>.log   records appended since snapshot <seq>
//! ```
//!
//! Rotation protocol (crash-safe at every step): write
//! `snap-<seq+1>.tmp` → fsync → rename to `.snap` → create
//! `wal-<seq+1>.log` → delete the previous pair. Recovery picks the
//! highest *valid* snapshot, ignores stale files from interrupted
//! rotations, and replays whatever WAL tail it finds (an absent tail
//! file — crash between rename and WAL creation — is an empty tail).

use crate::policy::{SnapshotPolicy, SnapshotView};
use crate::snapshot::{fsync_dir, read_snapshot, write_snapshot, SnapshotData};
use crate::wal::{read_wal, WalRecord, WalWriter, HEADER_BYTES};
use crate::StoreError;
use igp_graph::coalesce::DeltaCoalescer;
use igp_graph::{CsrGraph, DirtStats, GraphDelta, NodeId, Partitioning};
use std::io::Write;
use std::path::{Path, PathBuf};

const META_VERSION: u32 = 1;

/// Identity of a stored session: who it is and how to reconstruct its
/// configuration. The config line is opaque to this crate — the serving
/// layer writes its wire `OPEN` option grammar there and parses it back
/// at recovery, which is what guarantees a recovered session runs under
/// exactly the configuration the original acked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreMeta {
    /// Session id (the directory is normally named after it).
    pub sid: String,
    /// Opaque configuration line (no newlines).
    pub config_line: String,
}

/// A live session's persistable state, borrowed at journaling and
/// snapshot points.
#[derive(Clone, Copy, Debug)]
pub struct SessionState<'a> {
    /// Current graph.
    pub graph: &'a CsrGraph,
    /// Current partitioning.
    pub part: &'a Partitioning,
    /// Birth-graph id per current vertex.
    pub base_of_current: &'a [NodeId],
    /// Steps taken so far.
    pub steps: u64,
    /// Total vertices moved so far.
    pub total_moved: u64,
    /// Deltas accepted so far.
    pub deltas_received: u64,
    /// The from-scratch signal.
    pub needs_scratch: bool,
}

impl SessionState<'_> {
    fn to_snapshot(self, seq: u64, lineage: GraphDelta, compacted_records: u64) -> SnapshotData {
        SnapshotData {
            seq,
            steps: self.steps,
            total_moved: self.total_moved,
            deltas_received: self.deltas_received,
            needs_scratch: self.needs_scratch,
            graph: self.graph.clone(),
            part: self.part.clone(),
            base_of_current: self.base_of_current.to_vec(),
            lineage,
            compacted_records,
        }
    }
}

/// Everything [`SessionStore::recover`] reconstructs from disk.
#[derive(Debug)]
pub struct Recovered {
    /// Session identity + config line.
    pub meta: StoreMeta,
    /// The snapshot recovery starts from.
    pub snapshot: SnapshotData,
    /// Intact WAL records to replay on top of the snapshot, in order.
    pub tail: Vec<WalRecord>,
    /// Why trailing log bytes were dropped, if any were (the file has
    /// already been truncated back to the intact prefix).
    pub dropped_tail: Option<String>,
    /// The store, reopened for appending.
    pub store: SessionStore,
}

/// Read-only summary of a stored session (the `igp-cli replay`
/// inspector); never mutates the directory.
#[derive(Debug)]
pub struct Inspection {
    /// Session identity + config line.
    pub meta: StoreMeta,
    /// The snapshot recovery would start from.
    pub snapshot: SnapshotData,
    /// Intact delta records in the tail.
    pub tail_deltas: usize,
    /// Intact flush markers in the tail.
    pub tail_flushes: usize,
    /// Tail size on disk (bytes, header included).
    pub tail_bytes: u64,
    /// The tail's deltas folded into one canonical edit.
    pub tail_net: GraphDelta,
    /// Net edit-size statistics of the folded tail.
    pub tail_dirt: DirtStats,
    /// Why trailing bytes are unusable, if any are.
    pub corruption: Option<String>,
    /// Benign observation (e.g. an interrupted rotation recovery will
    /// repair); never set for states that lose data.
    pub note: Option<String>,
}

/// The on-disk half of one durable session.
#[derive(Debug)]
pub struct SessionStore {
    dir: PathBuf,
    meta: StoreMeta,
    policy: SnapshotPolicy,
    wal: WalWriter,
    /// Folds the tail incrementally so snapshot-time compaction is one
    /// `net()` call, not a re-read of the log.
    co: DeltaCoalescer,
    seq: u64,
    snapshots_written: u64,
    ops_since_snap: u64,
    steps_at_snap: u64,
}

fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq}.snap"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq}.log"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta")
}

fn edit_ops(d: &GraphDelta) -> u64 {
    (d.add_vertices.len() + d.remove_vertices.len() + d.add_edges.len() + d.remove_edges.len())
        as u64
}

fn write_meta(dir: &Path, meta: &StoreMeta) -> Result<(), StoreError> {
    if meta.sid.contains(char::is_whitespace) || meta.config_line.contains('\n') {
        return Err(StoreError::Corrupt {
            what: "meta".into(),
            reason: "sid/config not single-line".into(),
        });
    }
    let text = format!(
        "igp-store {META_VERSION}\nsid {}\nconfig {}\n",
        meta.sid, meta.config_line
    );
    std::fs::write(meta_path(dir), text)?;
    Ok(())
}

fn read_meta(dir: &Path) -> Result<StoreMeta, StoreError> {
    let path = meta_path(dir);
    // Only an absent file means "not a session dir". Any other I/O
    // failure (EACCES, EIO, ...) on a file that may well exist must
    // abort recovery loudly — mapping it to `Missing` would let boot
    // silently skip a live session over a transient error.
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::Missing(format!(
                "{} (not a session dir?)",
                path.display()
            )))
        }
        Err(e) => return Err(StoreError::Io(e)),
    };
    let corrupt = |reason: &str| StoreError::Corrupt {
        what: path.display().to_string(),
        reason: reason.to_string(),
    };
    let mut lines = text.lines();
    match lines.next().and_then(|l| l.strip_prefix("igp-store ")) {
        Some(v) if v.trim() == META_VERSION.to_string() => {}
        Some(_) => return Err(corrupt("unsupported meta version")),
        None => return Err(corrupt("missing `igp-store <version>` header")),
    }
    let sid = lines
        .next()
        .and_then(|l| l.strip_prefix("sid "))
        .ok_or_else(|| corrupt("missing `sid` line"))?
        .to_string();
    let config_line = lines
        .next()
        .and_then(|l| l.strip_prefix("config "))
        .ok_or_else(|| corrupt("missing `config` line"))?
        .to_string();
    Ok(StoreMeta { sid, config_line })
}

/// Highest-seq valid snapshot in `dir`, trying lower sequences if the
/// newest file is unreadable (e.g. bit rot), plus warnings for every
/// file skipped on the way.
fn latest_snapshot(dir: &Path) -> Result<(SnapshotData, Vec<String>), StoreError> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push(seq);
        }
    }
    if seqs.is_empty() {
        return Err(StoreError::Missing(format!(
            "no snapshot in {}",
            dir.display()
        )));
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut warnings = Vec::new();
    for &seq in &seqs {
        match read_snapshot(&snap_path(dir, seq)) {
            Ok(snap) if snap.seq == seq => return Ok((snap, warnings)),
            Ok(snap) => warnings.push(format!(
                "snap-{seq}.snap carries wrong seq {}; skipped",
                snap.seq
            )),
            Err(e) => warnings.push(format!("snap-{seq}.snap unreadable: {e}; skipped")),
        }
    }
    Err(StoreError::Corrupt {
        what: dir.display().to_string(),
        reason: format!("no readable snapshot among {} candidates", seqs.len()),
    })
}

impl SessionStore {
    /// Create a fresh store for a just-opened session: wipes any stale
    /// directory, writes `meta` and snapshot 0 from `state`, and opens
    /// an empty WAL.
    pub fn create(
        dir: &Path,
        meta: StoreMeta,
        policy: SnapshotPolicy,
        state: SessionState<'_>,
    ) -> Result<Self, StoreError> {
        if dir.exists() {
            std::fs::remove_dir_all(dir)?;
        }
        std::fs::create_dir_all(dir)?;
        write_meta(dir, &meta)?;
        write_snapshot(
            &snap_path(dir, 0),
            &state.to_snapshot(0, GraphDelta::default(), 0),
        )?;
        let wal = WalWriter::create(&wal_path(dir, 0), 0)?;
        // Make the directory entries of the initial meta/snap/wal trio
        // durable before the first ack can be issued against them.
        fsync_dir(dir)?;
        Ok(SessionStore {
            dir: dir.to_path_buf(),
            meta,
            policy,
            wal,
            co: DeltaCoalescer::new(state.graph.num_vertices()),
            seq: 0,
            snapshots_written: 1,
            ops_since_snap: 0,
            steps_at_snap: state.steps,
        })
    }

    /// Journal one accepted delta (append to the WAL *and* fold into
    /// the tail compactor). Called after the session accepted the delta
    /// and before the client is acked.
    pub fn journal_delta(&mut self, d: &GraphDelta) -> Result<(), StoreError> {
        // The session validated this delta against the same virtual
        // graph the compactor mirrors, so a push failure means the
        // store has diverged — surface it, don't panic.
        self.co.push(d).map_err(|e| StoreError::Corrupt {
            what: "tail compactor".into(),
            reason: e.to_string(),
        })?;
        self.wal.append_delta(d)?;
        self.ops_since_snap += edit_ops(d);
        Ok(())
    }

    /// Journal an explicit client-requested flush.
    pub fn journal_flush(&mut self) -> Result<(), StoreError> {
        self.wal.append(&WalRecord::Flush)?;
        Ok(())
    }

    /// Evaluate the snapshot policy against `state` (call at step
    /// boundaries, where the session queue is empty); writes and
    /// rotates if it fires. Returns whether a snapshot was written.
    pub fn maybe_snapshot(&mut self, state: SessionState<'_>) -> Result<bool, StoreError> {
        let view = SnapshotView {
            n_current: state.graph.num_vertices(),
            records_since_snap: self.wal.records(),
            flushes_since_snap: state.steps.saturating_sub(self.steps_at_snap),
            ops_since_snap: self.ops_since_snap,
        };
        if !self.policy.should_snapshot(&view) {
            return Ok(false);
        }
        self.snapshot_now(state)?;
        Ok(true)
    }

    /// Unconditionally fold the WAL tail into a new snapshot and rotate
    /// the log. The tail (`compacted_records` frames) is replaced by
    /// its [`DeltaCoalescer::net`] — one canonical delta recorded as
    /// the snapshot's lineage.
    pub fn snapshot_now(&mut self, state: SessionState<'_>) -> Result<(), StoreError> {
        let _sp = igp_obs::trace::Span::ambient("snapshot");
        let m = crate::obs::metrics();
        let cell = crate::obs::health_cell();
        cell.busy();
        let written = m.snapshot_us.time(|| -> Result<(), StoreError> {
            let next = self.seq + 1;
            let lineage = self.co.net();
            let compacted = self.wal.records();
            write_snapshot(
                &snap_path(&self.dir, next),
                &state.to_snapshot(next, lineage, compacted),
            )?;
            self.wal = WalWriter::create(&wal_path(&self.dir, next), next)?;
            // Persist the new WAL's directory entry before touching the
            // old pair: only once the (snap, wal) pair at `next` is
            // fully durable may its predecessor start to disappear.
            fsync_dir(&self.dir)?;
            // Best-effort cleanup; stale files are ignored by recovery.
            let _ = std::fs::remove_file(snap_path(&self.dir, self.seq));
            let _ = std::fs::remove_file(wal_path(&self.dir, self.seq));
            self.seq = next;
            self.snapshots_written += 1;
            self.co = DeltaCoalescer::new(state.graph.num_vertices());
            self.ops_since_snap = 0;
            self.steps_at_snap = state.steps;
            Ok(())
        });
        cell.idle();
        if written.is_err() {
            cell.note_failure(crate::obs::STORE_FAIL_HOLD);
        }
        written?;
        m.snapshots_total.inc();
        Ok(())
    }

    /// Recover a session directory: latest valid snapshot + intact WAL
    /// tail, with any corrupt trailing bytes reported and truncated
    /// away so the reopened log appends cleanly.
    pub fn recover(dir: &Path, policy: SnapshotPolicy) -> Result<Recovered, StoreError> {
        let m = crate::obs::metrics();
        let recovered = m.recovery_us.time(|| Self::recover_inner(dir, policy))?;
        m.recoveries_total.inc();
        if recovered.dropped_tail.is_some() {
            m.recovery_truncations_total.inc();
        }
        Ok(recovered)
    }

    fn recover_inner(dir: &Path, policy: SnapshotPolicy) -> Result<Recovered, StoreError> {
        let meta = read_meta(dir)?;
        let (snapshot, mut warnings) = latest_snapshot(dir)?;
        let wpath = wal_path(dir, snapshot.seq);
        // One compactor serves double duty: it validates the tail
        // record by record and ends up as the reopened store's
        // tail-fold state.
        let mut co = DeltaCoalescer::new(snapshot.graph.num_vertices());
        let mut ops = 0;
        let (tail, wal, dropped) = if wpath.exists() {
            let mut tail = read_wal(&wpath)?;
            if tail.seq != snapshot.seq {
                return Err(StoreError::Corrupt {
                    what: wpath.display().to_string(),
                    reason: format!(
                        "log seq {} does not extend snapshot {}",
                        tail.seq, snapshot.seq
                    ),
                });
            }
            // Fold the tail through the compactor exactly as journaling
            // did; a record the compactor rejects (and everything after
            // it) is unusable — drop it like a checksum failure.
            let mut good = tail.records.len();
            for (i, rec) in tail.records.iter().enumerate() {
                if let WalRecord::Delta(d) = rec {
                    if let Err(e) = co.push(d) {
                        tail.corruption =
                            Some(format!("record {i} inconsistent with snapshot: {e}"));
                        good = i;
                        break;
                    }
                    ops += edit_ops(d);
                }
            }
            tail.records.truncate(good);
            if good < tail.ends.len() {
                tail.good_bytes = if good == 0 {
                    HEADER_BYTES
                } else {
                    tail.ends[good - 1]
                };
                tail.ends.truncate(good);
            }
            let dropped = tail.corruption.clone();
            let wal = WalWriter::reopen(&wpath, &tail)?;
            (tail.records, wal, dropped)
        } else {
            // Crash between snapshot rename and WAL creation: an empty
            // tail, recreated now.
            warnings.push(format!("missing {}; starting empty", wpath.display()));
            let wal = WalWriter::create(&wpath, snapshot.seq)?;
            fsync_dir(dir)?;
            (Vec::new(), wal, None)
        };
        let dropped = match (dropped, warnings.is_empty()) {
            (d, true) => d,
            (Some(d), false) => Some(format!("{}; {d}", warnings.join("; "))),
            (None, false) => Some(warnings.join("; ")),
        };
        Ok(Recovered {
            store: SessionStore {
                dir: dir.to_path_buf(),
                meta: meta.clone(),
                policy,
                wal,
                co,
                seq: snapshot.seq,
                snapshots_written: 0,
                ops_since_snap: ops,
                steps_at_snap: snapshot.steps,
            },
            meta,
            snapshot,
            tail,
            dropped_tail: dropped,
        })
    }

    /// Read-only inspection of a session directory (nothing is
    /// truncated, reopened or repaired).
    pub fn inspect(dir: &Path) -> Result<Inspection, StoreError> {
        let meta = read_meta(dir)?;
        let (snapshot, warnings) = latest_snapshot(dir)?;
        let wpath = wal_path(dir, snapshot.seq);
        // An absent WAL is the same state `recover` treats as a benign
        // interrupted rotation (crash between snapshot rename and WAL
        // creation): an empty tail, not corruption. Keep the two paths
        // aligned so the inspector never flags a directory recovery
        // would rehydrate losslessly.
        let mut note = None;
        let (records, tail_bytes, mut corruption) = if wpath.exists() {
            let tail = read_wal(&wpath)?;
            if tail.seq != snapshot.seq {
                (
                    Vec::new(),
                    tail.total_bytes,
                    Some("log/snapshot seq mismatch".to_string()),
                )
            } else {
                (tail.records, tail.total_bytes, tail.corruption)
            }
        } else {
            note = Some(format!(
                "missing {}; interrupted rotation, empty tail (recovery recreates it)",
                wpath.display()
            ));
            (Vec::new(), 0, None)
        };
        let mut co = DeltaCoalescer::new(snapshot.graph.num_vertices());
        let mut tail_deltas = 0;
        let mut tail_flushes = 0;
        for (i, rec) in records.iter().enumerate() {
            match rec {
                WalRecord::Flush => tail_flushes += 1,
                WalRecord::Delta(d) => match co.push(d) {
                    Ok(()) => tail_deltas += 1,
                    Err(e) => {
                        corruption = Some(format!("record {i} inconsistent with snapshot: {e}"));
                        break;
                    }
                },
            }
        }
        if !warnings.is_empty() {
            let w = warnings.join("; ");
            corruption = Some(match corruption {
                Some(c) => format!("{w}; {c}"),
                None => w,
            });
        }
        Ok(Inspection {
            meta,
            snapshot,
            tail_deltas,
            tail_flushes,
            tail_bytes,
            tail_net: co.net(),
            tail_dirt: co.dirt(),
            corruption,
            note,
        })
    }

    /// The session directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Session identity + config line.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Current snapshot sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Snapshots written by this process (including the initial one at
    /// create; 0 right after recovery).
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// Records in the current WAL tail.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Bytes in the current WAL tail (header included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The snapshot policy in force.
    pub fn policy(&self) -> &SnapshotPolicy {
        &self.policy
    }

    /// The replication cursor: `(snapshot seq, WAL byte end)`. A
    /// follower holding `(seq, offset)` asks for the frame bytes in
    /// `[offset, wal_bytes())` of `wal-<seq>.log`; after a rotation the
    /// seq no longer matches and the follower must full-resync (its
    /// local state is equivalent — replay determinism — just based on
    /// an older snapshot lineage).
    pub fn repl_cursor(&self) -> (u64, u64) {
        (self.seq, self.wal.bytes())
    }

    /// Raw bytes of the meta file, as shipped by `REPL SYNC`.
    pub fn meta_file_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Ok(std::fs::read(meta_path(&self.dir))?)
    }

    /// Raw bytes of the current snapshot file, as shipped by
    /// `REPL SYNC`.
    pub fn snapshot_file_bytes(&self) -> Result<Vec<u8>, StoreError> {
        Ok(std::fs::read(snap_path(&self.dir, self.seq))?)
    }

    /// Raw bytes of the current WAL file in `[offset, wal_bytes())`.
    /// `offset = 0` ships the whole file (bootstrap); a frame-boundary
    /// offset ≥ [`HEADER_BYTES`] ships the
    /// frames a follower has not yet applied. A cursor past the current
    /// end is an error (the caller turns it into a resync).
    pub fn wal_file_bytes_from(&self, offset: u64) -> Result<Vec<u8>, StoreError> {
        let end = self.wal.bytes();
        if offset > end {
            return Err(StoreError::Corrupt {
                what: self.wal.path().display().to_string(),
                reason: format!("replication offset {offset} past WAL end {end}"),
            });
        }
        let bytes = std::fs::read(self.wal.path())?;
        if (bytes.len() as u64) < end {
            return Err(StoreError::Corrupt {
                what: self.wal.path().display().to_string(),
                reason: format!(
                    "file holds {} bytes but the writer acked {end}",
                    bytes.len()
                ),
            });
        }
        Ok(bytes[offset as usize..end as usize].to_vec())
    }
}

/// Install a replica of a primary's session directory from the raw
/// file bytes shipped by `REPL SYNC` (meta, current snapshot, current
/// WAL). Replaces any existing directory. The caller rehydrates the
/// session afterwards via [`SessionStore::recover`] — the same code
/// path proven bit-identical for crash recovery.
pub fn install_replica(
    dir: &Path,
    seq: u64,
    meta: &[u8],
    snapshot: &[u8],
    wal: &[u8],
) -> Result<(), StoreError> {
    if dir.exists() {
        std::fs::remove_dir_all(dir)?;
    }
    std::fs::create_dir_all(dir)?;
    for (path, bytes) in [
        (meta_path(dir), meta),
        (snap_path(dir, seq), snapshot),
        (wal_path(dir, seq), wal),
    ] {
        let mut f = std::fs::File::create(&path)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    fsync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("igp-store-test-{}-{name}", std::process::id()))
    }

    fn meta() -> StoreMeta {
        StoreMeta {
            sid: "s1".into(),
            config_line: "parts=2 policy=every:1".into(),
        }
    }

    /// A toy durable "session": graph evolves by applied deltas, state
    /// borrowed for the store calls.
    struct Toy {
        graph: CsrGraph,
        part: Partitioning,
        base: Vec<NodeId>,
        steps: u64,
        deltas: u64,
    }

    impl Toy {
        fn new() -> Self {
            let graph = generators::grid(4, 4);
            let part = Partitioning::round_robin(&graph, 2);
            Toy {
                base: (0..16).collect(),
                graph,
                part,
                steps: 0,
                deltas: 0,
            }
        }

        fn state(&self) -> SessionState<'_> {
            SessionState {
                graph: &self.graph,
                part: &self.part,
                base_of_current: &self.base,
                steps: self.steps,
                total_moved: 0,
                deltas_received: self.deltas,
                needs_scratch: false,
            }
        }

        fn apply(&mut self, d: &GraphDelta) {
            let inc = d.apply(&self.graph);
            let n = inc.new_graph().num_vertices();
            let mut base = vec![igp_graph::INVALID_NODE; n];
            for (v, slot) in base.iter_mut().enumerate() {
                let o = inc.old_of_new(v as NodeId);
                if o != igp_graph::INVALID_NODE {
                    *slot = self.base[o as usize];
                }
            }
            self.base = base;
            self.graph = inc.new_graph().clone();
            self.part = Partitioning::round_robin(&self.graph, 2);
            self.steps += 1;
            self.deltas += 1;
        }
    }

    fn growth(g: &CsrGraph, seed: u64) -> GraphDelta {
        generators::localized_growth_delta(g, 0, 2, seed)
    }

    #[test]
    fn create_journal_snapshot_recover_roundtrip() {
        let dir = tmp("lifecycle");
        let mut toy = Toy::new();
        let mut store =
            SessionStore::create(&dir, meta(), SnapshotPolicy::EveryK(2), toy.state()).unwrap();
        assert_eq!(store.seq(), 0);
        // Two deltas → EveryK(2) snapshot fires, tail compacted.
        for k in 0..2 {
            let d = growth(&toy.graph, k);
            toy.apply(&d);
            store.journal_delta(&d).unwrap();
        }
        assert_eq!(store.wal_records(), 2);
        assert!(store.maybe_snapshot(toy.state()).unwrap());
        assert_eq!(store.seq(), 1);
        assert_eq!(store.wal_records(), 0);
        // One more delta rides the new tail.
        let d = growth(&toy.graph, 9);
        toy.apply(&d);
        store.journal_delta(&d).unwrap();
        store.journal_flush().unwrap();
        drop(store);

        let rec = SessionStore::recover(&dir, SnapshotPolicy::EveryK(2)).unwrap();
        assert!(rec.dropped_tail.is_none());
        assert_eq!(rec.meta, meta());
        assert_eq!(rec.snapshot.seq, 1);
        assert_eq!(rec.snapshot.compacted_records, 2);
        assert_eq!(rec.snapshot.steps, 2);
        // Lineage applied to... the *previous* snapshot graph — here we
        // just check the tail survives verbatim.
        assert_eq!(rec.tail.len(), 2);
        assert!(matches!(rec.tail[0], WalRecord::Delta(_)));
        assert!(matches!(rec.tail[1], WalRecord::Flush));
        // Snapshot state is NOT the live state (one delta in the tail).
        assert_eq!(
            rec.snapshot.graph.num_vertices() + 2,
            toy.graph.num_vertices()
        );
        // Reopened store appends cleanly.
        let mut store = rec.store;
        let d = growth(&toy.graph, 11);
        toy.apply(&d);
        store.journal_delta(&d).unwrap();
        assert_eq!(store.wal_records(), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lineage_delta_reproduces_next_snapshot_graph() {
        let dir = tmp("lineage");
        let mut toy = Toy::new();
        let snap0_graph = toy.graph.clone();
        let mut store =
            SessionStore::create(&dir, meta(), SnapshotPolicy::Never, toy.state()).unwrap();
        for k in 0..4 {
            let d = growth(&toy.graph, k);
            toy.apply(&d);
            store.journal_delta(&d).unwrap();
        }
        store.snapshot_now(toy.state()).unwrap();
        drop(store);
        let rec = SessionStore::recover(&dir, SnapshotPolicy::Never).unwrap();
        assert_eq!(rec.snapshot.seq, 1);
        assert_eq!(rec.snapshot.compacted_records, 4);
        // Compaction-by-coalescing: applying the lineage delta to the
        // previous snapshot's graph reproduces this snapshot's graph.
        let rebuilt = rec.snapshot.lineage.apply(&snap0_graph);
        assert_eq!(rebuilt.new_graph(), &rec.snapshot.graph);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_survives_interrupted_rotation() {
        let dir = tmp("rotation");
        let mut toy = Toy::new();
        let mut store =
            SessionStore::create(&dir, meta(), SnapshotPolicy::Never, toy.state()).unwrap();
        let d = growth(&toy.graph, 1);
        toy.apply(&d);
        store.journal_delta(&d).unwrap();
        store.snapshot_now(toy.state()).unwrap();
        drop(store);
        // Simulate a crash between rename and WAL creation: delete the
        // new WAL; and leave a stale *invalid* higher snapshot behind.
        std::fs::remove_file(dir.join("wal-1.log")).unwrap();
        std::fs::write(dir.join("snap-9.snap"), b"garbage").unwrap();
        let rec = SessionStore::recover(&dir, SnapshotPolicy::Never).unwrap();
        assert_eq!(rec.snapshot.seq, 1, "invalid snap-9 must be skipped");
        assert!(rec.tail.is_empty());
        let note = rec.dropped_tail.expect("warnings surface");
        assert!(note.contains("snap-9"), "{note}");
        assert!(note.contains("starting empty"), "{note}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn inspect_is_read_only_and_reports_corruption() {
        let dir = tmp("inspect");
        let mut toy = Toy::new();
        let mut store =
            SessionStore::create(&dir, meta(), SnapshotPolicy::Never, toy.state()).unwrap();
        for k in 0..3 {
            let d = growth(&toy.graph, k);
            toy.apply(&d);
            store.journal_delta(&d).unwrap();
        }
        drop(store);
        let wal = dir.join("wal-0.log");
        let before = std::fs::read(&wal).unwrap();
        // Corrupt the last byte: inspect reports it but repairs nothing.
        let mut bytes = before.clone();
        *bytes.last_mut().unwrap() ^= 0xff;
        std::fs::write(&wal, &bytes).unwrap();
        let insp = SessionStore::inspect(&dir).unwrap();
        assert_eq!(insp.tail_deltas, 2);
        assert_eq!(insp.tail_flushes, 0);
        assert!(insp.corruption.is_some());
        assert_eq!(insp.tail_dirt.deltas, 2);
        assert!(!insp.tail_net.is_empty());
        assert_eq!(
            std::fs::read(&wal).unwrap(),
            bytes,
            "inspect must not mutate"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
