//! Store-layer metrics: WAL append latency and volume, snapshot and
//! recovery durations, corrupt-tail truncations. Registered into the
//! global igp-obs registry (naming per DESIGN.md §10.1). Also home of
//! the process-global durability [`health_cell`] the serving layer's
//! watchdog registers as its `store` component.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use igp_obs::health::HealthCell;
use igp_obs::{registry, Counter, Histogram};

/// How long a durable write may run before the watchdog calls it a
/// stall — generous, because fsync-class latency spikes are normal.
const STORE_STALL_BAR: Duration = Duration::from_secs(2);

/// How long a failed durable write holds the store `unhealthy`.
pub(crate) const STORE_FAIL_HOLD: Duration = Duration::from_secs(5);

/// The process-global store heartbeat cell, stamped busy/idle around
/// every WAL append and snapshot write (and `unhealthy` for a hold
/// after one fails). Process-global — unlike the serving layer's
/// per-daemon cells — because a stalling or failing disk is a
/// process-wide condition.
pub fn health_cell() -> &'static Arc<HealthCell> {
    static CELL: OnceLock<Arc<HealthCell>> = OnceLock::new();
    CELL.get_or_init(|| HealthCell::new(STORE_STALL_BAR))
}

/// All store-layer metric handles; one instance per process.
pub struct StoreMetrics {
    /// `igp_store_wal_append_us` — one WAL frame write + flush.
    pub wal_append_us: Arc<Histogram>,
    /// `igp_store_wal_frames_total` — frames appended.
    pub wal_frames_total: Arc<Counter>,
    /// `igp_store_wal_bytes_total` — frame bytes written (headers incl.).
    pub wal_bytes_total: Arc<Counter>,
    /// `igp_store_snapshot_us` — snapshot write + WAL rotation.
    pub snapshot_us: Arc<Histogram>,
    /// `igp_store_snapshots_total` — snapshots written.
    pub snapshots_total: Arc<Counter>,
    /// `igp_store_recovery_us` — full `SessionStore::recover` duration.
    pub recovery_us: Arc<Histogram>,
    /// `igp_store_recoveries_total` — recovery attempts that succeeded.
    pub recoveries_total: Arc<Counter>,
    /// `igp_store_recovery_truncations_total` — recoveries that dropped
    /// a corrupt/torn WAL tail.
    pub recovery_truncations_total: Arc<Counter>,
}

/// The store layer's registered metric handles.
pub fn metrics() -> &'static StoreMetrics {
    static M: OnceLock<StoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        StoreMetrics {
            wal_append_us: r.histogram(
                "igp_store_wal_append_us",
                "WAL frame append latency, write through OS flush (microseconds)",
                vec![],
            ),
            wal_frames_total: r.counter(
                "igp_store_wal_frames_total",
                "WAL frames appended",
                vec![],
            ),
            wal_bytes_total: r.counter(
                "igp_store_wal_bytes_total",
                "WAL bytes written, frame headers included",
                vec![],
            ),
            snapshot_us: r.histogram(
                "igp_store_snapshot_us",
                "Snapshot write + WAL rotation duration (microseconds)",
                vec![],
            ),
            snapshots_total: r.counter("igp_store_snapshots_total", "Snapshots written", vec![]),
            recovery_us: r.histogram(
                "igp_store_recovery_us",
                "Crash-recovery duration: snapshot load + WAL tail replay (microseconds)",
                vec![],
            ),
            recoveries_total: r.counter(
                "igp_store_recoveries_total",
                "Successful session recoveries",
                vec![],
            ),
            recovery_truncations_total: r.counter(
                "igp_store_recovery_truncations_total",
                "Recoveries that truncated a corrupt or torn WAL tail",
                vec![],
            ),
        }
    })
}
