//! # igp-store — durability for the serving layer
//!
//! The paper's economics — incremental repartitioning beats recompute
//! from scratch — only pay off in a long-lived service if the
//! incremental state *survives restarts*: an `igp-serve` crash that
//! loses every tenant's graph forces exactly the full recompute the
//! method exists to avoid. This crate is the persistence substrate
//! (DESIGN.md §9):
//!
//! * [`wal`] — a per-session **write-ahead log** of validated
//!   [`igp_graph::GraphDelta`]s and explicit flush markers, in
//!   length+CRC32 frames. A truncated or corrupt trailing record is
//!   detected, reported and dropped — never a panic.
//! * [`snapshot`] — periodic **partition+graph snapshots** carrying the
//!   graph, the partitioning, the session's composed identity map and
//!   its counters, plus the *lineage delta*: the WAL tail since the
//!   previous snapshot folded into one canonical edit by
//!   [`igp_graph::DeltaCoalescer`] (log compaction by coalescing).
//! * [`policy`] — a [`SnapshotPolicy`] priced with
//!   [`igp_runtime::CostModel`]: snapshot when the estimated cost of
//!   replaying the WAL tail exceeds the cost of writing a snapshot,
//!   mirroring the serving layer's remap-vs-stale repartition trigger.
//! * [`store`] — [`SessionStore`]: the on-disk session directory
//!   (`meta`, `snap-<seq>`, `wal-<seq>`), journaling, snapshot
//!   rotation, read-only inspection and crash [`SessionStore::recover`].
//!
//! The recovery contract, asserted by `tests/store_recovery.rs` and the
//! CI kill-9 end-to-end job: *loading the latest snapshot and replaying
//! the WAL tail rehydrates a session bit-identical — graph, partition
//! assignment and composed identity map — to the session that never
//! crashed.* It holds because every repartition driver is
//! deterministic in (graph, partitioning, config) and the WAL records
//! every externally visible input (accepted deltas, explicit flushes)
//! in order.

pub mod obs;
pub mod policy;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use policy::{SnapshotPolicy, SnapshotTrigger, SnapshotView};
pub use snapshot::SnapshotData;
pub use store::{install_replica, Inspection, Recovered, SessionState, SessionStore, StoreMeta};
pub use wal::{decode_frames, WalRecord, WalTail};

/// Failure in the durability layer. Storage failures never take the
/// in-memory session down; the serving layer reports them and degrades
/// the session to memory-only.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// A file exists but its contents are not usable (bad magic,
    /// version, checksum, or decode failure).
    Corrupt {
        /// File (or logical part) the corruption was found in.
        what: String,
        /// What was wrong.
        reason: String,
    },
    /// The session directory is structurally incomplete (missing meta
    /// or no usable snapshot).
    Missing(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt { what, reason } => write!(f, "corrupt {what}: {reason}"),
            StoreError::Missing(m) => write!(f, "missing: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), the checksum in WAL frames and
/// snapshot trailers. Table-driven; the table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
