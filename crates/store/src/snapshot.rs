//! Snapshot files: the full persistable session state at one step
//! boundary, plus the *lineage* of how it got there.
//!
//! Layout (little-endian, CRC32 trailer over everything before it):
//!
//! ```text
//! magic "IGPS" · version u32 · seq u64
//! steps u64 · total_moved u64 · deltas_received u64 · needs_scratch u8
//! graph   : len u32 · igp_graph::io::write_graph_bin
//! part    : len u32 · igp_graph::io::write_partition_bin
//! basemap : count u32 · count × u32      (birth id per current vertex)
//! lineage : len u32 · igp_graph::io::write_delta_bin
//! compacted_records u64
//! crc32 u32
//! ```
//!
//! The **lineage delta** is the previous snapshot's WAL tail folded
//! into one canonical edit by [`igp_graph::DeltaCoalescer`] — log
//! compaction by coalescing: `compacted_records` journal frames are
//! replaced by a single delta whose application to the previous
//! snapshot's graph reproduces this one (and whose identity map links
//! vertex ids across the two). Snapshot writes go through a temp file +
//! fsync + rename + directory fsync, so a crash mid-write leaves the
//! previous snapshot intact and a completed install cannot be undone
//! by the directory entry never reaching disk.

use crate::{crc32, StoreError};
use igp_graph::{io as graph_io, CsrGraph, GraphDelta, NodeId, Partitioning};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

const SNAP_MAGIC: [u8; 4] = *b"IGPS";
const SNAP_VERSION: u32 = 1;

/// Everything one snapshot persists.
#[derive(Clone, Debug)]
pub struct SnapshotData {
    /// Snapshot sequence number (0 = the state at `OPEN`).
    pub seq: u64,
    /// Session steps taken when the snapshot was written.
    pub steps: u64,
    /// Total vertices moved by those steps.
    pub total_moved: u64,
    /// Deltas accepted over the session's lifetime.
    pub deltas_received: u64,
    /// The from-scratch signal at snapshot time.
    pub needs_scratch: bool,
    /// The session graph.
    pub graph: CsrGraph,
    /// The session partitioning.
    pub part: Partitioning,
    /// Birth-graph id per current vertex (the session's composed
    /// identity map).
    pub base_of_current: Vec<NodeId>,
    /// The WAL tail since the previous snapshot, coalesced into one
    /// canonical delta (empty for snapshot 0).
    pub lineage: GraphDelta,
    /// How many WAL records the lineage delta compacted.
    pub compacted_records: u64,
}

/// Serialize and atomically install a snapshot at `path` (write to
/// `path.tmp`, fsync, rename).
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> Result<(), StoreError> {
    let graph = graph_io::write_graph_bin(&data.graph);
    let part = graph_io::write_partition_bin(&data.part);
    let lineage = graph_io::write_delta_bin(&data.lineage);
    // The block length prefixes are u32; fail the write rather than
    // wrap silently into a snapshot the reader would call corrupt —
    // after rotation deleted its only predecessor.
    for (block, what) in [
        (&graph, "graph"),
        (&part, "partition"),
        (&lineage, "lineage"),
    ] {
        if block.len() as u64 > u32::MAX as u64 {
            return Err(StoreError::Corrupt {
                what: path.display().to_string(),
                reason: format!(
                    "{what} block of {} bytes exceeds the u32 frame bound",
                    block.len()
                ),
            });
        }
    }
    let mut out = Vec::with_capacity(64 + graph.len() + part.len() + lineage.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&data.seq.to_le_bytes());
    out.extend_from_slice(&data.steps.to_le_bytes());
    out.extend_from_slice(&data.total_moved.to_le_bytes());
    out.extend_from_slice(&data.deltas_received.to_le_bytes());
    out.push(u8::from(data.needs_scratch));
    for block in [&graph, &part] {
        out.extend_from_slice(&(block.len() as u32).to_le_bytes());
        out.extend_from_slice(block);
    }
    out.extend_from_slice(&(data.base_of_current.len() as u32).to_le_bytes());
    for &b in &data.base_of_current {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&(lineage.len() as u32).to_le_bytes());
    out.extend_from_slice(&lineage);
    out.extend_from_slice(&data.compacted_records.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    // The rename is durable only once the directory entry is: without
    // this, a crash can resurrect the pre-rotation state even though
    // the snapshot's own bytes were fsynced.
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Fsync a directory so metadata operations inside it (create, rename,
/// delete) survive a crash. On non-Unix targets this is a no-op —
/// opening a directory for sync is a Unix idiom.
pub fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Read and verify a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<SnapshotData, StoreError> {
    let corrupt = |reason: String| StoreError::Corrupt {
        what: path.display().to_string(),
        reason,
    };
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 4 + 4 + 8 * 4 + 1 + 4 {
        return Err(corrupt(format!("short file ({} bytes)", bytes.len())));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != crc {
        return Err(corrupt("checksum mismatch".into()));
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| StoreError::Corrupt {
                what: path.display().to_string(),
                reason: format!("truncated at offset {pos}"),
            })?;
        let s = &body[*pos..end];
        *pos = end;
        Ok(s)
    };
    let u32_at = |pos: &mut usize| -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
    };
    let u64_at = |pos: &mut usize| -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()))
    };
    if take(&mut pos, 4)? != SNAP_MAGIC {
        return Err(corrupt("bad magic".into()));
    }
    let ver = u32_at(&mut pos)?;
    if ver != SNAP_VERSION {
        return Err(corrupt(format!("unsupported version {ver}")));
    }
    let seq = u64_at(&mut pos)?;
    let steps = u64_at(&mut pos)?;
    let total_moved = u64_at(&mut pos)?;
    let deltas_received = u64_at(&mut pos)?;
    let needs_scratch = take(&mut pos, 1)?[0] != 0;
    let graph_len = u32_at(&mut pos)? as usize;
    let graph =
        graph_io::read_graph_bin(take(&mut pos, graph_len)?).map_err(|e| corrupt(e.to_string()))?;
    let part_len = u32_at(&mut pos)? as usize;
    let part = graph_io::read_partition_bin(take(&mut pos, part_len)?, &graph)
        .map_err(|e| corrupt(e.to_string()))?;
    let map_len = u32_at(&mut pos)? as usize;
    if map_len != graph.num_vertices() {
        return Err(corrupt(format!(
            "identity map has {map_len} entries for {} vertices",
            graph.num_vertices()
        )));
    }
    let mut base_of_current = Vec::with_capacity(map_len);
    for _ in 0..map_len {
        base_of_current.push(u32_at(&mut pos)?);
    }
    let lineage_len = u32_at(&mut pos)? as usize;
    let lineage = graph_io::read_delta_bin(take(&mut pos, lineage_len)?)
        .map_err(|e| corrupt(e.to_string()))?;
    let compacted_records = u64_at(&mut pos)?;
    if pos != body.len() {
        return Err(corrupt(format!("{} trailing bytes", body.len() - pos)));
    }
    Ok(SnapshotData {
        seq,
        steps,
        total_moved,
        deltas_received,
        needs_scratch,
        graph,
        part,
        base_of_current,
        lineage,
        compacted_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_graph::generators;

    fn sample() -> SnapshotData {
        let graph = generators::grid(4, 4);
        let part = Partitioning::round_robin(&graph, 2);
        SnapshotData {
            seq: 3,
            steps: 7,
            total_moved: 41,
            deltas_received: 19,
            needs_scratch: true,
            base_of_current: (0..16).collect(),
            lineage: GraphDelta {
                add_vertices: vec![1, 1],
                add_edges: vec![(0, 16, 1), (16, 17, 2)],
                ..Default::default()
            },
            compacted_records: 6,
            graph,
            part,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("igp-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.snap");
        let data = sample();
        write_snapshot(&path, &data).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.seq, data.seq);
        assert_eq!(back.steps, data.steps);
        assert_eq!(back.total_moved, data.total_moved);
        assert_eq!(back.deltas_received, data.deltas_received);
        assert_eq!(back.needs_scratch, data.needs_scratch);
        assert_eq!(back.graph, data.graph);
        assert_eq!(back.part, data.part);
        assert_eq!(back.base_of_current, data.base_of_current);
        assert_eq!(back.lineage, data.lineage);
        assert_eq!(back.compacted_records, data.compacted_records);
        std::fs::remove_file(path).unwrap();
    }

    /// Regression (satellite): `write_snapshot` persists the *directory
    /// entry* too — the rename alone does not survive a power cut on
    /// its own. The dir-sync path must accept a real directory and
    /// refuse a missing one (a silent no-op there would quietly skip
    /// the durability barrier).
    #[test]
    fn dir_sync_path_stats_the_directory() {
        let path = tmp("dirsync.snap");
        write_snapshot(&path, &sample()).unwrap();
        let dir = path.parent().unwrap();
        assert!(dir.metadata().unwrap().is_dir());
        fsync_dir(dir).expect("fsync of the snapshot's directory");
        #[cfg(unix)]
        assert!(
            fsync_dir(&dir.join("no-such-subdir")).is_err(),
            "a vanished directory must surface, not no-op"
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corruption_detected_by_trailer_crc() {
        let path = tmp("corrupt.snap");
        write_snapshot(&path, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        // Truncation too.
        std::fs::write(&path, &bytes[..mid]).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
