//! Snapshot cadence: *when* is writing a snapshot worth it?
//!
//! The same economic framing the serving layer uses for its repartition
//! trigger (remap cost vs accumulated staleness, priced with
//! [`CostModel`]) applies one level down: every WAL record widens the
//! gap between the last snapshot and the live session, and a crash pays
//! for that gap at recovery time — each journaled edit must be
//! re-applied and each flush re-runs a full repartition. A snapshot
//! erases the gap at the price of serializing the whole graph +
//! partition. [`SnapshotPolicy::CostModelDriven`] snapshots exactly
//! when the estimated replay cost of the tail exceeds the estimated
//! write cost (DESIGN.md §9.3).

use igp_runtime::CostModel;
use std::fmt;
use std::str::FromStr;

/// Everything the policy may consult, maintained by the store.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnapshotView {
    /// Vertices of the current session graph.
    pub n_current: usize,
    /// WAL records appended since the last snapshot.
    pub records_since_snap: u64,
    /// Repartition steps taken since the last snapshot (each one is a
    /// full remap a recovery would have to recompute).
    pub flushes_since_snap: u64,
    /// Total edit operations (vertices + edges added/removed) journaled
    /// since the last snapshot.
    pub ops_since_snap: u64,
}

/// Parameters of the cost-model-driven snapshot trigger.
///
/// The model, in simulated seconds:
///
/// * replaying the tail costs `t_work · (replay_work_per_op · ops +
///   remap_work_per_vertex · n · flushes)` — re-applying each edit is
///   cheap, re-running each policy-fired repartition is not
///   (`remap_work_per_vertex` matches the serving layer's
///   `CostTrigger` default so the two triggers price a repartition
///   identically);
/// * writing a snapshot costs `t_work · write_work_per_vertex · n` —
///   serializing the graph, partition and identity map.
///
/// With the defaults a snapshot fires after roughly
/// `write_work_per_vertex / remap_work_per_vertex = 5` repartitions,
/// sooner if the edits themselves are heavy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotTrigger {
    /// Cost constants (defaults to [`CostModel::cm5`], the same
    /// constants the simulated backend and the repartition trigger
    /// charge).
    pub cost: CostModel,
    /// Charged work units to re-apply one journaled edit operation.
    pub replay_work_per_op: f64,
    /// Charged work units per vertex for one repartition pass (same
    /// default as the serving layer's cost trigger).
    pub remap_work_per_vertex: f64,
    /// Charged work units per vertex to write one snapshot.
    pub write_work_per_vertex: f64,
}

impl Default for SnapshotTrigger {
    fn default() -> Self {
        SnapshotTrigger {
            cost: CostModel::cm5(),
            replay_work_per_op: 20.0,
            remap_work_per_vertex: 40.0,
            write_work_per_vertex: 200.0,
        }
    }
}

impl SnapshotTrigger {
    /// Estimated simulated seconds recovering the current WAL tail
    /// would cost.
    pub fn replay_cost(&self, view: &SnapshotView) -> f64 {
        let n = view.n_current.max(1) as f64;
        self.cost.t_work
            * (self.replay_work_per_op * view.ops_since_snap as f64
                + self.remap_work_per_vertex * n * view.flushes_since_snap as f64)
    }

    /// Estimated simulated seconds one snapshot write costs.
    pub fn write_cost(&self, view: &SnapshotView) -> f64 {
        self.cost.t_work * self.write_work_per_vertex * view.n_current.max(1) as f64
    }
}

/// When the store folds the WAL tail into a fresh snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SnapshotPolicy {
    /// Never snapshot beyond the initial one: the WAL grows unbounded
    /// (useful for tests and offline analysis).
    Never,
    /// Snapshot after every `k`-th WAL record.
    EveryK(u64),
    /// Snapshot when the estimated replay cost of the tail exceeds the
    /// estimated snapshot-write cost.
    CostModelDriven(SnapshotTrigger),
}

impl SnapshotPolicy {
    /// Should the store snapshot now? Evaluated after each flushed
    /// repartition step (snapshots are only taken at step boundaries,
    /// where the queue is empty and the on-disk state fully describes
    /// the session).
    pub fn should_snapshot(&self, view: &SnapshotView) -> bool {
        if view.records_since_snap == 0 {
            return false;
        }
        match *self {
            SnapshotPolicy::Never => false,
            SnapshotPolicy::EveryK(k) => view.records_since_snap >= k.max(1),
            SnapshotPolicy::CostModelDriven(t) => t.replay_cost(view) >= t.write_cost(view),
        }
    }
}

impl Default for SnapshotPolicy {
    fn default() -> Self {
        SnapshotPolicy::CostModelDriven(SnapshotTrigger::default())
    }
}

impl fmt::Display for SnapshotPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SnapshotPolicy::Never => write!(f, "never"),
            SnapshotPolicy::EveryK(k) => write!(f, "every:{k}"),
            SnapshotPolicy::CostModelDriven(t) => write!(
                f,
                "cost:{}:{}:{}",
                t.replay_work_per_op, t.remap_work_per_vertex, t.write_work_per_vertex
            ),
        }
    }
}

impl FromStr for SnapshotPolicy {
    type Err = String;

    /// Parse a snapshot policy spec: `never`, `every:<k>`, `cost`, or
    /// `cost:<replay-op>:<remap-v>:<write-v>` (CM-5 cost constants).
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or("");
        let parsed = match kind {
            "never" => SnapshotPolicy::Never,
            "every" => {
                let k: u64 = parts
                    .next()
                    .ok_or("every needs :<k>")?
                    .parse()
                    .map_err(|e| format!("bad every:<k>: {e}"))?;
                if k == 0 {
                    return Err("every:<k> must be ≥ 1".into());
                }
                SnapshotPolicy::EveryK(k)
            }
            "cost" => {
                let mut trig = SnapshotTrigger::default();
                for (slot, name) in [
                    (&mut trig.replay_work_per_op, "replay-op"),
                    (&mut trig.remap_work_per_vertex, "remap-v"),
                    (&mut trig.write_work_per_vertex, "write-v"),
                ] {
                    if let Some(tok) = parts.next() {
                        *slot = tok.parse().map_err(|e| format!("bad cost <{name}>: {e}"))?;
                        if *slot <= 0.0 || !slot.is_finite() {
                            return Err(format!("cost <{name}> must be positive"));
                        }
                    }
                }
                SnapshotPolicy::CostModelDriven(trig)
            }
            other => return Err(format!("unknown snapshot policy `{other}`")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in snapshot policy `{s}`"));
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(records: u64, flushes: u64, ops: u64, n: usize) -> SnapshotView {
        SnapshotView {
            n_current: n,
            records_since_snap: records,
            flushes_since_snap: flushes,
            ops_since_snap: ops,
        }
    }

    #[test]
    fn never_and_every_k() {
        assert!(!SnapshotPolicy::Never.should_snapshot(&view(1000, 1000, 1000, 10)));
        let p = SnapshotPolicy::EveryK(3);
        assert!(!p.should_snapshot(&view(2, 2, 10, 10)));
        assert!(p.should_snapshot(&view(3, 0, 0, 10)));
    }

    #[test]
    fn empty_tail_never_snapshots() {
        for p in [
            SnapshotPolicy::Never,
            SnapshotPolicy::EveryK(1),
            SnapshotPolicy::default(),
        ] {
            assert!(!p.should_snapshot(&view(0, 0, 0, 1000)));
        }
    }

    #[test]
    fn cost_trigger_accumulates_flushes_until_write_pays() {
        let p = SnapshotPolicy::default();
        // One repartition in the tail: replay (40n) < write (200n).
        assert!(!p.should_snapshot(&view(1, 1, 10, 1000)));
        // Five repartitions: replay (200n) ≥ write (200n).
        assert!(p.should_snapshot(&view(5, 5, 50, 1000)));
        // Heavy edits tip it earlier.
        assert!(p.should_snapshot(&view(2, 2, 100_000, 100)));
    }

    #[test]
    fn spec_roundtrip() {
        for spec in ["never", "every:8", "cost:20:40:200", "cost:1:2:3"] {
            let p: SnapshotPolicy = spec.parse().unwrap();
            assert_eq!(p.to_string(), spec, "{spec}");
        }
        assert_eq!(
            "cost".parse::<SnapshotPolicy>().unwrap(),
            SnapshotPolicy::default()
        );
        // Partial cost specs fill the remaining defaults in order.
        match "cost:5".parse::<SnapshotPolicy>().unwrap() {
            SnapshotPolicy::CostModelDriven(t) => {
                assert_eq!(t.replay_work_per_op, 5.0);
                assert_eq!(t.remap_work_per_vertex, 40.0);
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            "", "every", "every:0", "cost:0", "cost:-1", "nope", "never:1",
        ] {
            assert!(bad.parse::<SnapshotPolicy>().is_err(), "{bad}");
        }
    }
}
