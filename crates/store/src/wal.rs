//! The write-ahead log: length+CRC32-framed records, append-only.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header : magic "IGPW" · version u32 · snapshot seq u64
//! frame  : len u32 · crc32(payload) u32 · payload[len]
//! payload: kind u8 · body
//!          kind 1 = delta  (body = igp_graph::io::write_delta_bin)
//!          kind 2 = flush  (empty body; an explicit FLUSH request)
//! ```
//!
//! Policy-fired flushes are *not* journaled: they are a deterministic
//! function of the delta stream and the session config, so replay
//! recomputes them. Only externally caused events ride the log.
//!
//! **Tail hardening:** a reader stops at the first frame that is
//! truncated, oversized or fails its checksum, reports the reason, and
//! the recovery path truncates the file back to the last good frame
//! before appending — a torn write costs at most the unacknowledged
//! tail, never the session.

use crate::{crc32, StoreError};
use igp_graph::{io as graph_io, GraphDelta};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const WAL_MAGIC: [u8; 4] = *b"IGPW";
const WAL_VERSION: u32 = 1;
/// Size of the WAL file header (magic · version · snapshot seq). Frame
/// offsets — including replication cursors — start here.
pub const HEADER_BYTES: u64 = 16;
/// Upper bound on one frame's payload: far above any real delta, small
/// enough that a corrupt length field cannot balloon recovery.
const MAX_PAYLOAD: u32 = 64 << 20;

const KIND_DELTA: u8 = 1;
const KIND_FLUSH: u8 = 2;

/// One journaled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A delta accepted into the session's queue.
    Delta(GraphDelta),
    /// An explicit (client-requested) flush of the pending queue.
    Flush,
}

/// Frame payload for a delta record (borrowed — the hot journaling
/// path never clones the delta).
fn delta_payload(d: &GraphDelta) -> Vec<u8> {
    let body = graph_io::write_delta_bin(d);
    let mut payload = Vec::with_capacity(1 + body.len());
    payload.push(KIND_DELTA);
    payload.extend_from_slice(&body);
    payload
}

impl WalRecord {
    fn encode(&self) -> Vec<u8> {
        match self {
            WalRecord::Delta(d) => delta_payload(d),
            WalRecord::Flush => vec![KIND_FLUSH],
        }
    }

    fn decode(payload: &[u8]) -> Result<Self, String> {
        match payload.split_first() {
            Some((&KIND_DELTA, body)) => graph_io::read_delta_bin(body)
                .map(WalRecord::Delta)
                .map_err(|e| e.to_string()),
            Some((&KIND_FLUSH, [])) => Ok(WalRecord::Flush),
            Some((&KIND_FLUSH, _)) => Err("flush record with non-empty body".into()),
            Some((&k, _)) => Err(format!("unknown record kind {k}")),
            None => Err("empty payload".into()),
        }
    }
}

/// An open WAL file positioned for appending.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
}

impl WalWriter {
    /// Create a fresh WAL for snapshot `seq` (truncates any existing
    /// file at `path`).
    pub fn create(path: &Path, seq: u64) -> Result<Self, StoreError> {
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&seq.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            bytes: HEADER_BYTES,
            records: 0,
        })
    }

    /// Reopen an existing WAL for appending after recovery, truncating
    /// it to `tail.good_bytes` first (dropping any corrupt tail).
    pub fn reopen(path: &Path, tail: &WalTail) -> Result<Self, StoreError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(tail.good_bytes)?;
        let mut w = WalWriter {
            file,
            path: path.to_path_buf(),
            bytes: tail.good_bytes,
            records: tail.records.len() as u64,
        };
        use std::io::Seek;
        w.file.seek(std::io::SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record; returns the frame size in bytes. The write is
    /// flushed to the OS before returning (the ack ordering contract);
    /// see DESIGN.md §9.4 for the fsync trade-off.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, StoreError> {
        self.append_payload(rec.encode())
    }

    /// Append a delta record without cloning the delta.
    pub fn append_delta(&mut self, d: &GraphDelta) -> Result<u64, StoreError> {
        self.append_payload(delta_payload(d))
    }

    fn append_payload(&mut self, payload: Vec<u8>) -> Result<u64, StoreError> {
        // Refuse at write time what the reader would reject at recovery
        // time: a frame past MAX_PAYLOAD would be journaled, acked, and
        // then silently dropped (with every later record) as a corrupt
        // tail — the opposite of the WAL's contract.
        if payload.len() as u64 > MAX_PAYLOAD as u64 {
            return Err(StoreError::Corrupt {
                what: self.path.display().to_string(),
                reason: format!(
                    "record payload of {} bytes exceeds the {MAX_PAYLOAD}-byte frame bound",
                    payload.len()
                ),
            });
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Joins whatever request trace is ambient on this thread
        // (inert during recovery replay, which traces nothing).
        let _sp = igp_obs::trace::Span::ambient("wal_append");
        let m = crate::obs::metrics();
        let cell = crate::obs::health_cell();
        cell.busy();
        let appended = m.wal_append_us.time(|| -> Result<(), StoreError> {
            self.file.write_all(&frame)?;
            self.file.flush()?;
            Ok(())
        });
        cell.idle();
        if appended.is_err() {
            cell.note_failure(crate::obs::STORE_FAIL_HOLD);
        }
        appended?;
        m.wal_frames_total.inc();
        m.wal_bytes_total.add(frame.len() as u64);
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(frame.len() as u64)
    }

    /// Bytes written so far (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The readable contents of a WAL file: every intact record plus a note
/// about a dropped corrupt tail, if any.
#[derive(Debug)]
pub struct WalTail {
    /// Snapshot sequence number this log extends.
    pub seq: u64,
    /// Intact records, in append order.
    pub records: Vec<WalRecord>,
    /// File offset just past each intact frame (`ends[i]` is where
    /// record `i` ends); lets recovery truncate to any record boundary.
    pub ends: Vec<u64>,
    /// File offset just past the last intact frame (the truncation
    /// point for reopening).
    pub good_bytes: u64,
    /// Total file size observed.
    pub total_bytes: u64,
    /// Why the bytes past `good_bytes` were dropped (`None` when the
    /// whole file was intact).
    pub corruption: Option<String>,
}

/// Read a WAL file, stopping — without panicking — at the first
/// truncated or corrupt frame.
pub fn read_wal(path: &Path) -> Result<WalTail, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < HEADER_BYTES as usize {
        return Err(StoreError::Corrupt {
            what: path.display().to_string(),
            reason: format!("short header ({} bytes)", bytes.len()),
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            what: path.display().to_string(),
            reason: "bad magic".into(),
        });
    }
    let ver = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if ver != WAL_VERSION {
        return Err(StoreError::Corrupt {
            what: path.display().to_string(),
            reason: format!("unsupported version {ver}"),
        });
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let scan = scan_frames(&bytes[HEADER_BYTES as usize..], HEADER_BYTES);
    Ok(WalTail {
        seq,
        good_bytes: scan.good_end,
        total_bytes: bytes.len() as u64,
        records: scan.records,
        ends: scan.ends,
        corruption: scan.corruption,
    })
}

/// Result of walking a run of frames.
struct FrameScan {
    records: Vec<WalRecord>,
    /// Absolute offset just past each intact frame.
    ends: Vec<u64>,
    /// Absolute offset just past the last intact frame.
    good_end: u64,
    corruption: Option<String>,
}

/// Walk frames in `bytes`, stopping at the first truncated or corrupt
/// one. `base` is the file offset of `bytes[0]`, used only so reported
/// offsets (and `ends`) are absolute.
fn scan_frames(bytes: &[u8], base: u64) -> FrameScan {
    let mut records = Vec::new();
    let mut ends = Vec::new();
    let mut pos = 0usize;
    let mut corruption = None;
    while pos < bytes.len() {
        let start = base + pos as u64;
        let Some(head) = bytes.get(pos..pos + 8) else {
            corruption = Some(format!(
                "truncated frame header at offset {start} ({} bytes)",
                bytes.len() - pos
            ));
            break;
        };
        let len = u32::from_le_bytes(head[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            corruption = Some(format!("frame at offset {start}: absurd length {len}"));
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            corruption = Some(format!(
                "truncated frame payload at offset {start} (want {len} bytes)"
            ));
            break;
        };
        if crc32(payload) != crc {
            corruption = Some(format!("frame at offset {start}: checksum mismatch"));
            break;
        }
        match WalRecord::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                corruption = Some(format!("frame at offset {start}: {e}"));
                break;
            }
        }
        pos += 8 + len as usize;
        ends.push(base + pos as u64);
    }
    FrameScan {
        records,
        ends,
        good_end: base + pos as u64,
        corruption,
    }
}

/// Decode a run of raw frames (no file header) — the replication apply
/// path. Unlike [`read_wal`], any torn or corrupt frame is a hard
/// error: the primary ships only frames that were intact in its log, so
/// damage here means the cursor or transport went wrong and the
/// follower must resync, not silently apply a prefix.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<WalRecord>, StoreError> {
    let scan = scan_frames(bytes, 0);
    if let Some(reason) = scan.corruption {
        return Err(StoreError::Corrupt {
            what: "replication frames".into(),
            reason,
        });
    }
    Ok(scan.records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("igp-wal-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Delta(GraphDelta {
                add_vertices: vec![2],
                add_edges: vec![(0, 5, 1)],
                ..Default::default()
            }),
            WalRecord::Flush,
            WalRecord::Delta(GraphDelta {
                remove_edges: vec![(1, 2)],
                ..Default::default()
            }),
        ]
    }

    #[test]
    fn append_then_read_roundtrip() {
        let path = tmp("roundtrip.log");
        let mut w = WalWriter::create(&path, 7).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        assert_eq!(w.records(), 3);
        let tail = read_wal(&path).unwrap();
        assert_eq!(tail.seq, 7);
        assert_eq!(tail.records, sample_records());
        assert!(tail.corruption.is_none());
        assert_eq!(tail.good_bytes, tail.total_bytes);
        assert_eq!(tail.good_bytes, w.bytes());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncated_tail_detected_and_dropped() {
        let path = tmp("trunc.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        let full = w.bytes();
        drop(w);
        // Cut into the last frame (any offset inside it).
        for cut in [full - 1, full - 5, full - 9] {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let tail = read_wal(&path).unwrap();
            assert_eq!(tail.records.len(), 2, "cut={cut}");
            assert!(tail.corruption.is_some(), "cut={cut}");
            assert!(tail.good_bytes <= cut);
        }
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_payload_detected_by_checksum() {
        let path = tmp("crc.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        let file_end = {
            let tail = read_wal(&path).unwrap();
            assert!(tail.corruption.is_none());
            tail.good_bytes
        };
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        // Flip the final payload byte of the *last* frame.
        let idx = (file_end - 1) as usize;
        bytes[idx] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let tail = read_wal(&path).unwrap();
        assert_eq!(tail.records.len(), 2);
        let reason = tail.corruption.as_deref().unwrap();
        assert!(reason.contains("checksum"), "{reason}");
        // Reopen truncates back to the good prefix; a fresh append works.
        let mut w = WalWriter::reopen(&path, &tail).unwrap();
        w.append(&WalRecord::Flush).unwrap();
        let tail = read_wal(&path).unwrap();
        assert_eq!(tail.records.len(), 3);
        assert!(tail.corruption.is_none());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn decode_frames_roundtrips_and_rejects_damage() {
        let path = tmp("frames.log");
        let mut w = WalWriter::create(&path, 0).unwrap();
        for r in &sample_records() {
            w.append(r).unwrap();
        }
        drop(w);
        let bytes = fs::read(&path).unwrap();
        let frames = &bytes[HEADER_BYTES as usize..];
        assert_eq!(decode_frames(frames).unwrap(), sample_records());
        assert_eq!(decode_frames(&[]).unwrap(), Vec::<WalRecord>::new());
        // Truncation and bit flips are hard errors, not silent prefixes.
        assert!(decode_frames(&frames[..frames.len() - 1]).is_err());
        let mut bad = frames.to_vec();
        *bad.last_mut().unwrap() ^= 1;
        assert!(decode_frames(&bad).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_header_is_an_error() {
        let path = tmp("hdr.log");
        fs::write(&path, b"NOPE").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt { .. })));
        fs::write(&path, b"IGPWxxxxxxxxxxxx").unwrap();
        assert!(read_wal(&path).is_err()); // bad version
        fs::remove_file(path).unwrap();
    }
}
