//! Lock-free metric primitives: [`Counter`], [`Gauge`] and the
//! log-linear bucketed [`Histogram`] (DESIGN.md §10.3 has the bucket
//! math).
//!
//! All three are plain clusters of atomics: recording is a handful of
//! relaxed atomic operations, safe from any thread, and never blocks.
//! Recording respects the global kill switch ([`crate::set_enabled`])
//! so benches can measure the serving path with instrumentation
//! compiled in but inert.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, active sessions).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per octave as a power of two: 2^3 = 8 sub-buckets, so a
/// bucket's width is ≤ 1/8 of its lower bound — quantile estimates
/// carry ≤ 12.5% relative error (plus ±1 in the small exact region).
const SUB_SHIFT: u32 = 3;
const SUB: u64 = 1 << SUB_SHIFT;
/// Values `< 2^SUB_SHIFT` get one bucket each (exact).
const LINEAR_MAX: u64 = SUB;
/// Bucket count covering the full `u64` range: the linear region plus
/// `SUB` buckets for each of the remaining octaves.
const NUM_BUCKETS: usize = (LINEAR_MAX + (64 - SUB_SHIFT as u64) * SUB) as usize;

/// Map a value to its bucket index (monotone in the value).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // The octave is floor(log2 v); within it, the top SUB_SHIFT bits
    // below the leading one select the sub-bucket.
    let exp = 63 - v.leading_zeros() as u64;
    let sub = (v >> (exp - SUB_SHIFT as u64)) & (SUB - 1);
    (LINEAR_MAX + (exp - SUB_SHIFT as u64) * SUB + sub) as usize
}

/// Inclusive upper bound of bucket `i` (the quantile estimate reported
/// for ranks landing in that bucket).
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        return i;
    }
    let rel = i - LINEAR_MAX;
    let exp = rel / SUB + SUB_SHIFT as u64;
    let sub = rel % SUB;
    let width = 1u64 << (exp - SUB_SHIFT as u64);
    // Lower bound of the bucket, plus its width, minus one.
    (1u64 << exp) + sub * width + (width - 1)
}

/// A log-linear bucketed histogram of `u64` samples (typically
/// microseconds or sizes): fixed memory, lock-free recording, quantile
/// estimates with bounded relative error, exact count/sum/max/min.
///
/// ```
/// use igp_obs::Histogram;
/// let h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=563).contains(&p50), "{p50}"); // ≤ 12.5% above 500
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets = v.into_boxed_slice().try_into().expect("length is fixed");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Time `f` and record its wall duration in microseconds. When the
    /// kill switch is off, `f` runs without even reading the clock.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        if !crate::enabled() {
            return f();
        }
        let t = std::time::Instant::now();
        let r = f();
        self.observe_duration(t.elapsed());
        r
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.max.load(Ordering::Relaxed)
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket holding the rank-`⌈q·count⌉` sample, clamped
    /// to the observed max. The estimate `e` for an exact quantile `x`
    /// satisfies `x ≤ e ≤ x + max(1, x/8)` (the bucket containing `x`
    /// has width ≤ 1/8 of its lower bound; DESIGN.md §10.3).
    ///
    /// Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// The standard reporting tuple: (p50, p90, p99, max).
    pub fn summary(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile(0.5),
            self.quantile(0.9),
            self.quantile(0.99),
            self.max(),
        )
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }
}

/// A drop guard that records the span's wall duration (µs) into a
/// histogram: `let _t = SpanTimer::start(&hist);`.
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: std::time::Instant,
}

impl<'a> SpanTimer<'a> {
    /// Start timing; the drop records.
    pub fn start(hist: &'a Histogram) -> Self {
        SpanTimer {
            hist,
            start: std::time::Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let _g = crate::testsync::recording();
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_consistent() {
        // Every value maps into a bucket whose bounds contain it, and
        // bucket indices never decrease with the value.
        let mut last = 0usize;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 17, u64::MAX / 2, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= last || v < 4096, "v={v}");
            if v >= 4096 {
                last = 0; // the chained probes are not ordered with the range
            } else {
                last = b;
            }
            assert!(bucket_upper(b) >= v, "v={v} upper={}", bucket_upper(b));
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "v={v} b={b}");
            }
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [8u64, 100, 1_000, 1_000_000, u64::MAX / 3] {
            let b = bucket_of(v);
            let width = bucket_upper(b) - if b == 0 { 0 } else { bucket_upper(b - 1) + 1 } + 1;
            assert!(width <= v / 8 + 1, "v={v} width={width}");
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let _g = crate::testsync::recording();
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), 10_000 * 10_001 / 2);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, exact) in [(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.quantile(q);
            assert!(est >= exact, "q={q} est={est} exact={exact}");
            assert!(
                est <= exact + exact / 8 + 1,
                "q={q} est={est} exact={exact}"
            );
        }
        // Extremes clamp to observed min/max region.
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.0) >= 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn span_timer_records_once() {
        let _g = crate::testsync::recording();
        let h = Histogram::new();
        {
            let _t = SpanTimer::start(&h);
            std::hint::black_box(3 + 4);
        }
        assert_eq!(h.count(), 1);
        let r = h.time(|| 42);
        assert_eq!(r, 42);
        assert_eq!(h.count(), 2);
    }
}
