//! The global metric registry and its Prometheus-style text
//! exposition.
//!
//! Registration is the cold path: consumer crates register each metric
//! once (typically inside a `OnceLock` initializer) and then hold the
//! returned `Arc` handle, so the serving path never touches the
//! registry lock. A metric is identified by its family name plus an
//! ordered list of `key="value"` labels; registering the same
//! (name, labels) pair twice returns the same underlying metric.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A metric's labels, rendered as `{k="v",k2="v2"}` (empty → no braces).
pub type Labels = Vec<(&'static str, String)>;

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One exposition family: every registered (labels → metric) series
/// sharing a name, plus the help line. Series render in label order.
struct Family {
    help: &'static str,
    series: BTreeMap<String, Metric>,
}

/// A collection of named metrics that can render itself as a text
/// exposition. Use [`registry()`] for the process-wide instance; tests
/// and per-session subsets can hold private ones.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

fn label_key(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        // Escape per the exposition grammar (DESIGN.md §10.2).
        let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(s, "{k}=\"{escaped}\"");
    }
    s.push('}');
    s
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register<M>(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
        wrap: impl Fn(Arc<M>) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<M>>,
        fresh: impl Fn() -> M,
    ) -> Arc<M> {
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        let key = label_key(&labels);
        if let Some(existing) = family.series.get(&key) {
            return unwrap(existing).unwrap_or_else(|| {
                panic!("metric {name}{key} already registered with a different type")
            });
        }
        let metric = Arc::new(fresh());
        family.series.insert(key, wrap(metric.clone()));
        metric
    }

    /// Register (or fetch) a counter series.
    pub fn counter(&self, name: &'static str, help: &'static str, labels: Labels) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::new,
        )
    }

    /// Register (or fetch) a gauge series.
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: Labels) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::new,
        )
    }

    /// Register (or fetch) a histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Labels,
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            labels,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::new,
        )
    }

    /// Render the Prometheus-style text exposition (DESIGN.md §10.2):
    /// `# HELP` / `# TYPE` headers per family, one sample line per
    /// series, histograms as summaries (`{quantile="…"}` lines plus
    /// `_count` / `_sum` / `_max`).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for (name, family) in families.iter() {
            let ty = match family.series.values().next() {
                Some(Metric::Counter(_)) => "counter",
                Some(Metric::Gauge(_)) => "gauge",
                Some(Metric::Histogram(_)) => "summary",
                None => continue,
            };
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {ty}");
            for (key, metric) in family.series.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{key} {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{key} {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let (p50, p90, p99, max) = h.summary();
                        for (q, v) in [("0.5", p50), ("0.9", p90), ("0.99", p99)] {
                            let ql = quantile_key(key, q);
                            let _ = writeln!(out, "{name}{ql} {v}");
                        }
                        let _ = writeln!(out, "{name}_max{key} {max}");
                        let _ = writeln!(out, "{name}_count{key} {}", h.count());
                        let _ = writeln!(out, "{name}_sum{key} {}", h.sum());
                    }
                }
            }
        }
        out
    }
}

/// Merge `quantile="q"` into an existing (possibly empty) label set.
fn quantile_key(key: &str, q: &str) -> String {
    if key.is_empty() {
        format!("{{quantile=\"{q}\"}}")
    } else {
        // key ends with '}'; splice before it.
        format!("{},quantile=\"{q}\"}}", &key[..key.len() - 1])
    }
}

/// The process-wide registry every instrumented crate registers into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_and_renders_all_types() {
        let _g = crate::testsync::recording();
        let r = Registry::new();
        let c = r.counter(
            "igp_test_requests_total",
            "requests",
            vec![("verb", "delta".into())],
        );
        c.add(3);
        let g = r.gauge("igp_test_depth", "queue depth", vec![]);
        g.set(5);
        let h = r.histogram("igp_test_latency_us", "latency", vec![]);
        h.observe(100);
        h.observe(200);
        let text = r.render();
        assert!(
            text.contains("# TYPE igp_test_requests_total counter"),
            "{text}"
        );
        assert!(
            text.contains("igp_test_requests_total{verb=\"delta\"} 3"),
            "{text}"
        );
        assert!(text.contains("# TYPE igp_test_depth gauge"), "{text}");
        assert!(text.contains("igp_test_depth 5"), "{text}");
        assert!(
            text.contains("# TYPE igp_test_latency_us summary"),
            "{text}"
        );
        assert!(
            text.contains("igp_test_latency_us{quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("igp_test_latency_us_count 2"), "{text}");
        assert!(text.contains("igp_test_latency_us_sum 300"), "{text}");
    }

    #[test]
    fn same_name_and_labels_returns_same_metric() {
        let r = Registry::new();
        let _g = crate::testsync::recording();
        let a = r.counter("igp_test_dup_total", "d", vec![("k", "v".into())]);
        let b = r.counter("igp_test_dup_total", "d", vec![("k", "v".into())]);
        a.inc();
        assert_eq!(b.get(), 1);
        // Different labels → different series.
        let c = r.counter("igp_test_dup_total", "d", vec![("k", "w".into())]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("igp_test_esc_total", "e", vec![("p", "a\"b\\c".into())]);
        let text = r.render();
        assert!(
            text.contains("igp_test_esc_total{p=\"a\\\"b\\\\c\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn quantile_label_merges_into_existing_labels() {
        let _g = crate::testsync::recording();
        let r = Registry::new();
        let h = r.histogram("igp_test_lbl_us", "l", vec![("backend", "shared".into())]);
        h.observe(7);
        let text = r.render();
        assert!(
            text.contains("igp_test_lbl_us{backend=\"shared\",quantile=\"0.5\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("igp_test_lbl_us_count{backend=\"shared\"} 1"),
            "{text}"
        );
    }
}
