//! Black-box diagnostic bundles (DESIGN.md §14.3).
//!
//! A bundle is one plain-text file: a `key: value` header (always
//! starting with the magic line and a `reason:`), then named sections
//! delimited by `--- section: <name> ---` markers, closed by a final
//! `--- end ---` line so a truncated dump is detectable. The daemon
//! writes one on panic and on SIGTERM/SIGINT (`igp-serve --diag-dir`);
//! [`validate`] is the shared parser the CLI (`igp-cli diag`) and CI
//! drills use to assert a dump is complete.

use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// First line of every bundle; bump the version if the format changes.
pub const DUMP_MAGIC: &str = "IGP-DIAG v1";

const SECTION_PREFIX: &str = "--- section: ";
const SECTION_SUFFIX: &str = " ---";
const END_MARKER: &str = "--- end ---";

/// Assembles one diagnostic bundle.
pub struct DumpBuilder {
    header: String,
    sections: Vec<(String, String)>,
}

impl DumpBuilder {
    /// Start a bundle for the given crash/kill reason.
    pub fn new(reason: &str) -> DumpBuilder {
        let mut b = DumpBuilder {
            header: format!("{DUMP_MAGIC}\n"),
            sections: Vec::new(),
        };
        b.kv("reason", &sanitize(reason));
        b.kv("pid", &std::process::id().to_string());
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        b.kv("unix_time", &unix.to_string());
        b
    }

    /// Append a `key: value` header line (single line; newlines in the
    /// value are flattened).
    pub fn kv(&mut self, key: &str, value: &str) -> &mut DumpBuilder {
        self.header
            .push_str(&format!("{key}: {}\n", sanitize(value)));
        self
    }

    /// Append a named section with a free-form body.
    pub fn section(&mut self, name: &str, body: &str) -> &mut DumpBuilder {
        self.sections.push((name.to_string(), body.to_string()));
        self
    }

    /// The full bundle text.
    pub fn render(&self) -> String {
        let mut out = self.header.clone();
        for (name, body) in &self.sections {
            out.push_str(&format!("{SECTION_PREFIX}{name}{SECTION_SUFFIX}\n"));
            out.push_str(body);
            if !body.ends_with('\n') {
                out.push('\n');
            }
        }
        out.push_str(END_MARKER);
        out.push('\n');
        out
    }

    /// Write the bundle to a fresh uniquely-named file under `dir`
    /// (created if missing) and fsync it — a crash-time artifact that
    /// itself vanished in the crash would be useless.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(dir)?;
        let pid = std::process::id();
        loop {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("igp-diag-{pid}-{n}.txt"));
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(self.render().as_bytes())?;
                    f.sync_all()?;
                    return Ok(path);
                }
                // A previous run of this pid left the name behind
                // (counter restarted): take the next sequence number.
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

fn sanitize(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// What [`validate`] extracts from a well-formed bundle.
#[derive(Debug)]
pub struct DumpSummary {
    /// The `reason:` header value.
    pub reason: String,
    /// Section names with their body sizes in bytes, in file order.
    pub sections: Vec<(String, usize)>,
}

/// Parse and structurally validate a bundle: magic first line, a
/// `reason:` header, well-formed section markers, and the closing end
/// marker (so truncation fails validation).
pub fn validate(text: &str) -> Result<DumpSummary, String> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == DUMP_MAGIC => {}
        Some(l) => return Err(format!("bad magic line `{l}` (want `{DUMP_MAGIC}`)")),
        None => return Err("empty dump".to_string()),
    }
    let mut reason = None;
    let mut sections: Vec<(String, usize)> = Vec::new();
    let mut in_header = true;
    let mut ended = false;
    for line in lines {
        if ended {
            return Err(format!("content after `{END_MARKER}`: `{line}`"));
        }
        if line == END_MARKER {
            ended = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix(SECTION_PREFIX) {
            let Some(name) = rest.strip_suffix(SECTION_SUFFIX) else {
                return Err(format!("malformed section marker `{line}`"));
            };
            in_header = false;
            sections.push((name.to_string(), 0));
            continue;
        }
        if in_header {
            let Some((k, v)) = line.split_once(": ") else {
                return Err(format!("malformed header line `{line}`"));
            };
            if k == "reason" {
                reason = Some(v.to_string());
            }
        } else if let Some(last) = sections.last_mut() {
            last.1 += line.len() + 1;
        }
    }
    if !ended {
        return Err(format!("truncated dump: no `{END_MARKER}`"));
    }
    let reason = reason.ok_or("missing `reason:` header")?;
    Ok(DumpSummary { reason, sections })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_renders_and_validates() {
        let mut b = DumpBuilder::new("signal SIGTERM");
        b.kv("version", "1.2.3");
        b.section("watchdog", "status ok\nloop ok busy_us=0\n");
        b.section("metrics", "# HELP x y\n# TYPE x counter\nx 1\n");
        let text = b.render();
        let s = validate(&text).expect("valid");
        assert_eq!(s.reason, "signal SIGTERM");
        assert_eq!(s.sections.len(), 2);
        assert_eq!(s.sections[0].0, "watchdog");
        assert_eq!(s.sections[1].0, "metrics");
        assert!(s.sections.iter().all(|(_, n)| *n > 0));
    }

    #[test]
    fn truncated_dump_fails_validation() {
        let mut b = DumpBuilder::new("panic: boom");
        b.section("traces", "t\n");
        let text = b.render();
        let cut = &text[..text.len() - END_MARKER.len() - 1];
        assert!(validate(cut).unwrap_err().contains("truncated"));
    }

    #[test]
    fn bad_magic_and_missing_reason_fail() {
        assert!(validate("nope\n--- end ---\n").is_err());
        let no_reason = format!("{DUMP_MAGIC}\npid: 1\n{END_MARKER}\n");
        assert!(validate(&no_reason).unwrap_err().contains("reason"));
    }

    #[test]
    fn newlines_in_reason_are_flattened() {
        let b = DumpBuilder::new("multi\nline");
        let s = validate(&b.render()).expect("valid");
        assert_eq!(s.reason, "multi line");
    }

    #[test]
    fn write_to_creates_unique_files() {
        let dir = std::env::temp_dir().join(format!("igp-dump-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut b = DumpBuilder::new("test");
        b.section("s", "body\n");
        let p1 = b.write_to(&dir).expect("write");
        let p2 = b.write_to(&dir).expect("write");
        assert_ne!(p1, p2);
        let text = std::fs::read_to_string(&p1).expect("read");
        validate(&text).expect("valid on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
