//! Liveness watchdogs and the process health model (DESIGN.md §14.2).
//!
//! Two primitives feed a [`Watchdog`]:
//!
//! * [`HealthCell`] — a *busy-since* heartbeat for components that
//!   alternate between parked and working (the event loop around its
//!   poll wait, each pool worker around its current job, the store
//!   around a WAL append). The component stamps [`HealthCell::busy`]
//!   when it starts working and [`HealthCell::idle`] when it parks; a
//!   busy period that outlives the cell's bar is a **stall**. Stalls
//!   are sticky: after the component resumes, the cell keeps reporting
//!   `degraded` for as long as the stall itself lasted (clamped), so a
//!   checker that could not run *during* the stall — the `/healthz`
//!   handler lives on the very loop being watched — still observes it.
//! * [`FreshnessCell`] — a *last-success* heartbeat for periodic work
//!   (the follower's replication tick). The component stamps
//!   [`FreshnessCell::stamp`] on success; health decays with the age
//!   of the newest stamp.
//!
//! A [`Watchdog`] owns a named set of cells and renders per-component
//! verdicts plus an overall state: `ok` < `degraded` < `unhealthy`.
//! Verdict thresholds are per-cell bars; `unhealthy` fires at 4× the
//! bar (`FAIL_FACTOR`). All stamping is one relaxed atomic store and is
//! *not* gated by the metrics kill switch — health must stay accurate
//! while instrumentation is priced out.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A busy period (or freshness age) this many times over the bar flips
/// the verdict from `degraded` to `unhealthy`.
const FAIL_FACTOR: u64 = 4;

/// Longest time a finished stall keeps its component `degraded`.
const MAX_STALL_HOLD: Duration = Duration::from_secs(10);

/// Microseconds since the process-wide health epoch; never 0 (0 is the
/// "idle"/"never" sentinel in the cells).
fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64 + 1
}

/// Component (and overall) health verdict, ordered by severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Working within its bar.
    Ok,
    /// Stalled past the bar (or recently recovered from a stall).
    Degraded,
    /// Stalled past `FAIL_FACTOR`× the bar, or explicitly failed.
    Unhealthy,
}

impl HealthState {
    /// The wire token (`ok` / `degraded` / `unhealthy`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Unhealthy => "unhealthy",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Busy-since heartbeat cell; see the module docs for the model.
pub struct HealthCell {
    /// Stall bar in µs (settable so a server option can retune it).
    bar_us: AtomicU64,
    /// When the current busy period started; 0 = idle (parked).
    busy_since_us: AtomicU64,
    /// A finished stall keeps the verdict degraded until this instant.
    stall_hold_until_us: AtomicU64,
    /// Duration of the most recent stall (µs).
    last_stall_us: AtomicU64,
    /// Busy periods that exceeded the bar.
    stalls_total: AtomicU64,
    /// Explicit failure ([`HealthCell::note_failure`]) holds the
    /// verdict at unhealthy until this instant.
    fail_until_us: AtomicU64,
}

impl HealthCell {
    /// A new idle cell with the given stall bar.
    pub fn new(bar: Duration) -> Arc<HealthCell> {
        Arc::new(HealthCell {
            bar_us: AtomicU64::new(bar.as_micros().max(1) as u64),
            busy_since_us: AtomicU64::new(0),
            stall_hold_until_us: AtomicU64::new(0),
            last_stall_us: AtomicU64::new(0),
            stalls_total: AtomicU64::new(0),
            fail_until_us: AtomicU64::new(0),
        })
    }

    /// Retune the stall bar.
    pub fn set_bar(&self, bar: Duration) {
        self.bar_us
            .store(bar.as_micros().max(1) as u64, Ordering::Relaxed);
    }

    /// The component started working.
    #[inline]
    pub fn busy(&self) {
        self.busy_since_us.store(now_us(), Ordering::Relaxed);
    }

    /// The component parked; a busy period past the bar is recorded as
    /// a stall and holds the verdict degraded for the stall's own
    /// duration (clamped to `MAX_STALL_HOLD`).
    #[inline]
    pub fn idle(&self) {
        let since = self.busy_since_us.swap(0, Ordering::Relaxed);
        if since == 0 {
            return;
        }
        let now = now_us();
        let dur = now.saturating_sub(since);
        if dur >= self.bar_us.load(Ordering::Relaxed) {
            let hold = dur.min(MAX_STALL_HOLD.as_micros() as u64);
            self.last_stall_us.store(dur, Ordering::Relaxed);
            self.stall_hold_until_us
                .store(now + hold, Ordering::Relaxed);
            self.stalls_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Report an external failure: the verdict is `unhealthy` for
    /// `hold` from now (e.g. the store cell on a journaling error).
    pub fn note_failure(&self, hold: Duration) {
        self.fail_until_us
            .store(now_us() + hold.as_micros() as u64, Ordering::Relaxed);
    }

    /// Busy periods that exceeded the bar so far.
    pub fn stalls(&self) -> u64 {
        self.stalls_total.load(Ordering::Relaxed)
    }

    fn verdict(&self, now: u64) -> (HealthState, String) {
        let bar = self.bar_us.load(Ordering::Relaxed);
        let since = self.busy_since_us.load(Ordering::Relaxed);
        let busy = if since == 0 {
            0
        } else {
            now.saturating_sub(since)
        };
        let stalls = self.stalls_total.load(Ordering::Relaxed);
        let state = if now < self.fail_until_us.load(Ordering::Relaxed)
            || busy >= bar.saturating_mul(FAIL_FACTOR)
        {
            HealthState::Unhealthy
        } else if busy >= bar || now < self.stall_hold_until_us.load(Ordering::Relaxed) {
            HealthState::Degraded
        } else {
            HealthState::Ok
        };
        let mut detail = format!("busy_us={busy} bar_us={bar} stalls={stalls}");
        if state != HealthState::Ok && busy < bar {
            detail.push_str(&format!(
                " last_stall_us={}",
                self.last_stall_us.load(Ordering::Relaxed)
            ));
        }
        (state, detail)
    }
}

/// Last-success heartbeat cell for periodic work; see the module docs.
pub struct FreshnessCell {
    bar_us: AtomicU64,
    /// When the work last succeeded; 0 = never.
    last_ok_us: AtomicU64,
    /// The periodic work was deliberately stopped: report `ok` forever
    /// (a promoted follower's replication tick is *supposed* to be
    /// silent, not late).
    retired: AtomicBool,
}

impl FreshnessCell {
    /// A new never-stamped cell: `degraded` until the first success.
    pub fn new(bar: Duration) -> Arc<FreshnessCell> {
        Arc::new(FreshnessCell {
            bar_us: AtomicU64::new(bar.as_micros().max(1) as u64),
            last_ok_us: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        })
    }

    /// The periodic work has been shut down on purpose; the verdict is
    /// `ok` from here on. Irreversible.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Relaxed);
    }

    /// Retune the freshness bar.
    pub fn set_bar(&self, bar: Duration) {
        self.bar_us
            .store(bar.as_micros().max(1) as u64, Ordering::Relaxed);
    }

    /// The periodic work just succeeded.
    #[inline]
    pub fn stamp(&self) {
        self.last_ok_us.store(now_us(), Ordering::Relaxed);
    }

    /// Age of the newest stamp; `None` if never stamped.
    pub fn age(&self) -> Option<Duration> {
        let last = self.last_ok_us.load(Ordering::Relaxed);
        (last != 0).then(|| Duration::from_micros(now_us().saturating_sub(last)))
    }

    fn verdict(&self, now: u64) -> (HealthState, String) {
        if self.retired.load(Ordering::Relaxed) {
            return (HealthState::Ok, "retired=1".to_string());
        }
        let bar = self.bar_us.load(Ordering::Relaxed);
        let last = self.last_ok_us.load(Ordering::Relaxed);
        if last == 0 {
            return (HealthState::Degraded, format!("age_us=never bar_us={bar}"));
        }
        let age = now.saturating_sub(last);
        let state = if age >= bar.saturating_mul(FAIL_FACTOR) {
            HealthState::Unhealthy
        } else if age >= bar {
            HealthState::Degraded
        } else {
            HealthState::Ok
        };
        (state, format!("age_us={age} bar_us={bar}"))
    }
}

enum Probe {
    Busy(Arc<HealthCell>),
    Fresh(Arc<FreshnessCell>),
}

struct Component {
    name: String,
    probe: Probe,
}

/// A named set of heartbeat cells with one overall verdict.
///
/// Each daemon owns its own watchdog (they are not process-global, so
/// in-process test fleets do not cross-contaminate); the `/healthz`
/// handler, `STAT`, and the diagnostic dump all render through
/// [`Watchdog::check`].
#[derive(Default)]
pub struct Watchdog {
    components: Mutex<Vec<Component>>,
}

impl Watchdog {
    pub fn new() -> Watchdog {
        Watchdog::default()
    }

    /// Register a busy-since component under `name`.
    pub fn register_cell(&self, name: &str, cell: Arc<HealthCell>) {
        self.components
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Component {
                name: name.to_string(),
                probe: Probe::Busy(cell),
            });
    }

    /// Register a freshness component under `name`.
    pub fn register_freshness(&self, name: &str, cell: Arc<FreshnessCell>) {
        self.components
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Component {
                name: name.to_string(),
                probe: Probe::Fresh(cell),
            });
    }

    /// Evaluate every component now.
    pub fn check(&self) -> HealthReport {
        let now = now_us();
        let comps = self.components.lock().unwrap_or_else(|p| p.into_inner());
        let mut overall = HealthState::Ok;
        let components = comps
            .iter()
            .map(|c| {
                let (state, detail) = match &c.probe {
                    Probe::Busy(cell) => cell.verdict(now),
                    Probe::Fresh(cell) => cell.verdict(now),
                };
                overall = overall.max(state);
                ComponentHealth {
                    name: c.name.clone(),
                    state,
                    detail,
                }
            })
            .collect();
        HealthReport {
            overall,
            components,
        }
    }
}

/// One component's verdict at check time.
pub struct ComponentHealth {
    /// Registration name (`loop`, `worker-0`, `store`, `repl`, …).
    pub name: String,
    pub state: HealthState,
    /// `key=value` detail tokens (`busy_us=… bar_us=… stalls=…`).
    pub detail: String,
}

/// A full watchdog evaluation.
pub struct HealthReport {
    /// The worst component state ([`HealthState::Ok`] when empty).
    pub overall: HealthState,
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// Wire rendering: `status <overall>` then one
    /// `<name> <state> <detail…>` line per component.
    pub fn render(&self) -> String {
        let mut out = format!("status {}\n", self.overall);
        for c in &self.components {
            out.push_str(&format!("{} {} {}\n", c.name, c.state, c.detail));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn idle_cell_is_ok() {
        let cell = HealthCell::new(Duration::from_millis(10));
        let wd = Watchdog::new();
        wd.register_cell("loop", cell.clone());
        let r = wd.check();
        assert_eq!(r.overall, HealthState::Ok);
        assert!(
            r.render().starts_with("status ok\nloop ok "),
            "{}",
            r.render()
        );
    }

    #[test]
    fn busy_past_bar_degrades_then_fails() {
        let cell = HealthCell::new(Duration::from_millis(5));
        let wd = Watchdog::new();
        wd.register_cell("w", cell.clone());
        cell.busy();
        std::thread::sleep(Duration::from_millis(8));
        assert_eq!(wd.check().overall, HealthState::Degraded);
        std::thread::sleep(Duration::from_millis(15)); // past 4× the bar
        assert_eq!(wd.check().overall, HealthState::Unhealthy);
    }

    #[test]
    fn finished_stall_holds_degraded_then_recovers() {
        let cell = HealthCell::new(Duration::from_millis(5));
        let wd = Watchdog::new();
        wd.register_cell("w", cell.clone());
        cell.busy();
        std::thread::sleep(Duration::from_millis(20));
        cell.idle();
        assert_eq!(cell.stalls(), 1);
        // The stall lasted ~20ms, so the hold keeps us degraded…
        assert_eq!(wd.check().overall, HealthState::Degraded);
        // …and expires after roughly the stall's own duration.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(wd.check().overall, HealthState::Ok);
    }

    #[test]
    fn short_busy_periods_never_stall() {
        let cell = HealthCell::new(Duration::from_millis(50));
        cell.busy();
        cell.idle();
        assert_eq!(cell.stalls(), 0);
        let wd = Watchdog::new();
        wd.register_cell("w", cell);
        assert_eq!(wd.check().overall, HealthState::Ok);
    }

    #[test]
    fn explicit_failure_is_unhealthy_until_hold_expires() {
        let cell = HealthCell::new(Duration::from_millis(50));
        cell.note_failure(Duration::from_millis(15));
        let wd = Watchdog::new();
        wd.register_cell("store", cell);
        assert_eq!(wd.check().overall, HealthState::Unhealthy);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(wd.check().overall, HealthState::Ok);
    }

    #[test]
    fn freshness_decays_with_age() {
        let cell = FreshnessCell::new(Duration::from_millis(10));
        let wd = Watchdog::new();
        wd.register_freshness("repl", cell.clone());
        // Never stamped: degraded, not ok.
        assert_eq!(wd.check().overall, HealthState::Degraded);
        cell.stamp();
        assert_eq!(wd.check().overall, HealthState::Ok);
        assert!(cell.age().unwrap() < Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(wd.check().overall, HealthState::Degraded);
        std::thread::sleep(Duration::from_millis(30)); // past 4× the bar
        assert_eq!(wd.check().overall, HealthState::Unhealthy);
        // Deliberately stopped work is not late work: retired = ok,
        // no matter how stale the last stamp is.
        cell.retire();
        let r = wd.check();
        assert_eq!(r.overall, HealthState::Ok);
        assert!(r.render().contains("repl ok retired=1"), "{}", r.render());
    }

    #[test]
    fn overall_is_worst_component() {
        let ok = HealthCell::new(Duration::from_secs(10));
        let bad = HealthCell::new(Duration::from_micros(1));
        bad.busy();
        std::thread::sleep(Duration::from_millis(2));
        let wd = Watchdog::new();
        wd.register_cell("a", ok);
        wd.register_cell("b", bad.clone());
        let r = wd.check();
        assert_eq!(r.overall, HealthState::Unhealthy);
        assert_eq!(r.components.len(), 2);
        assert_eq!(r.components[0].state, HealthState::Ok);
        assert_eq!(r.components[1].state, HealthState::Unhealthy);
        bad.idle();
    }
}
