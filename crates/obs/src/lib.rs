//! igp-obs: the observability substrate for the IGP serving stack.
//!
//! Dependency-free (std only), in the same vendored-stub spirit as the
//! workspace's `rand`/`rayon` stand-ins: every crate in the serving
//! path links this, so it must stay tiny and pull nothing in.
//!
//! Four pieces:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`], [`SpanTimer`])
//!   registered into the process-wide [`registry()`], which renders a
//!   Prometheus-style text exposition for the daemon's `METRICS` verb.
//!   Recording is lock-free (relaxed atomics) and respects a global
//!   kill switch ([`set_enabled`]) so benches can price the
//!   instrumentation itself.
//! - **Structured logging** ([`error!`], [`warn!`], [`info!`],
//!   [`debug!`]) with a global `--log-level` gate, per-target
//!   overrides, and a per-thread context prefix ([`set_log_ctx`]) so
//!   interleaved daemon lines stay attributable; lines are
//!   `LEVEL target [ctx] message key=value ...`.
//! - **Span timers** ([`SpanTimer`]) that feed wall-clock durations
//!   (µs) into histograms on drop.
//! - **Request tracing** ([`trace::Span`]) recording causal span trees
//!   into per-thread ring-buffer flight recorders, rendered by the
//!   daemon's `TRACE DUMP` verb and the slow-request log
//!   ([`trace::set_slow_threshold_us`]).
//! - **Liveness watchdogs** ([`health::Watchdog`]) — busy-since and
//!   freshness heartbeat cells with per-component stall bars, feeding
//!   the daemon's `/healthz`/`/readyz` endpoints — and **black-box
//!   dumps** ([`health`], [`dump`]): the crash-time bundle the daemon
//!   writes on panic or SIGTERM.
//!
//! Metric naming follows DESIGN.md §10.1: `igp_<layer>_<what>_<unit>`,
//! with time histograms in microseconds (`_us`) and counts as
//! `_total`.

pub mod dump;
pub mod health;
mod log;
mod metrics;
mod registry;
pub mod trace;

pub use log::{
    current_log_ctx, log_enabled, max_level, set_log_ctx, set_max_level, set_target_level,
    write_log, Level, LogCtxGuard,
};
pub use metrics::{Counter, Gauge, Histogram, SpanTimer};
pub use registry::{registry, Labels, Registry};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global metrics kill switch. On by default; benches flip it off to
/// measure the serving path with instrumentation inert.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is metric recording enabled? One relaxed load; checked inside every
/// `Counter::add` / `Gauge::set` / `Histogram::observe`.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn metric recording on or off process-wide. Reads (rendering,
/// `get()`, quantiles) always work; only recording is gated.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Unit tests share one process and `ENABLED` is global, so tests that
/// record take the read lock (keeping it on) and the kill-switch test
/// takes the write lock while it toggles.
#[cfg(test)]
pub(crate) mod testsync {
    use std::sync::RwLock;

    static LOCK: RwLock<()> = RwLock::new(());

    pub fn recording() -> std::sync::RwLockReadGuard<'static, ()> {
        let g = LOCK.read().unwrap_or_else(|e| e.into_inner());
        crate::set_enabled(true);
        g
    }

    pub fn exclusive() -> std::sync::RwLockWriteGuard<'static, ()> {
        LOCK.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn kill_switch_gates_recording() {
        let _g = crate::testsync::exclusive();
        let c = crate::Counter::new();
        crate::set_enabled(false);
        c.inc();
        let off = c.get();
        crate::set_enabled(true);
        c.inc();
        assert_eq!(c.get(), off + 1);
        assert_eq!(off, 0);
    }
}
