//! Leveled structured logging.
//!
//! Lines go to stderr as `LEVEL target message key=value ...`. The
//! global max level is a single relaxed atomic load on the fast path;
//! per-target overrides (set once at startup) let a user silence or
//! amplify one subsystem. The [`error!`], [`warn!`], [`info!`] and
//! [`debug!`] macros are the only intended entry points:
//!
//! ```
//! igp_obs::info!(target: "serve", "listening"; addr = "127.0.0.1:7171");
//! ```

use std::cell::RefCell;
use std::io::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log severity, ordered: `Error < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what was asked.
    Error = 0,
    /// Something recoverable went wrong (e.g. WAL tail truncated).
    Warn = 1,
    /// Normal lifecycle events (startup, shutdown, recovery summary).
    Info = 2,
    /// Per-request detail; off by default.
    Debug = 3,
}

impl Level {
    /// Fixed-width upper-case name for line prefixes.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    /// Parse a `--log-level` argument.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Global max level; `Info` by default.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set when any target override exists, so the common no-override case
/// never touches the lock.
static HAS_OVERRIDES: AtomicBool = AtomicBool::new(false);

/// Per-target overrides, set once at startup.
fn overrides() -> &'static Mutex<Vec<(String, Level)>> {
    static OVERRIDES: OnceLock<Mutex<Vec<(String, Level)>>> = OnceLock::new();
    OVERRIDES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Set the global max level (the `--log-level` switch).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Current global max level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Override the max level for one target (e.g. silence `"store"` while
/// debugging `"serve"`). Call at startup; later calls replace earlier
/// ones for the same target.
pub fn set_target_level(target: &str, level: Level) {
    let mut ov = overrides().lock().unwrap();
    if let Some(entry) = ov.iter_mut().find(|(t, _)| t == target) {
        entry.1 = level;
    } else {
        ov.push((target.to_string(), level));
    }
    HAS_OVERRIDES.store(true, Ordering::Release);
}

/// Would a line at `level` for `target` be emitted?
#[inline]
pub fn log_enabled(level: Level, target: &str) -> bool {
    // Fast path: global gate, one relaxed load; the override lock is
    // only taken when an override was ever installed.
    let global_ok = level as u8 <= MAX_LEVEL.load(Ordering::Relaxed);
    if !HAS_OVERRIDES.load(Ordering::Acquire) {
        return global_ok;
    }
    let ov = overrides().lock().unwrap();
    match ov.iter().find(|(t, _)| t == target) {
        Some((_, l)) => level <= *l,
        None => global_ok,
    }
}

thread_local! {
    /// Per-thread log context, prefixed into every line the thread
    /// emits (e.g. `conn=7 sid=s1 trace=0x…`). A single reused buffer:
    /// [`set_log_ctx`] clears and rewrites it in place, so the steady
    /// state allocates nothing.
    static LOG_CTX: RefCell<String> = const { RefCell::new(String::new()) };
}

/// Restores the thread's previous log context on drop. `!Send`: the
/// guard must drop on the thread whose context it replaced.
pub struct LogCtxGuard {
    prev: String,
    _not_send: PhantomData<*const ()>,
}

impl Drop for LogCtxGuard {
    fn drop(&mut self) {
        let _ = LOG_CTX.try_with(|c| {
            let mut cur = c.borrow_mut();
            cur.clear();
            cur.push_str(&self.prev);
        });
    }
}

/// Install a log context for the calling thread until the guard drops:
/// every line this thread logs gains the context between the target and
/// the message. Contexts nest — the guard restores what it replaced.
///
/// ```
/// let _ctx = igp_obs::set_log_ctx(format_args!("conn={} sid={}", 7, "s1"));
/// igp_obs::info!(target: "serve", "queued"); // INFO  serve conn=7 sid=s1 queued
/// ```
pub fn set_log_ctx(args: std::fmt::Arguments<'_>) -> LogCtxGuard {
    use std::fmt::Write as _;
    let prev = LOG_CTX.with(|c| {
        let mut cur = c.borrow_mut();
        // The previous context is usually empty, so the clone does not
        // allocate; clearing (not replacing) the buffer keeps its
        // capacity, so rewriting it each request allocates nothing in
        // the steady state.
        let prev = cur.clone();
        cur.clear();
        let _ = cur.write_fmt(args);
        prev
    });
    LogCtxGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// The calling thread's current log context ("" when none is set).
pub fn current_log_ctx() -> String {
    LOG_CTX.with(|c| c.borrow().clone())
}

/// Emit one line. Not for direct use — go through the macros, which
/// check [`log_enabled`] before formatting.
pub fn write_log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    let stderr = std::io::stderr();
    let mut out = stderr.lock();
    // A single write_fmt keeps the line atomic across threads. try_with
    // covers logging from TLS destructors during thread teardown.
    let _ = LOG_CTX
        .try_with(|c| {
            let ctx = c.borrow();
            if ctx.is_empty() {
                out.write_fmt(format_args!("{:5} {} {}\n", level.as_str(), target, args))
            } else {
                out.write_fmt(format_args!(
                    "{:5} {} {} {}\n",
                    level.as_str(),
                    target,
                    ctx,
                    args
                ))
            }
        })
        .unwrap_or_else(|_| {
            out.write_fmt(format_args!("{:5} {} {}\n", level.as_str(), target, args))
        });
}

/// Log at [`Level::Error`]: `error!(target: "serve", "msg"; key = val, ...)`.
#[macro_export]
macro_rules! error {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Error, $target, $($rest)*)
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Warn, $target, $($rest)*)
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Info, $target, $($rest)*)
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    (target: $target:expr, $($rest:tt)*) => {
        $crate::log_at!($crate::Level::Debug, $target, $($rest)*)
    };
}

/// Shared body of the level macros; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! log_at {
    ($level:expr, $target:expr, $msg:expr) => {
        if $crate::log_enabled($level, $target) {
            $crate::write_log($level, $target, format_args!("{}", $msg));
        }
    };
    ($level:expr, $target:expr, $msg:expr; $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::log_enabled($level, $target) {
            $crate::write_log(
                $level,
                $target,
                format_args!(
                    concat!("{}", $(concat!(" ", stringify!($key), "={}")),+),
                    $msg, $($value),+
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests below mutate the process-global level; serialize them.
    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn global_gate_filters() {
        let _g = global_lock();
        set_max_level(Level::Warn);
        assert!(log_enabled(Level::Error, "t_gate"));
        assert!(log_enabled(Level::Warn, "t_gate"));
        assert!(!log_enabled(Level::Info, "t_gate"));
        set_max_level(Level::Info);
        assert!(log_enabled(Level::Info, "t_gate"));
        assert!(!log_enabled(Level::Debug, "t_gate"));
    }

    #[test]
    fn target_override_beats_global() {
        let _g = global_lock();
        set_max_level(Level::Info);
        set_target_level("t_noisy", Level::Error);
        set_target_level("t_verbose", Level::Debug);
        assert!(!log_enabled(Level::Info, "t_noisy"));
        assert!(log_enabled(Level::Error, "t_noisy"));
        assert!(log_enabled(Level::Debug, "t_verbose"));
        // Replacing an override works.
        set_target_level("t_noisy", Level::Debug);
        assert!(log_enabled(Level::Debug, "t_noisy"));
    }

    #[test]
    fn log_ctx_nests_and_restores() {
        assert_eq!(current_log_ctx(), "");
        {
            let _outer = set_log_ctx(format_args!("conn={}", 7));
            assert_eq!(current_log_ctx(), "conn=7");
            {
                let _inner = set_log_ctx(format_args!("conn={} sid={}", 7, "s1"));
                assert_eq!(current_log_ctx(), "conn=7 sid=s1");
            }
            assert_eq!(current_log_ctx(), "conn=7");
        }
        assert_eq!(current_log_ctx(), "");
    }

    #[test]
    fn log_ctx_is_per_thread() {
        let _ctx = set_log_ctx(format_args!("conn=main"));
        std::thread::spawn(|| {
            assert_eq!(current_log_ctx(), "");
            let _ctx = set_log_ctx(format_args!("conn=other"));
            assert_eq!(current_log_ctx(), "conn=other");
        })
        .join()
        .unwrap();
        assert_eq!(current_log_ctx(), "conn=main");
    }

    #[test]
    fn macros_compile_with_and_without_fields() {
        let _g = global_lock();
        set_max_level(Level::Error); // keep test output quiet
        crate::info!(target: "t_macro", "plain message");
        crate::warn!(target: "t_macro", "msg"; code = 7, path = "/tmp/x");
        crate::debug!(target: "t_macro", format!("built {}", 1); n = 2);
        crate::error!(target: "t_macro", "trailing comma"; a = 1,);
        set_max_level(Level::Info);
    }
}
