//! Request-scoped tracing: causal spans feeding a per-thread
//! ring-buffer **flight recorder**.
//!
//! A trace is a tree of spans sharing one trace id. The serving layer
//! mints a root span per request ([`Span::root_from`]); every layer a
//! request crosses opens a child ([`Span::child`], [`Span::ambient`])
//! whose drop records `(trace, span, parent, name, start, dur, detail)`
//! into the calling thread's ring. Context crosses threads either
//! explicitly (a [`TraceCtx`] captured into a pool job) or implicitly
//! through the per-thread ambient context ([`Span::enter`]), which is
//! how store-layer hooks attach without the store knowing about
//! requests.
//!
//! The recorder is built for an always-on hot path:
//!
//! - **Zero allocation**: a record is a fixed 64-byte struct; names are
//!   `&'static str` stored as raw `(ptr, len)` words.
//! - **Lock-free**: each thread owns a fixed ring ([`RING_CAP`] slots,
//!   overwrite-oldest) and is its only writer. Readers (the `TRACE
//!   DUMP` verb) validate each slot with a crossbeam-style seqlock —
//!   odd sequence = write in progress, changed sequence = torn read —
//!   and simply discard invalid slots.
//! - **Kill-switch-aware**: recording requires both the global obs
//!   switch ([`crate::enabled`]) and the trace switch
//!   ([`set_trace_enabled`]), so the bench can price tracing alone.
//!   A disabled span is inert: no ids, no clock reads, no record.
//!
//! Completed root spans additionally push their trace id into a global
//! completed-ring so [`render_traces`] can show the most recent *whole*
//! traces, and optionally feed the **slow-request log**
//! ([`set_slow_threshold_us`]): a root exceeding the threshold emits a
//! structured `warn!` with the full span breakdown.
//!
//! Memory bound: rings exist only on threads that record spans (the
//! event loop, the pool workers, the replication poller), each
//! `RING_CAP * 64 B` = 128 KiB.

use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// Slots per thread ring; at 64 B/slot this is 128 KiB per recording
/// thread, enough for several hundred recent traces.
pub const RING_CAP: usize = 2048;

/// Capacity of the completed-trace id ring (`TRACE DUMP` look-back).
pub const COMPLETED_CAP: usize = 1024;

/// Trace recording switch, independent of the metrics switch so the
/// A/B bench can measure tracing with metrics still on.
static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Slow-request threshold in µs; 0 disables the slow log.
static SLOW_US: AtomicU64 = AtomicU64::new(0);

/// Is span recording active? Requires both the global obs switch and
/// the trace switch; one relaxed load each.
#[inline]
pub fn recording() -> bool {
    crate::enabled() && TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on or off process-wide (dumps still work).
pub fn set_trace_enabled(on: bool) {
    TRACE_ENABLED.store(on, Ordering::Relaxed);
}

/// Configure the slow-request log: a root span whose duration reaches
/// `threshold_us` emits a `warn!(target: "trace")` with its span
/// breakdown. 0 (the default) disables it.
pub fn set_slow_threshold_us(threshold_us: u64) {
    SLOW_US.store(threshold_us, Ordering::Relaxed);
}

/// Current slow-request threshold (µs); 0 = disabled.
pub fn slow_threshold_us() -> u64 {
    SLOW_US.load(Ordering::Relaxed)
}

/// Render a trace id the way dumps and logs do (`0x`-prefixed, zero
/// padded so ids align in columns).
pub fn fmt_trace_id(id: u64) -> String {
    format!("{id:#018x}")
}

// ---------------------------------------------------------------------------
// Ids and the time base
// ---------------------------------------------------------------------------

/// Mint a non-zero id (shared counter for trace and span ids; 0 is the
/// "no parent" sentinel). Seeded from wall-clock nanos mixed through
/// the golden-ratio multiplier so two daemons started independently
/// draw from far-apart ranges — a follower adopts primary trace ids
/// verbatim, and colliding with its own locally-minted ids would merge
/// unrelated trees in a dump.
fn next_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        AtomicU64::new(nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    });
    loop {
        let id = next.fetch_add(1, Ordering::Relaxed);
        if id != 0 {
            return id;
        }
    }
}

/// Process-wide time origin; span start times are µs since this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn us_since_epoch(at: Instant) -> u64 {
    at.saturating_duration_since(epoch()).as_micros() as u64
}

/// Trace context: the pair a child span needs — which trace it belongs
/// to and which span is its parent. `Copy` so it travels into pool-job
/// closures and across the replication wire (as the bare `trace` id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id shared by every span in the tree.
    pub trace: u64,
    /// Span id of the would-be parent.
    pub span: u64,
}

// ---------------------------------------------------------------------------
// Ambient context (per-thread)
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The calling thread's ambient trace context, if a span is entered.
pub fn ambient() -> Option<TraceCtx> {
    AMBIENT.with(Cell::get)
}

/// The calling thread's ambient trace id (for stamping wire replies).
pub fn current_trace_id() -> Option<u64> {
    ambient().map(|c| c.trace)
}

/// Restores the previous ambient context on drop. `!Send`: the guard
/// must drop on the thread that created it.
pub struct AmbientGuard {
    prev: Option<TraceCtx>,
    restore: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        if self.restore {
            AMBIENT.with(|a| a.set(self.prev));
        }
    }
}

/// Install `ctx` as the thread's ambient context until the guard
/// drops. A `None` ctx is a no-op guard (disabled span entered).
pub fn enter(ctx: Option<TraceCtx>) -> AmbientGuard {
    match ctx {
        Some(c) => AmbientGuard {
            prev: AMBIENT.with(|a| a.replace(Some(c))),
            restore: true,
            _not_send: PhantomData,
        },
        None => AmbientGuard {
            prev: None,
            restore: false,
            _not_send: PhantomData,
        },
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct Inner {
    trace: u64,
    span: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    detail: u64,
}

/// A live span: drop records it. Disabled spans (`inner: None`) cost
/// nothing and produce nothing — every constructor checks
/// [`recording`] first, so call sites need no gating of their own.
pub struct Span {
    inner: Option<Inner>,
}

impl Span {
    /// A span that records nothing (the off-switch value).
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// Mint a fresh trace with this span as its root.
    pub fn root(name: &'static str) -> Span {
        if !recording() {
            return Span::disabled();
        }
        Span::root_from(name, Instant::now())
    }

    /// Mint a fresh trace whose root started at `start` — the serving
    /// loop captures the instant *before* parsing, so the `parse`
    /// child sits inside the root rather than before it.
    pub fn root_from(name: &'static str, start: Instant) -> Span {
        if !recording() {
            return Span::disabled();
        }
        let trace = next_id();
        Span {
            inner: Some(Inner {
                trace,
                span: next_id(),
                parent: 0,
                name,
                start,
                detail: 0,
            }),
        }
    }

    /// A root span adopted into an *existing* trace id — how a
    /// follower's frame-apply work joins the primary's request trace.
    /// Completes the trace (and feeds the slow log) on drop, like any
    /// root.
    pub fn adopted_root(trace: u64, name: &'static str) -> Span {
        if !recording() || trace == 0 {
            return Span::disabled();
        }
        Span {
            inner: Some(Inner {
                trace,
                span: next_id(),
                parent: 0,
                name,
                start: Instant::now(),
                detail: 0,
            }),
        }
    }

    /// A child of an explicit context (`None` ⇒ disabled).
    pub fn child_of(ctx: Option<TraceCtx>, name: &'static str) -> Span {
        let Some(ctx) = ctx else {
            return Span::disabled();
        };
        if !recording() {
            return Span::disabled();
        }
        Span {
            inner: Some(Inner {
                trace: ctx.trace,
                span: next_id(),
                parent: ctx.span,
                name,
                start: Instant::now(),
                detail: 0,
            }),
        }
    }

    /// A child of this span.
    pub fn child(&self, name: &'static str) -> Span {
        Span::child_of(self.ctx(), name)
    }

    /// A child of the thread's ambient context — inert when no span is
    /// entered, which is what keeps store-layer hooks silent during
    /// recovery replay.
    pub fn ambient(name: &'static str) -> Span {
        Span::child_of(ambient(), name)
    }

    /// This span's context (what a child or a pool job captures).
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.inner.as_ref().map(|i| TraceCtx {
            trace: i.trace,
            span: i.span,
        })
    }

    /// Is this span live (recording on at construction)?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach one numeric detail (bytes appended, frames applied, …)
    /// rendered as `detail=N` in dumps.
    pub fn set_detail(&mut self, v: u64) {
        if let Some(i) = self.inner.as_mut() {
            i.detail = v;
        }
    }

    /// Install this span as the thread's ambient context until the
    /// guard drops.
    pub fn enter(&self) -> AmbientGuard {
        enter(self.ctx())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(i) = self.inner.take() else { return };
        let dur = i.start.elapsed();
        let dur_us = dur.as_micros() as u64;
        push_record(RawRecord {
            trace: i.trace,
            span: i.span,
            parent: i.parent,
            start_us: us_since_epoch(i.start),
            dur_us,
            detail: i.detail,
            name_ptr: i.name.as_ptr() as usize,
            name_len: i.name.len(),
        });
        if i.parent == 0 {
            note_completed(i.trace);
            let slow = SLOW_US.load(Ordering::Relaxed);
            if slow != 0 && dur_us >= slow {
                crate::warn!(target: "trace", "slow request";
                    trace = fmt_trace_id(i.trace),
                    root = i.name,
                    dur_us = dur_us,
                    spans = render_breakdown(i.trace));
            }
        }
    }
}

/// Record a span with externally measured timing — how queue-wait is
/// captured: the dispatch site keeps the enqueue instant, the worker
/// records the span when it picks the job up. No-op when `ctx` is
/// `None`.
pub fn record_span(ctx: Option<TraceCtx>, name: &'static str, start: Instant, dur: Duration) {
    let Some(ctx) = ctx else { return };
    if !recording() {
        return;
    }
    push_record(RawRecord {
        trace: ctx.trace,
        span: next_id(),
        parent: ctx.span,
        start_us: us_since_epoch(start),
        dur_us: dur.as_micros() as u64,
        detail: 0,
        name_ptr: name.as_ptr() as usize,
        name_len: name.len(),
    });
}

// ---------------------------------------------------------------------------
// The flight recorder: per-thread seqlock rings
// ---------------------------------------------------------------------------

/// The fixed-size slot payload. Names are raw `(ptr, len)` words: a
/// torn read of two integers is still just integers, and the pair is
/// only reinterpreted as a `&'static str` *after* seqlock validation
/// proves the record was read whole.
#[derive(Clone, Copy)]
struct RawRecord {
    trace: u64,
    span: u64,
    parent: u64,
    start_us: u64,
    dur_us: u64,
    detail: u64,
    name_ptr: usize,
    name_len: usize,
}

const ZERO_RECORD: RawRecord = RawRecord {
    trace: 0,
    span: 0,
    parent: 0,
    start_us: 0,
    dur_us: 0,
    detail: 0,
    name_ptr: 0,
    name_len: 0,
};

/// One ring slot guarded by a seqlock sequence: `2n+1` while record
/// `n` is being written, `2n+2` once complete, 0 = never written. The
/// sequence encodes the record's global index, so a reader can both
/// detect tearing and recover per-thread write order.
struct Slot {
    seq: AtomicU64,
    rec: UnsafeCell<RawRecord>,
}

/// A per-thread ring. The owning thread is the only writer (enforced
/// by reaching it through a thread-local); any thread may read.
struct Ring {
    thread: u64,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

// SAFETY: cross-thread access to `rec` follows the seqlock protocol in
// `push` / `read_slot`; readers discard any slot whose sequence was
// odd or changed across the read.
unsafe impl Sync for Ring {}

impl Ring {
    fn new(thread: u64) -> Ring {
        Ring {
            thread,
            head: AtomicU64::new(0),
            slots: (0..RING_CAP)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    rec: UnsafeCell::new(ZERO_RECORD),
                })
                .collect(),
        }
    }

    /// Owner-thread-only write (crossbeam-style seqlock): mark the
    /// slot odd, fence, write the payload, publish even.
    fn push(&self, rec: RawRecord) {
        let n = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(n % RING_CAP as u64) as usize];
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: single writer (the owning thread); concurrent
        // readers race benignly — they validate the sequence after
        // their volatile read and discard torn data.
        unsafe { std::ptr::write_volatile(slot.rec.get(), rec) };
        slot.seq.store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Validated read of one slot: `Some((index, record))` if the
    /// record was read whole, `None` if empty, mid-write, or torn.
    fn read_slot(&self, i: usize) -> Option<(u64, RawRecord)> {
        let slot = &self.slots[i];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 % 2 == 1 {
            return None;
        }
        // SAFETY: raw integer read; only trusted after validation.
        let rec = unsafe { std::ptr::read_volatile(slot.rec.get()) };
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some((s1 / 2 - 1, rec))
    }
}

/// Registry of every thread ring ever created (rings outlive their
/// thread so dumps can still show a finished worker's spans).
fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: Arc<Ring> = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
        let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
        rings().lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&ring));
        ring
    };
}

fn push_record(rec: RawRecord) {
    // try_with: a span dropped during thread teardown (after TLS
    // destruction) silently loses its record rather than aborting.
    let _ = MY_RING.try_with(|r| r.push(rec));
}

// ---------------------------------------------------------------------------
// Completed traces
// ---------------------------------------------------------------------------

static COMPLETED: [AtomicU64; COMPLETED_CAP] = [const { AtomicU64::new(0) }; COMPLETED_CAP];
static COMPLETED_HEAD: AtomicU64 = AtomicU64::new(0);

fn note_completed(trace: u64) {
    let n = COMPLETED_HEAD.fetch_add(1, Ordering::Relaxed);
    COMPLETED[(n % COMPLETED_CAP as u64) as usize].store(trace, Ordering::Relaxed);
}

/// The ids of up to `n` most recently completed traces, oldest first,
/// de-duplicated keeping each id's most recent completion.
pub fn recent_completed(n: usize) -> Vec<u64> {
    let head = COMPLETED_HEAD.load(Ordering::Relaxed);
    let avail = head.min(COMPLETED_CAP as u64);
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for back in 0..avail {
        if out.len() >= n {
            break;
        }
        let idx = ((head - 1 - back) % COMPLETED_CAP as u64) as usize;
        let id = COMPLETED[idx].load(Ordering::Relaxed);
        if id != 0 && seen.insert(id) {
            out.push(id);
        }
    }
    out.reverse();
    out
}

// ---------------------------------------------------------------------------
// Snapshots and rendering
// ---------------------------------------------------------------------------

/// One validated span record from the flight recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace id shared by the tree.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Static span name (`req:flush`, `wal_append`, …).
    pub name: &'static str,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Caller-attached detail value; 0 = none.
    pub detail: u64,
    /// Recording thread's ring id.
    pub thread: u64,
    /// Per-thread record index (monotonic in write order).
    pub index: u64,
}

/// Collect every currently-validatable record across all thread rings.
/// Lock-free with respect to writers; a slot being overwritten mid-read
/// is simply skipped.
pub fn snapshot() -> Vec<SpanRecord> {
    let rings: Vec<Arc<Ring>> = rings().lock().unwrap_or_else(|e| e.into_inner()).clone();
    let mut out = Vec::new();
    for ring in rings {
        for i in 0..RING_CAP {
            if let Some((index, rec)) = ring.read_slot(i) {
                if rec.trace == 0 {
                    continue;
                }
                // SAFETY: the seqlock validated the record whole, so
                // (name_ptr, name_len) is a pair the owning thread
                // stored from a live `&'static str`.
                let name = unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                        rec.name_ptr as *const u8,
                        rec.name_len,
                    ))
                };
                out.push(SpanRecord {
                    trace: rec.trace,
                    span: rec.span,
                    parent: rec.parent,
                    name,
                    start_us: rec.start_us,
                    dur_us: rec.dur_us,
                    detail: rec.detail,
                    thread: ring.thread,
                    index,
                });
            }
        }
    }
    out
}

/// Render the `n` most recent completed traces as indented span trees,
/// oldest first; one block per trace:
///
/// ```text
/// trace 0x00000000000000a3 root=req:flush dur_us=1412 spans=6
///   req:flush +0us 1412us
///     parse +0us 2us
///     ...
/// ```
///
/// Offsets (`+Nus`) are relative to the trace's earliest span start. A
/// trace whose records were already overwritten renders nothing.
pub fn render_traces(n: usize) -> String {
    let ids = recent_completed(n);
    if ids.is_empty() {
        return String::new();
    }
    let records = snapshot();
    let mut out = String::new();
    for id in ids {
        render_trace_tree(&mut out, id, &records);
    }
    out
}

fn render_trace_tree(out: &mut String, id: u64, records: &[SpanRecord]) {
    use std::fmt::Write as _;
    let mut spans: Vec<&SpanRecord> = records.iter().filter(|r| r.trace == id).collect();
    if spans.is_empty() {
        return;
    }
    spans.sort_by_key(|r| (r.start_us, r.span));
    let ids: std::collections::HashSet<u64> = spans.iter().map(|r| r.span).collect();
    let t_min = spans[0].start_us;
    let t_max = spans
        .iter()
        .map(|r| r.start_us + r.dur_us)
        .max()
        .unwrap_or(t_min);
    // Top level: true roots plus orphans whose parent was overwritten.
    let tops: Vec<&SpanRecord> = spans
        .iter()
        .copied()
        .filter(|r| r.parent == 0 || !ids.contains(&r.parent))
        .collect();
    let root_name = tops
        .iter()
        .find(|r| r.parent == 0)
        .or(tops.first())
        .map_or("?", |r| r.name);
    let _ = writeln!(
        out,
        "trace {} root={} dur_us={} spans={}",
        fmt_trace_id(id),
        root_name,
        t_max - t_min,
        spans.len()
    );
    let mut budget = spans.len();
    for top in tops {
        render_node(out, &spans, top, 1, t_min, &mut budget);
    }
}

fn render_node(
    out: &mut String,
    spans: &[&SpanRecord],
    node: &SpanRecord,
    depth: usize,
    t_min: u64,
    budget: &mut usize,
) {
    use std::fmt::Write as _;
    if *budget == 0 {
        return;
    }
    *budget -= 1;
    let indent = "  ".repeat(depth.min(16));
    let _ = write!(
        out,
        "{indent}{} +{}us {}us",
        node.name,
        node.start_us - t_min,
        node.dur_us
    );
    if node.detail != 0 {
        let _ = write!(out, " detail={}", node.detail);
    }
    out.push('\n');
    for child in spans.iter().filter(|r| r.parent == node.span) {
        render_node(out, spans, child, depth + 1, t_min, budget);
    }
}

/// Compact one-line breakdown for the slow-request log:
/// `name:durus,name:durus,...` in start order.
pub fn render_breakdown(trace: u64) -> String {
    let mut spans: Vec<SpanRecord> = snapshot()
        .into_iter()
        .filter(|r| r.trace == trace)
        .collect();
    spans.sort_by_key(|r| (r.start_us, r.span));
    spans
        .iter()
        .map(|r| format!("{}:{}us", r.name, r.dur_us))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_of(trace: u64) -> Vec<SpanRecord> {
        snapshot()
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect()
    }

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::testsync::exclusive();
        crate::set_enabled(false);
        let root = Span::root("req:test");
        assert!(!root.is_recording());
        assert!(root.ctx().is_none());
        let child = root.child("inner");
        assert!(child.ctx().is_none());
        let _amb = root.enter();
        assert!(ambient().is_none());
        assert!(Span::ambient("hook").ctx().is_none());
        drop(child);
        drop(root);
        crate::set_enabled(true);
    }

    #[test]
    fn propagation_and_render() {
        let _g = crate::testsync::recording();
        let trace;
        {
            let mut root = Span::root("req:prop");
            trace = root.ctx().unwrap().trace;
            root.set_detail(42);
            {
                let child = root.child("stage_a");
                let _amb = child.enter();
                assert_eq!(ambient(), child.ctx());
                assert_eq!(current_trace_id(), Some(trace));
                let hook = Span::ambient("hook");
                assert_eq!(hook.ctx().unwrap().trace, trace);
            }
            assert!(ambient().is_none());
        }
        let spans = spans_of(trace);
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|r| r.name == "req:prop").unwrap();
        let stage = spans.iter().find(|r| r.name == "stage_a").unwrap();
        let hook = spans.iter().find(|r| r.name == "hook").unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(root.detail, 42);
        assert_eq!(stage.parent, root.span);
        assert_eq!(hook.parent, stage.span);
        assert!(recent_completed(usize::MAX).contains(&trace));
        let text = render_traces(usize::MAX);
        let block: Vec<&str> = text
            .lines()
            .skip_while(|l| {
                *l != format!(
                    "trace {} root=req:prop dur_us={} spans=3",
                    fmt_trace_id(trace),
                    {
                        let t0 = spans.iter().map(|r| r.start_us).min().unwrap();
                        spans.iter().map(|r| r.start_us + r.dur_us).max().unwrap() - t0
                    }
                )
            })
            .take_while(|l| !l.is_empty())
            .take(4)
            .collect();
        assert_eq!(block.len(), 4, "trace block missing in:\n{text}");
        assert!(block[1].starts_with("  req:prop +0us"));
        assert!(block[1].ends_with("detail=42"));
        assert!(block[2].starts_with("    stage_a +"));
        assert!(block[3].starts_with("      hook +"));
    }

    #[test]
    fn explicit_ctx_crosses_threads() {
        let _g = crate::testsync::recording();
        let root = Span::root("req:cross");
        let trace = root.ctx().unwrap().trace;
        let ctx = root.ctx();
        let enq = Instant::now();
        std::thread::spawn(move || {
            record_span(ctx, "queue_wait", enq, enq.elapsed());
            let exec = Span::child_of(ctx, "exec");
            let _amb = exec.enter();
            drop(Span::ambient("wal_append"));
        })
        .join()
        .unwrap();
        drop(root);
        let spans = spans_of(trace);
        let names: Vec<&str> = spans.iter().map(|r| r.name).collect();
        for want in ["req:cross", "queue_wait", "exec", "wal_append"] {
            assert!(names.contains(&want), "{want} missing from {names:?}");
        }
        let exec = spans.iter().find(|r| r.name == "exec").unwrap();
        let wal = spans.iter().find(|r| r.name == "wal_append").unwrap();
        assert_eq!(wal.parent, exec.span);
        // Worker-side spans recorded on the worker's ring, root on ours.
        let root_rec = spans.iter().find(|r| r.name == "req:cross").unwrap();
        assert_ne!(exec.thread, root_rec.thread);
    }

    #[test]
    fn adopted_root_joins_existing_trace() {
        let _g = crate::testsync::recording();
        let primary = Span::root("req:repl-frames");
        let trace = primary.ctx().unwrap().trace;
        drop(primary);
        {
            let follower = Span::adopted_root(trace, "repl:apply");
            assert_eq!(follower.ctx().unwrap().trace, trace);
            let _amb = follower.enter();
            drop(Span::ambient("frame_apply"));
        }
        let names: Vec<&str> = spans_of(trace).iter().map(|r| r.name).collect();
        assert!(names.contains(&"req:repl-frames"));
        assert!(names.contains(&"repl:apply"));
        assert!(names.contains(&"frame_apply"));
        // Both roots completed the same trace id exactly once in the
        // dedup'd view.
        let completed = recent_completed(usize::MAX);
        assert_eq!(completed.iter().filter(|t| **t == trace).count(), 1);
        assert!(Span::adopted_root(0, "x").ctx().is_none());
    }

    #[test]
    fn ring_overwrites_oldest() {
        let _g = crate::testsync::recording();
        let first = Span::root("req:first");
        let first_trace = first.ctx().unwrap().trace;
        drop(first);
        assert!(!spans_of(first_trace).is_empty());
        // Fill this thread's ring several times over.
        for _ in 0..(RING_CAP * 2) {
            drop(Span::root("req:filler"));
        }
        assert!(
            spans_of(first_trace).is_empty(),
            "oldest record survived overwrite"
        );
    }

    #[test]
    fn slow_threshold_roundtrip() {
        assert_eq!(slow_threshold_us(), 0);
        set_slow_threshold_us(250);
        assert_eq!(slow_threshold_us(), 250);
        set_slow_threshold_us(0);
    }

    #[test]
    fn slow_log_renders_breakdown() {
        let _g = crate::testsync::recording();
        let trace;
        {
            let root = Span::root("req:slow");
            trace = root.ctx().unwrap().trace;
            let child = root.child("stall");
            std::thread::sleep(Duration::from_millis(2));
            drop(child);
        }
        let breakdown = render_breakdown(trace);
        assert!(breakdown.starts_with("req:slow:"), "{breakdown}");
        assert!(breakdown.contains(",stall:"), "{breakdown}");
    }

    #[test]
    fn trace_switch_independent_of_metrics() {
        let _g = crate::testsync::recording();
        set_trace_enabled(false);
        assert!(!recording());
        assert!(!Span::root("req:off").is_recording());
        // Metrics stay on while tracing is off.
        assert!(crate::enabled());
        set_trace_enabled(true);
        assert!(recording());
    }

    #[test]
    fn trace_id_formatting() {
        assert_eq!(fmt_trace_id(0xab), "0x00000000000000ab");
        assert_eq!(fmt_trace_id(u64::MAX), "0xffffffffffffffff");
    }
}
