//! Criterion bench for experiment E3: SPMD-parallel IGP at several worker
//! counts. Wall time on this host is bounded by its core count; the
//! simulated CM-5 speedup (the paper's claim) is printed by
//! `repro_speedup`. This bench tracks the real threaded overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use igp_core::parallel::ParallelPartitioner;
use igp_core::IgpConfig;
use igp_mesh::sequence::paper_sequence_a;
use igp_runtime::CostModel;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use std::hint::black_box;

fn bench_speedup(c: &mut Criterion) {
    let seq = paper_sequence_a(42);
    let parts = 32;
    let old = recursive_spectral_bisection(
        &seq.base,
        parts,
        RsbOptions {
            fiedler: igp_spectral::FiedlerOptions {
                subspace: 40,
                max_restarts: 4,
                tol: 1e-4,
                seed: 0x5eed,
            },
        },
    );
    let inc = &seq.steps[0].inc;

    let mut g = c.benchmark_group("speedup_testA");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("parallel_igp_w{workers}"), |b| {
            let p =
                ParallelPartitioner::new(IgpConfig::new(parts), workers, false, CostModel::cm5());
            b.iter(|| black_box(p.repartition(black_box(inc), black_box(&old))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
