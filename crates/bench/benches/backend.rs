//! Wall-clock comparison of the execution substrates on the E3 speedup
//! workload: the same SPMD repartitioning on [`Backend::SimCm5`] (message
//! passing + cost simulation overhead) vs [`Backend::SharedMem`] (slot
//! collectives) at 1/2/4/8 workers.
//!
//! Custom harness (not criterion): besides printing a table it emits a
//! machine-readable `BENCH_backend.json` summary in the working
//! directory, so CI or the next session can diff backend performance.
//! On a host with ≥ 4 cores the shared-mem row should fall monotonically
//! from 1 → 4 workers; on smaller hosts the curve flattens at the core
//! count (recorded in the JSON as `host_cores`).

use igp_bench::{artifact, experiments::Fidelity};
use igp_core::parallel::ParallelPartitioner;
use igp_core::IgpConfig;
use igp_mesh::sequence::paper_sequence_a;
use igp_obs::Histogram;
use igp_runtime::{Backend, CostModel};
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use std::hint::black_box;
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const SAMPLES: usize = 5;

struct Point {
    backend: Backend,
    workers: usize,
    min_s: f64,
    median_s: f64,
    /// Per-sample wall time (µs) through the shared histogram type —
    /// the JSON's p50/p99 columns.
    wall_us: Histogram,
}

fn main() {
    let parts = 32;
    eprintln!("building workload (mesh sequence A, P = {parts}) ...");
    let seq = paper_sequence_a(42);
    let old = recursive_spectral_bisection(
        &seq.base,
        parts,
        RsbOptions {
            fiedler: Fidelity::bench().fiedler,
        },
    );
    let inc = &seq.steps[0].inc;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let mut points = Vec::new();
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "backend", "workers", "min-wall", "median-wall"
    );
    for backend in Backend::ALL {
        for &w in &WORKERS {
            let cfg = IgpConfig::new(parts).with_backend(backend);
            let pp = ParallelPartitioner::new(cfg, w, false, CostModel::cm5());
            // Warm-up, then timed samples.
            black_box(pp.repartition(black_box(inc), black_box(&old)));
            let wall_us = Histogram::new();
            let mut samples: Vec<f64> = (0..SAMPLES)
                .map(|_| {
                    let t = Instant::now();
                    black_box(pp.repartition(black_box(inc), black_box(&old)));
                    let d = t.elapsed();
                    wall_us.observe_duration(d);
                    d.as_secs_f64()
                })
                .collect();
            samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let p = Point {
                backend,
                workers: w,
                min_s: samples[0],
                median_s: samples[samples.len() / 2],
                wall_us,
            };
            println!(
                "{:>12} {:>8} {:>11.4}s {:>11.4}s",
                p.backend.to_string(),
                p.workers,
                p.min_s,
                p.median_s
            );
            points.push(p);
        }
    }

    let mut body = String::new();
    body.push_str("  \"workload\": \"paper_sequence_a step 0, P=32, IGP\",\n");
    body.push_str(&format!("  \"samples\": {SAMPLES},\n"));
    body.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"backend\": \"{}\", \"workers\": {}, \"min_wall_s\": {:.6}, \
             \"median_wall_s\": {:.6}, {}}}{}\n",
            p.backend,
            p.workers,
            p.min_s,
            p.median_s,
            artifact::hist_fields(&p.wall_us),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]");
    artifact::write_artifact("BENCH_backend.json", &body);

    let shm: Vec<&Point> = points
        .iter()
        .filter(|p| p.backend == Backend::SharedMem)
        .collect();
    let span = WORKERS.iter().filter(|&&w| w <= cores).count();
    let monotone = shm.windows(2).take(span.saturating_sub(1)).all(|w| {
        w[1].min_s <= w[0].min_s * 1.05 // 5% noise tolerance
    });
    println!(
        "shared-mem scaling up to the core count ({} cores): {}",
        cores,
        if monotone { "monotone" } else { "NOT monotone" }
    );
}
