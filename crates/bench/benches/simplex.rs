//! Criterion bench for experiments E7/E9: the dense simplex on
//! paper-scale balance LPs ("Most of the time spent by our algorithm is
//! in the solution of the linear programming formulation"), versus the
//! structured network-flow solver (the paper's "sparse representation"
//! remark).

use criterion::{criterion_group, criterion_main, Criterion};
use igp_lp::{flow, solve, LpModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A synthetic balance LP shaped like a `p`-partition mesh adjacency:
/// partitions arranged in a ring with `extra` chords, random caps, random
/// balanced surplus.
fn synth_balance_lp(
    p: usize,
    extra: usize,
    seed: u64,
) -> (LpModel, Vec<(usize, usize, i64)>, Vec<i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arcs: Vec<(usize, usize, i64)> = Vec::new();
    for i in 0..p {
        let j = (i + 1) % p;
        let c1 = rng.gen_range(5..40);
        let c2 = rng.gen_range(5..40);
        arcs.push((i, j, c1));
        arcs.push((j, i, c2));
    }
    for _ in 0..extra {
        let i = rng.gen_range(0..p);
        let j = rng.gen_range(0..p);
        if i != j && !arcs.iter().any(|&(a, b, _)| a == i && b == j) {
            arcs.push((i, j, rng.gen_range(5..40)));
        }
    }
    // Balanced surplus: move ~p units around.
    let mut surplus = vec![0i64; p];
    for _ in 0..p {
        let a = rng.gen_range(0..p);
        let b = rng.gen_range(0..p);
        if a != b {
            surplus[a] += 1;
            surplus[b] -= 1;
        }
    }
    let mut m = LpModel::minimize(arcs.len());
    for (k, &(_, _, cap)) in arcs.iter().enumerate() {
        m.set_objective(k, 1.0);
        m.set_upper_bound(k, cap as f64);
    }
    for q in 0..p {
        let mut row = Vec::new();
        for (k, (i, j)) in arcs.iter().map(|&(i, j, _)| (i, j)).enumerate() {
            if i == q {
                row.push((k, 1.0));
            } else if j == q {
                row.push((k, -1.0));
            }
        }
        m.add_eq(row, surplus[q] as f64);
    }
    (m, arcs, surplus)
}

fn bench_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("simplex_balance_lp");
    g.sample_size(20);
    // Paper scale: P = 32 with ~3 neighbours each → v ≈ 190, c ≈ 130.
    for (p, extra, label) in [
        (8usize, 8usize, "P8"),
        (32, 64, "P32_paper_scale"),
        (64, 160, "P64"),
    ] {
        let (model, arcs, surplus) = synth_balance_lp(p, extra, 7);
        g.bench_function(format!("dense_simplex_{label}"), |b| {
            b.iter(|| black_box(solve(black_box(&model)).unwrap().objective))
        });
        g.bench_function(format!("bounded_simplex_{label}"), |b| {
            b.iter(|| black_box(igp_lp::solve_bounded(black_box(&model)).unwrap().objective))
        });
        g.bench_function(format!("network_flow_{label}"), |b| {
            b.iter(|| {
                black_box(
                    flow::min_movement_transshipment(p, black_box(&arcs), black_box(&surplus))
                        .unwrap()
                        .0,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
