//! Criterion bench for experiment E1 (paper Figure 11, test set A):
//! SB-from-scratch vs IGP vs IGPR on the first chained increment
//! (1071 → 1096 nodes, 32 partitions).

use criterion::{criterion_group, criterion_main, Criterion};
use igp_core::{IgpConfig, IncrementalPartitioner};
use igp_mesh::sequence::paper_sequence_a;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let seq = paper_sequence_a(42);
    let parts = 32;
    let rsb_opts = RsbOptions {
        fiedler: igp_spectral::FiedlerOptions {
            subspace: 40,
            max_restarts: 4,
            tol: 1e-4,
            seed: 0x5eed,
        },
    };
    let old = recursive_spectral_bisection(&seq.base, parts, rsb_opts);
    let inc = &seq.steps[0].inc;

    let mut g = c.benchmark_group("fig11_testA_1096");
    g.sample_size(10);
    g.bench_function("SB_from_scratch", |b| {
        b.iter(|| {
            black_box(recursive_spectral_bisection(
                black_box(inc.new_graph()),
                parts,
                rsb_opts,
            ))
        })
    });
    g.bench_function("IGP", |b| {
        let p = IncrementalPartitioner::igp(IgpConfig::new(parts));
        b.iter(|| black_box(p.repartition(black_box(inc), black_box(&old))))
    });
    g.bench_function("IGPR", |b| {
        let p = IncrementalPartitioner::igpr(IgpConfig::new(parts));
        b.iter(|| black_box(p.repartition(black_box(inc), black_box(&old))))
    });
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
