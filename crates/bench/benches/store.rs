//! Durability overhead and recovery latency.
//!
//! Custom harness (not criterion): besides the table it emits a
//! machine-readable `BENCH_store.json` (CI uploads it as an artifact)
//! recording
//!
//! * **WAL append throughput** — records/s and MB/s for journaling a
//!   churn stream through `SessionStore::journal_delta` (frame
//!   encoding + CRC + write + flush, no session work);
//! * **ingest overhead** — deltas/s through a `ServiceSession` with
//!   and without a store attached (what durability actually costs the
//!   serving path);
//! * **recovery latency vs log length** — wall time for
//!   `recover_session` (snapshot load + WAL replay) as the tail grows,
//!   with and without snapshots enabled.

use igp_graph::{generators, CsrGraph, GraphDelta, Partitioning};
use igp_service::durable::recover_session;
use igp_service::session::{InitPartition, ServiceSession, SessionConfig};
use igp_service::SnapshotPolicy;
use igp_store::store::{SessionState, StoreMeta};
use igp_store::SessionStore;
use std::path::PathBuf;
use std::time::Instant;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("igp-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A churn stream over an evolving mirror (valid delta sequence).
fn stream(base: &CsrGraph, k: usize, seed: u64) -> Vec<GraphDelta> {
    let mut mirror = base.clone();
    let mut deltas = Vec::with_capacity(k);
    for i in 0..k {
        let d = generators::random_churn_delta(&mirror, 2, 1, seed ^ (i as u64) << 13);
        mirror = d.apply(&mirror).new_graph().clone();
        deltas.push(d);
    }
    deltas
}

fn cfg(parts: usize) -> SessionConfig {
    let mut cfg = SessionConfig::new(parts);
    cfg.init = InitPartition::RoundRobin;
    cfg.policy = "every:4".parse().unwrap();
    cfg
}

/// Raw WAL append throughput, no session attached. Returns
/// `(wall_s, records_per_s, mb_per_s, per-record latency histogram)`.
fn bench_wal_append(records: usize) -> (f64, f64, f64, igp_obs::Histogram) {
    let dir = scratch("wal");
    let base = generators::grid(32, 32);
    let part = Partitioning::round_robin(&base, 4);
    let deltas = stream(&base, records, 7);
    let identity: Vec<u32> = (0..base.num_vertices() as u32).collect();
    let state = SessionState {
        graph: &base,
        part: &part,
        base_of_current: &identity,
        steps: 0,
        total_moved: 0,
        deltas_received: 0,
        needs_scratch: false,
    };
    let meta = StoreMeta {
        sid: "bench".into(),
        config_line: "parts=4".into(),
    };
    let mut store = SessionStore::create(&dir, meta, SnapshotPolicy::Never, state).unwrap();
    let append_us = igp_obs::Histogram::new();
    let t0 = Instant::now();
    for d in &deltas {
        append_us.time(|| store.journal_delta(d)).unwrap();
    }
    let wall = t0.elapsed().as_secs_f64();
    let bytes = store.wal_bytes() as f64;
    std::fs::remove_dir_all(&dir).ok();
    (wall, records as f64 / wall, bytes / wall / 1e6, append_us)
}

/// Ingest throughput with/without durability.
fn bench_ingest(durable: bool, deltas: &[GraphDelta], base: &CsrGraph) -> (f64, f64, usize) {
    let dir = scratch(if durable { "ingest-dur" } else { "ingest-mem" });
    let mut s = if durable {
        ServiceSession::open_durable(
            base.clone(),
            cfg(4),
            &dir,
            "bench",
            SnapshotPolicy::default(),
        )
        .unwrap()
    } else {
        ServiceSession::open(base.clone(), cfg(4))
    };
    let t0 = Instant::now();
    for d in deltas {
        s.ingest(d).unwrap();
    }
    s.flush().unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let steps = s.steps();
    std::fs::remove_dir_all(&dir).ok();
    (wall, deltas.len() as f64 / wall, steps)
}

/// Recovery latency for a log of `k` records.
fn bench_recovery(k: usize, snapshots: bool) -> (f64, u64) {
    let dir = scratch(&format!("recover-{k}-{snapshots}"));
    let policy = if snapshots {
        SnapshotPolicy::default()
    } else {
        SnapshotPolicy::Never
    };
    let base = generators::grid(16, 16);
    let deltas = stream(&base, k, 23);
    let mut s = ServiceSession::open_durable(base, cfg(4), &dir, "bench", policy).unwrap();
    for d in &deltas {
        s.ingest(d).unwrap();
    }
    drop(s);
    let t0 = Instant::now();
    let rec = recover_session(&dir, policy).unwrap();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(rec.session.deltas_received(), k, "recovery lost records");
    let snap_seq = rec.session.store().map(|st| st.seq()).unwrap_or(0);
    std::fs::remove_dir_all(&dir).ok();
    (wall, snap_seq)
}

fn main() {
    let mut json = String::new();

    // 1. WAL append throughput (+ per-record latency quantiles).
    const WAL_RECORDS: usize = 5000;
    let (wall, rps, mbps, append_us) = bench_wal_append(WAL_RECORDS);
    println!(
        "WAL append: {WAL_RECORDS} records in {wall:.3}s → {rps:.0} rec/s, {mbps:.1} MB/s \
         (p50 {}µs, p99 {}µs)",
        append_us.quantile(0.5),
        append_us.quantile(0.99),
    );
    json.push_str(&format!(
        "  \"wal_append\": {{\"records\": {WAL_RECORDS}, \"wall_s\": {wall:.6}, \
         \"records_per_s\": {rps:.1}, \"mb_per_s\": {mbps:.3}, {}}},\n",
        igp_bench::artifact::hist_fields(&append_us)
    ));

    // 2. Ingest overhead (same stream, durable vs memory-only).
    let base = generators::grid(12, 12);
    let deltas = stream(&base, 120, 5);
    let (mem_wall, mem_rate, mem_steps) = bench_ingest(false, &deltas, &base);
    let (dur_wall, dur_rate, dur_steps) = bench_ingest(true, &deltas, &base);
    assert_eq!(mem_steps, dur_steps, "durability must not change stepping");
    let overhead = (dur_wall / mem_wall - 1.0) * 100.0;
    println!(
        "ingest: memory {mem_rate:.0} deltas/s, durable {dur_rate:.0} deltas/s \
         ({overhead:+.1}% wall)"
    );
    json.push_str(&format!(
        "  \"ingest\": {{\"deltas\": {}, \"memory_per_s\": {mem_rate:.1}, \
         \"durable_per_s\": {dur_rate:.1}, \"overhead_pct\": {overhead:.2}}},\n",
        deltas.len()
    ));

    // 3. Recovery latency vs log length, with and without snapshots.
    println!(
        "{:>10} {:>10} {:>14} {:>10}",
        "records", "snapshots", "recovery", "snap_seq"
    );
    json.push_str("  \"recovery\": [\n");
    let lengths = [50usize, 200, 800];
    let mut first = true;
    let mut never_walls = Vec::new();
    for &k in &lengths {
        for snapshots in [false, true] {
            let (wall, snap_seq) = bench_recovery(k, snapshots);
            println!(
                "{:>10} {:>10} {:>13.4}s {:>10}",
                k,
                if snapshots { "cost" } else { "never" },
                wall,
                snap_seq
            );
            if !snapshots {
                never_walls.push(wall);
            }
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"log_records\": {k}, \"snapshots\": {snapshots}, \
                 \"recovery_s\": {wall:.6}, \"snap_seq\": {snap_seq}}}"
            ));
        }
    }
    json.push_str("\n  ]");

    // Sanity: snapshot-free recovery replays the whole log, so its
    // latency must grow with log length (the point of snapshots).
    assert!(
        never_walls.windows(2).all(|w| w[0] <= w[1] * 1.5),
        "snapshot-free recovery latency not roughly monotone: {never_walls:?}"
    );

    igp_bench::artifact::write_artifact("BENCH_store.json", &json);
}
