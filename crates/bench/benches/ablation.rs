//! Criterion bench for experiments E8/E10 — design-choice ablations:
//!
//! * `caps_*` — Strict λ caps (+ δ staging) vs Relaxed caps (§2.3);
//! * `solver_*` — dense simplex vs structured network flow, full pipeline;
//! * `multilevel_*` — flat IGPR vs the paper's future-work multilevel IGP.

use criterion::{criterion_group, criterion_main, Criterion};
use igp_core::multilevel::{multilevel_repartition, MultilevelConfig};
use igp_core::{BalanceSolver, CapPolicy, IgpConfig, IncrementalPartitioner};
use igp_graph::{generators, PartId, Partitioning};
use std::hint::black_box;

fn scenario() -> (Partitioning, igp_graph::IncrementalGraph) {
    let g = generators::grid(40, 40);
    let assign: Vec<PartId> = (0..1600).map(|v| ((v % 40) / 5) as PartId).collect();
    let old = Partitioning::from_assignment(&g, 8, assign);
    let delta = generators::localized_growth_delta(&g, 39, 120, 9);
    (old, delta.apply(&g))
}

fn bench_ablation(c: &mut Criterion) {
    let (old, inc) = scenario();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    for (policy, name) in [
        (CapPolicy::Strict, "caps_strict"),
        (CapPolicy::Relaxed, "caps_relaxed"),
    ] {
        let mut cfg = IgpConfig::new(8);
        cfg.cap_policy = policy;
        let p = IncrementalPartitioner::igp(cfg);
        g.bench_function(name, |b| {
            b.iter(|| black_box(p.repartition(black_box(&inc), black_box(&old))))
        });
    }

    for (solver, name) in [
        (BalanceSolver::DenseSimplex, "solver_dense_simplex"),
        (BalanceSolver::BoundedSimplex, "solver_bounded_simplex"),
        (BalanceSolver::NetworkFlow, "solver_network_flow"),
    ] {
        let mut cfg = IgpConfig::new(8);
        cfg.solver = solver;
        let p = IncrementalPartitioner::igpr(cfg);
        g.bench_function(name, |b| {
            b.iter(|| black_box(p.repartition(black_box(&inc), black_box(&old))))
        });
    }

    // Refinement-engine ablation: the paper's LP circulation vs greedy FM.
    {
        let cfg = IgpConfig::new(8);
        let p = IncrementalPartitioner::igpr(cfg);
        g.bench_function("refine_lp_circulation", |b| {
            b.iter(|| black_box(p.repartition(black_box(&inc), black_box(&old))))
        });
        let mut cfg = IgpConfig::new(8);
        cfg.refine.engine = igp_core::RefineEngine::Fm { slack: 1 };
        let p = IncrementalPartitioner::igpr(cfg);
        g.bench_function("refine_fm_greedy", |b| {
            b.iter(|| black_box(p.repartition(black_box(&inc), black_box(&old))))
        });
    }

    g.bench_function("multilevel_flat_igpr", |b| {
        let p = IncrementalPartitioner::igpr(IgpConfig::new(8));
        b.iter(|| black_box(p.repartition(black_box(&inc), black_box(&old))))
    });
    g.bench_function("multilevel_coarse_igp", |b| {
        let cfg = IgpConfig::new(8);
        let ml = MultilevelConfig {
            coarsen_to: 200,
            max_levels: 4,
        };
        b.iter(|| {
            black_box(multilevel_repartition(
                black_box(&inc),
                black_box(&old),
                &cfg,
                &ml,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
