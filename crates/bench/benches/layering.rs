//! Criterion bench for experiment E9: the layering phase (paper Figure 3)
//! across mesh sizes — the non-LP part of the pipeline's cost.

use criterion::{criterion_group, criterion_main, Criterion};
use igp_core::layer::layer_partitions;
use igp_graph::generators;
use igp_graph::PartId;
use std::hint::black_box;

fn bench_layering(c: &mut Criterion) {
    let mut g = c.benchmark_group("layering");
    g.sample_size(20);
    for (side, parts) in [(32usize, 8usize), (64, 16), (128, 32)] {
        let graph = generators::grid(side, side);
        let n = side * side;
        // Band partitioning.
        let band = side / parts.min(side);
        let assign: Vec<PartId> = (0..n)
            .map(|v| (((v % side) / band.max(1)).min(parts - 1)) as PartId)
            .collect();
        g.bench_function(format!("grid{side}x{side}_p{parts}"), |b| {
            b.iter(|| {
                black_box(layer_partitions(
                    black_box(&graph),
                    black_box(&assign),
                    parts,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_layering);
criterion_main!(benches);
