//! Criterion bench for experiment E2 (paper Figure 14, test set B):
//! IGP/IGPR on the 10166-node mesh under the smallest (+48) and largest
//! (+672, multi-stage) increments. The SB-from-scratch timing on this
//! mesh is covered by the `repro_fig14` binary (it is minutes-scale by
//! design — that gap *is* the paper's headline result).

use criterion::{criterion_group, criterion_main, Criterion};
use igp_core::{IgpConfig, IncrementalPartitioner};
use igp_mesh::sequence::paper_sequence_b;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};
use std::hint::black_box;

fn bench_fig14(c: &mut Criterion) {
    let seq = paper_sequence_b(42);
    let parts = 32;
    let rsb_opts = RsbOptions {
        fiedler: igp_spectral::FiedlerOptions {
            subspace: 40,
            max_restarts: 4,
            tol: 1e-4,
            seed: 0x5eed,
        },
    };
    let old = recursive_spectral_bisection(&seq.base, parts, rsb_opts);

    let mut g = c.benchmark_group("fig14_testB");
    g.sample_size(10);
    for (idx, name) in [(0usize, "plus48"), (3usize, "plus672")] {
        let inc = &seq.steps[idx].inc;
        g.bench_function(format!("IGP_{name}"), |b| {
            let p = IncrementalPartitioner::igp(IgpConfig::new(parts));
            b.iter(|| black_box(p.repartition(black_box(inc), black_box(&old))))
        });
        g.bench_function(format!("IGPR_{name}"), |b| {
            let p = IncrementalPartitioner::igpr(IgpConfig::new(parts));
            b.iter(|| black_box(p.repartition(black_box(inc), black_box(&old))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig14);
criterion_main!(benches);
