//! Throughput of the serving layer: concurrent clients streaming churn
//! deltas into `igp-serve` over real TCP, under each repartition
//! policy.
//!
//! Custom harness (not criterion): besides the table it emits a
//! machine-readable `BENCH_service.json` in the working directory (CI
//! uploads it as an artifact), recording deltas/second end to end —
//! wire parsing, registry locking, coalescing and the policy-gated
//! repartitions included. The `every:1` row pays one repartition per
//! delta (the paper's loop); `cost` shows what policy-driven batching
//! buys at the same traffic.

use igp_graph::generators;
use igp_service::client::{DeltaAck, IgpClient};
use igp_service::server::{serve, ServeOptions};
use igp_service::session::{InitPartition, SessionConfig};
use std::time::Instant;

const CLIENTS: [usize; 3] = [1, 2, 4];
const DELTAS_PER_CLIENT: usize = 25;
const PARTS: usize = 4;

struct Point {
    policy: &'static str,
    clients: usize,
    wall_s: f64,
    deltas_per_s: f64,
    steps: usize,
}

fn run_one(addr: std::net::SocketAddr, policy: &'static str, clients: usize) -> Point {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut cli = IgpClient::connect(addr).expect("connect");
                let sid = format!("bench-{policy}-{clients}-{c}");
                let base = generators::grid(10, 10);
                let mut cfg = SessionConfig::new(PARTS);
                cfg.policy = policy.parse().expect("policy spec");
                cfg.init = InitPartition::RoundRobin;
                cli.open(&sid, &base, &cfg).expect("open");
                let mut mirror = base;
                let mut steps = 0usize;
                for k in 0..DELTAS_PER_CLIENT {
                    let d =
                        generators::random_churn_delta(&mirror, 3, 1, (c as u64) << 32 | k as u64);
                    mirror = d.apply(&mirror).new_graph().clone();
                    match cli.delta(&sid, &d).expect("delta") {
                        DeltaAck::Stepped(_) => steps += 1,
                        DeltaAck::Queued { .. } => {}
                    }
                }
                if cli.flush(&sid).expect("flush").is_some() {
                    steps += 1;
                }
                cli.close(&sid).expect("close");
                steps
            })
        })
        .collect();
    let steps: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let wall_s = t0.elapsed().as_secs_f64();
    let total = clients * DELTAS_PER_CLIENT;
    Point {
        policy,
        clients,
        wall_s,
        deltas_per_s: total as f64 / wall_s,
        steps,
    }
}

fn main() {
    let server = serve("127.0.0.1:0", ServeOptions::default()).expect("bind");
    let addr = server.addr();
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>8}",
        "policy", "clients", "wall", "deltas/s", "steps"
    );
    let mut points = Vec::new();
    for policy in ["every:1", "every:5", "cost"] {
        for &clients in &CLIENTS {
            let p = run_one(addr, policy, clients);
            println!(
                "{:>10} {:>8} {:>9.3}s {:>12.1} {:>8}",
                p.policy, p.clients, p.wall_s, p.deltas_per_s, p.steps
            );
            points.push(p);
        }
    }

    // Hand-rolled JSON (no serde in the offline workspace).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"workload\": \"10x10 grid churn, {DELTAS_PER_CLIENT} deltas/client, P={PARTS}, IGPR\",\n"
    ));
    json.push_str(&format!("  \"host_cores\": {cores},\n"));
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{}\", \"clients\": {}, \"wall_s\": {:.6}, \
             \"deltas_per_s\": {:.1}, \"steps\": {}}}{}\n",
            p.policy,
            p.clients,
            p.wall_s,
            p.deltas_per_s,
            p.steps,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_service.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    // Batching sanity: policy-gated batching must not repartition more
    // often than the per-delta loop at identical traffic.
    for &clients in &CLIENTS {
        let per_delta = points
            .iter()
            .find(|p| p.policy == "every:1" && p.clients == clients)
            .unwrap();
        let batched = points
            .iter()
            .find(|p| p.policy == "cost" && p.clients == clients)
            .unwrap();
        assert!(
            batched.steps <= per_delta.steps,
            "cost policy repartitioned more often than every:1"
        );
    }
    println!("batching sanity: cost ≤ every:1 repartitions at equal traffic — OK");
}
