//! Throughput of the serving layer: concurrent clients streaming churn
//! deltas into `igp-serve` over real TCP, under each repartition
//! policy.
//!
//! Custom harness (not criterion): besides the table it emits a
//! machine-readable `BENCH_service.json` in the working directory (CI
//! uploads it as an artifact), recording deltas/second end to end —
//! wire parsing, registry locking, coalescing and the policy-gated
//! repartitions included — plus client-observed p50/p99 DELTA latency
//! from the shared [`igp_obs::Histogram`], and the cost of the
//! instrumentation itself (`obs_overhead`: the same workload with the
//! igp-obs kill switch off vs on; the acceptance bar is < 5%). The
//! `every:1` row pays one repartition per delta (the paper's loop);
//! `cost` shows what policy-driven batching buys at the same traffic.
//!
//! The `concurrency` sweep sizes the event-loop core: 128/512/1024
//! sessions held open on as many connections at once, recording the
//! daemon's idle RSS with every session parked (the loop holds no
//! thread per connection, so this is session + connection state, not
//! stacks), sustained deltas/s across all sessions, and client-observed
//! FLUSH p50/p99 (the repartition round trip through the worker pool).

use igp_bench::artifact;
use igp_graph::generators;
use igp_obs::Histogram;
use igp_service::client::{http_get, DeltaAck, IgpClient};
use igp_service::server::{serve, ServeOptions};
use igp_service::session::{InitPartition, SessionConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: [usize; 3] = [1, 2, 4];
const DELTAS_PER_CLIENT: usize = 25;
const PARTS: usize = 4;

struct Point {
    policy: &'static str,
    clients: usize,
    wall_s: f64,
    deltas_per_s: f64,
    steps: usize,
    /// Client-observed DELTA round-trip latency (µs). Empty when the
    /// igp-obs kill switch was off during the run.
    delta_us: Arc<Histogram>,
}

fn run_one(
    addr: std::net::SocketAddr,
    policy: &'static str,
    clients: usize,
    deltas_per_client: usize,
) -> Point {
    let delta_us = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let delta_us = delta_us.clone();
            std::thread::spawn(move || {
                let mut cli = IgpClient::connect(addr).expect("connect");
                let sid = format!("bench-{policy}-{clients}-{c}");
                let base = generators::grid(10, 10);
                let mut cfg = SessionConfig::new(PARTS);
                cfg.policy = policy.parse().expect("policy spec");
                cfg.init = InitPartition::RoundRobin;
                cli.open(&sid, &base, &cfg).expect("open");
                let mut mirror = base;
                let mut steps = 0usize;
                for k in 0..deltas_per_client {
                    let d =
                        generators::random_churn_delta(&mirror, 3, 1, (c as u64) << 32 | k as u64);
                    mirror = d.apply(&mirror).new_graph().clone();
                    match delta_us.time(|| cli.delta(&sid, &d)).expect("delta") {
                        DeltaAck::Stepped(_) => steps += 1,
                        DeltaAck::Queued { .. } => {}
                    }
                }
                if cli.flush(&sid).expect("flush").is_some() {
                    steps += 1;
                }
                cli.close(&sid).expect("close");
                steps
            })
        })
        .collect();
    let steps: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let wall_s = t0.elapsed().as_secs_f64();
    let total = clients * deltas_per_client;
    Point {
        policy,
        clients,
        wall_s,
        deltas_per_s: total as f64 / wall_s,
        steps,
        delta_us,
    }
}

/// This process's resident set (MiB) from `/proc/self/status`; 0.0 when
/// unreadable (non-Linux). The daemon runs in-process, so with every
/// session idle this is dominated by daemon-side state.
fn rss_mb() -> f64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    text.lines()
        .find_map(|l| {
            let kb: f64 = l
                .strip_prefix("VmRSS:")?
                .trim()
                .split(' ')
                .next()?
                .parse()
                .ok()?;
            Some(kb / 1024.0)
        })
        .unwrap_or(0.0)
}

struct SweepPoint {
    sessions: usize,
    open_s: f64,
    idle_rss_mb: f64,
    deltas_per_s: f64,
    flush_us: Arc<Histogram>,
}

/// One sweep rung: hold `sessions` open sessions on as many
/// connections, stream `deltas_per_session` queued deltas into each,
/// then FLUSH each one (timed — the repartition round trip), then tear
/// everything down so the next rung starts clean.
fn run_sweep(addr: std::net::SocketAddr, sessions: usize, deltas_per_session: usize) -> SweepPoint {
    const DRIVERS: usize = 4;
    let flush_us = Arc::new(Histogram::new());
    let per = sessions.div_ceil(DRIVERS);

    // Phase 1: open all sessions (one connection each) and park them.
    let t0 = Instant::now();
    let mut driver_conns: Vec<Vec<(IgpClient, String, igp_graph::CsrGraph)>> = (0..DRIVERS)
        .map(|d| {
            let lo = d * per;
            let hi = sessions.min(lo + per);
            (lo..hi)
                .map(|i| {
                    let mut cli = IgpClient::connect(addr).expect("connect");
                    let sid = format!("sweep-{sessions}-{i}");
                    let base = generators::grid(6, 6);
                    let mut cfg = SessionConfig::new(PARTS);
                    // Queue-only deltas; the FLUSH pays the repartition.
                    cfg.policy = "every:1000".parse().expect("policy");
                    cfg.init = InitPartition::RoundRobin;
                    cli.open(&sid, &base, &cfg).expect("open");
                    (cli, sid, base)
                })
                .collect()
        })
        .collect();
    let open_s = t0.elapsed().as_secs_f64();
    let idle_rss_mb = rss_mb();

    // Phase 2: stream deltas round-robin across every session.
    let t0 = Instant::now();
    let handles: Vec<_> = driver_conns
        .drain(..)
        .map(|mut conns| {
            let flush_us = flush_us.clone();
            std::thread::spawn(move || {
                for k in 0..deltas_per_session {
                    for (cli, sid, mirror) in &mut conns {
                        let seed = (k as u64) << 32 | mirror.num_vertices() as u64;
                        let d = generators::random_churn_delta(mirror, 2, 1, seed);
                        *mirror = d.apply(mirror).new_graph().clone();
                        cli.delta(sid, &d).expect("delta");
                    }
                }
                for (cli, sid, _) in &mut conns {
                    flush_us.time(|| cli.flush(sid)).expect("flush");
                }
                for (cli, sid, _) in &mut conns {
                    cli.close(sid).expect("close");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("driver");
    }
    let wall_s = t0.elapsed().as_secs_f64();
    SweepPoint {
        sessions,
        open_s,
        idle_rss_mb,
        deltas_per_s: (sessions * deltas_per_session) as f64 / wall_s,
        flush_us,
    }
}

fn main() {
    let opts = ServeOptions {
        http: Some("127.0.0.1:0".into()),
        ..ServeOptions::default()
    };
    let server = serve("127.0.0.1:0", opts).expect("bind");
    let addr = server.addr();
    let http_addr = server.http_addr().expect("ops listener");

    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>8} {:>9} {:>9}",
        "policy", "clients", "wall", "deltas/s", "steps", "p50(µs)", "p99(µs)"
    );
    let mut points = Vec::new();
    for policy in ["every:1", "every:5", "cost"] {
        for &clients in &CLIENTS {
            let p = run_one(addr, policy, clients, DELTAS_PER_CLIENT);
            println!(
                "{:>10} {:>8} {:>9.3}s {:>12.1} {:>8} {:>9} {:>9}",
                p.policy,
                p.clients,
                p.wall_s,
                p.deltas_per_s,
                p.steps,
                p.delta_us.quantile(0.5),
                p.delta_us.quantile(0.99),
            );
            points.push(p);
        }
    }

    // Concurrency sweep: many parked sessions, the event loop's home
    // turf. Two queued deltas per session keep the total runtime sane
    // at 1024 sessions on small CI hosts; the FLUSH histogram is where
    // the repartition (worker pool round trip) cost shows.
    println!(
        "\n{:>9} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "sessions", "open", "idle RSS", "deltas/s", "flush p50", "flush p99"
    );
    let mut sweep = Vec::new();
    for sessions in [128, 512, 1024] {
        let p = run_sweep(addr, sessions, 2);
        println!(
            "{:>9} {:>7.2}s {:>8.1}MB {:>12.1} {:>10}µs {:>10}µs",
            p.sessions,
            p.open_s,
            p.idle_rss_mb,
            p.deltas_per_s,
            p.flush_us.quantile(0.5),
            p.flush_us.quantile(0.99),
        );
        sweep.push(p);
    }

    // Price the instrumentation itself: the same workload with the
    // igp-obs kill switch off (no counters, no histograms, no clock
    // reads in Histogram::time) vs on. Off/on runs interleave so both
    // sides sample the same machine drift, the workload is 4× the
    // table's (fixed per-connection costs amortize), and each side
    // keeps its best run — residual difference is the instrumentation,
    // not scheduler noise.
    let overhead_policy = "every:5";
    let overhead_clients = 2;
    const OVERHEAD_DELTAS: usize = 100;
    const OVERHEAD_RUNS: usize = 7;
    let (mut off_rate, mut on_rate) = (0f64, 0f64);
    for _ in 0..OVERHEAD_RUNS {
        igp_obs::set_enabled(false);
        let off = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        igp_obs::set_enabled(true);
        let on = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        off_rate = off_rate.max(off.deltas_per_s);
        on_rate = on_rate.max(on.deltas_per_s);
    }
    let obs_overhead_pct = (off_rate / on_rate - 1.0) * 100.0;
    println!(
        "obs overhead ({overhead_policy}, {overhead_clients} clients): \
         off {off_rate:.1} deltas/s, on {on_rate:.1} deltas/s ({obs_overhead_pct:+.2}%)"
    );

    // Same protocol for the tracing layer alone: metrics stay on both
    // sides, only the span recorder flips, so the delta prices the
    // flight-recorder writes (and trace-ctx bookkeeping), not the
    // counters underneath.
    let (mut trace_off_rate, mut trace_on_rate) = (0f64, 0f64);
    for _ in 0..OVERHEAD_RUNS {
        igp_obs::trace::set_trace_enabled(false);
        let off = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        igp_obs::trace::set_trace_enabled(true);
        let on = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        trace_off_rate = trace_off_rate.max(off.deltas_per_s);
        trace_on_rate = trace_on_rate.max(on.deltas_per_s);
    }
    let trace_overhead_pct = (trace_off_rate / trace_on_rate - 1.0) * 100.0;
    println!(
        "trace overhead ({overhead_policy}, {overhead_clients} clients): \
         off {trace_off_rate:.1} deltas/s, on {trace_on_rate:.1} deltas/s \
         ({trace_overhead_pct:+.2}%)"
    );
    assert!(
        trace_overhead_pct < 5.0,
        "tracing costs {trace_overhead_pct:.2}% throughput; the flight \
         recorder is supposed to be ~free (< 5%)"
    );

    // Price the ops plane: the same workload with a concurrent
    // `GET /metrics` scraper hammering the HTTP listener (40 Hz — far
    // hotter than any real Prometheus) vs without. The exposition
    // renders on the event-loop thread, so this is the worst case for
    // scrape interference with serving traffic.
    const SCRAPE_INTERVAL_MS: u64 = 25;
    let (mut plain_rate, mut scraped_rate) = (0f64, 0f64);
    let mut scrapes_total = 0u64;
    for _ in 0..OVERHEAD_RUNS {
        let plain = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        let stop = Arc::new(AtomicBool::new(false));
        let scraper = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (code, _) =
                        http_get(http_addr, "/metrics", Duration::from_secs(10)).expect("scrape");
                    assert_eq!(code, 200, "scrape failed mid-bench");
                    n += 1;
                    std::thread::sleep(Duration::from_millis(SCRAPE_INTERVAL_MS));
                }
                n
            })
        };
        let scraped = run_one(addr, overhead_policy, overhead_clients, OVERHEAD_DELTAS);
        stop.store(true, Ordering::Relaxed);
        scrapes_total += scraper.join().expect("scraper");
        plain_rate = plain_rate.max(plain.deltas_per_s);
        scraped_rate = scraped_rate.max(scraped.deltas_per_s);
    }
    let http_scrape_overhead_pct = (plain_rate / scraped_rate - 1.0) * 100.0;
    println!(
        "http scrape overhead ({overhead_policy}, {overhead_clients} clients, \
         /metrics every {SCRAPE_INTERVAL_MS}ms, {scrapes_total} scrapes): \
         plain {plain_rate:.1} deltas/s, scraped {scraped_rate:.1} deltas/s \
         ({http_scrape_overhead_pct:+.2}%)"
    );
    assert!(
        http_scrape_overhead_pct < 5.0,
        "ops-plane scraping costs {http_scrape_overhead_pct:.2}% throughput; \
         the exposition must stay ~free under load (< 5%)"
    );

    let mut body = String::new();
    body.push_str(&format!(
        "  \"workload\": \"10x10 grid churn, {DELTAS_PER_CLIENT} deltas/client, P={PARTS}, IGPR\",\n"
    ));
    body.push_str(&format!(
        "  \"obs_overhead\": {{\"policy\": \"{overhead_policy}\", \
         \"clients\": {overhead_clients}, \"off_deltas_per_s\": {off_rate:.1}, \
         \"on_deltas_per_s\": {on_rate:.1}, \"overhead_pct\": {obs_overhead_pct:.2}}},\n"
    ));
    body.push_str(&format!(
        "  \"trace_overhead\": {{\"policy\": \"{overhead_policy}\", \
         \"clients\": {overhead_clients}, \"off_deltas_per_s\": {trace_off_rate:.1}, \
         \"on_deltas_per_s\": {trace_on_rate:.1}, \"overhead_pct\": {trace_overhead_pct:.2}}},\n"
    ));
    body.push_str(&format!(
        "  \"http_scrape_overhead\": {{\"policy\": \"{overhead_policy}\", \
         \"clients\": {overhead_clients}, \"scrape_interval_ms\": {SCRAPE_INTERVAL_MS}, \
         \"plain_deltas_per_s\": {plain_rate:.1}, \
         \"scraped_deltas_per_s\": {scraped_rate:.1}, \
         \"overhead_pct\": {http_scrape_overhead_pct:.2}}},\n"
    ));
    body.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"policy\": \"{}\", \"clients\": {}, \"wall_s\": {:.6}, \
             \"deltas_per_s\": {:.1}, \"steps\": {}, {}}}{}\n",
            p.policy,
            p.clients,
            p.wall_s,
            p.deltas_per_s,
            p.steps,
            artifact::hist_fields(&p.delta_us),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    // schema_version 3: the event-loop concurrency sweep. `idle_rss_mb`
    // is the whole process (daemon in-process) with all sessions parked;
    // `flush_*_us` is the client-observed FLUSH round trip (wire +
    // worker-pool repartition).
    body.push_str("  \"concurrency\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"sessions\": {}, \"open_s\": {:.3}, \"idle_rss_mb\": {:.1}, \
             \"deltas_per_s\": {:.1}, \"flush_p50_us\": {}, \"flush_p99_us\": {}, \
             \"flush_max_us\": {}}}{}\n",
            p.sessions,
            p.open_s,
            p.idle_rss_mb,
            p.deltas_per_s,
            p.flush_us.quantile(0.5),
            p.flush_us.quantile(0.99),
            p.flush_us.max(),
            if i + 1 == sweep.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]");
    artifact::write_artifact("BENCH_service.json", &body);

    // Batching sanity: policy-gated batching must not repartition more
    // often than the per-delta loop at identical traffic.
    for &clients in &CLIENTS {
        let per_delta = points
            .iter()
            .find(|p| p.policy == "every:1" && p.clients == clients)
            .unwrap();
        let batched = points
            .iter()
            .find(|p| p.policy == "cost" && p.clients == clients)
            .unwrap();
        assert!(
            batched.steps <= per_delta.steps,
            "cost policy repartitioned more often than every:1"
        );
    }
    println!("batching sanity: cost ≤ every:1 repartitions at equal traffic — OK");
}
