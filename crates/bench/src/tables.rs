//! Paper-style table formatting.
//!
//! Output mirrors the layout of the paper's Figures 11 and 14:
//!
//! ```text
//! |V| = 1096  |E| = 3260                              Cutset
//! Partitioner   Time-s   Model-s   Model-p    Total   Max   Min
//! SB            0.631        --        --       733    56    33
//! IGP           0.013     14.75      0.68       747    55    34
//! IGPR          0.016     16.87      0.88       730    54    34
//! ```
//!
//! `Time-s` is measured wall time on this host; `Model-s` / `Model-p` are
//! the simulated CM-5 1-node / 32-node times from the cost model (the
//! quantity comparable to the paper's `Time-s` / `Time-p` columns).

use crate::experiments::{RowResult, SpeedupPoint, StepResult};
use std::fmt::Write;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:9.2}"),
        None => format!("{:>9}", "--"),
    }
}

/// Render the SB row for the initial mesh (the paper's "Initial Graph"
/// sub-table).
pub fn base_table(name: &str, nv: usize, ne: usize, base: &RowResult) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Initial graph {name}: |V| = {nv}  |E| = {ne}");
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>9} {:>9} {:>8} {:>5} {:>5}",
        "Partitioner", "Time-s", "Model-s", "Model-p", "Total", "Max", "Min"
    );
    let _ = writeln!(
        s,
        "{:<12} {:>8.3} {:>9} {:>9} {:>8} {:>5} {:>5}",
        base.name, base.wall_s, "--", "--", base.cut_total, base.cut_max, base.cut_min
    );
    s
}

/// Render one incremental step as a paper-style sub-table.
pub fn step_table(step: &StepResult) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\n|V| = {}  |E| = {}                         Cutset",
        step.num_vertices, step.num_edges
    );
    let _ = writeln!(
        s,
        "{:<12} {:>8} {:>9} {:>9} {:>8} {:>5} {:>5}  stages  LP(v x c)",
        "Partitioner", "Time-s", "Model-s", "Model-p", "Total", "Max", "Min"
    );
    for r in &step.rows {
        let stages = if r.name == "SB" {
            String::new()
        } else if r.lp_size.0 > 0 {
            format!("{:>6}  {} x {}", r.stages, r.lp_size.0, r.lp_size.1)
        } else {
            format!("{:>6}", r.stages)
        };
        let _ = writeln!(
            s,
            "{:<12} {:>8.3} {} {} {:>8} {:>5} {:>5}  {}",
            r.name,
            r.wall_s,
            fmt_opt(r.model_s),
            fmt_opt(r.model_p),
            r.cut_total,
            r.cut_max,
            r.cut_min,
            stages
        );
    }
    s
}

/// Render a whole experiment (base + steps).
pub fn full_table(
    name: &str,
    nv: usize,
    ne: usize,
    base: &RowResult,
    steps: &[StepResult],
) -> String {
    let mut s = base_table(name, nv, ne, base);
    for step in steps {
        s.push_str(&step_table(step));
    }
    s
}

/// Render the speedup sweep (experiment E3).
pub fn speedup_table(label: &str, points: &[SpeedupPoint]) -> String {
    speedup_table_for(label, points, igp_runtime::Backend::SimCm5)
}

/// [`speedup_table`] with the time column labelled for the backend that
/// produced the points: simulated `model-time` under `SimCm5`, measured
/// `rank-time` (slowest rank's wall clock) under `SharedMem`.
pub fn speedup_table_for(
    label: &str,
    points: &[SpeedupPoint],
    backend: igp_runtime::Backend,
) -> String {
    let time_col = match backend {
        igp_runtime::Backend::SimCm5 => "model-time",
        igp_runtime::Backend::SharedMem => "rank-time",
    };
    let mut s = String::new();
    let _ = writeln!(s, "Speedup sweep — {label}");
    let _ = writeln!(
        s,
        "{:>8} {:>12} {:>10} {:>12}",
        "workers", time_col, "speedup", "wall-time"
    );
    for p in points {
        let _ = writeln!(
            s,
            "{:>8} {:>11.3}s {:>9.2}x {:>11.3}s",
            p.workers, p.model_time, p.model_speedup, p.wall_time
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &'static str) -> RowResult {
        RowResult {
            name,
            wall_s: 0.5,
            model_s: if name == "SB" { None } else { Some(14.75) },
            model_p: if name == "SB" { None } else { Some(0.68) },
            cut_total: 747,
            cut_max: 55,
            cut_min: 34,
            stages: 1,
            lp_size: (188, 126),
        }
    }

    #[test]
    fn step_table_contains_paper_columns() {
        let step = StepResult {
            label: "A1".into(),
            num_vertices: 1096,
            num_edges: 3260,
            rows: vec![row("SB"), row("IGP"), row("IGPR")],
        };
        let t = step_table(&step);
        assert!(t.contains("|V| = 1096"));
        assert!(t.contains("Cutset"));
        assert!(t.contains("IGPR"));
        assert!(t.contains("188 x 126"));
        assert!(t.contains("747"));
    }

    #[test]
    fn speedup_table_renders() {
        let pts = vec![
            SpeedupPoint {
                workers: 1,
                model_time: 10.0,
                model_speedup: 1.0,
                wall_time: 0.1,
            },
            SpeedupPoint {
                workers: 32,
                model_time: 0.55,
                model_speedup: 18.2,
                wall_time: 0.2,
            },
        ];
        let t = speedup_table("mesh A step 1", &pts);
        assert!(t.contains("18.20x"));
        assert!(t.contains("workers"));
    }
}
