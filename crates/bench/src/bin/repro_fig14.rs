//! Regenerates the paper's **Figure 14** table (test set B): the
//! 10166-node highly irregular mesh with star increments of +48, +139,
//! +229 and +672 nodes concentrated in one region, 32 partitions.
//! The paper reports stage counts 1, 1, 2, 3 for these increments.
//!
//! ```text
//! cargo run -p igp-bench --release --bin repro_fig14 [seed] [parts]
//! ```

use igp_bench::experiments::{run_sequence_experiment, Fidelity};
use igp_bench::tables::full_table;
use igp_mesh::sequence::paper_sequence_b;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let parts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    if parts == 0 {
        eprintln!("error: parts must be >= 1");
        std::process::exit(2);
    }

    eprintln!("building mesh sequence B (seed {seed}) — 10k nodes, takes a few seconds ...");
    let seq = paper_sequence_b(seed);
    eprintln!(
        "base mesh: {} nodes, {} edges (paper: 10166 nodes, 30471 edges)",
        seq.base.num_vertices(),
        seq.base.num_edges()
    );
    let (base, steps) = run_sequence_experiment(&seq, parts, Fidelity::full());
    println!("==== Figure 14 reproduction: test set B, P = {parts} ====\n");
    println!(
        "{}",
        full_table(
            "B",
            seq.base.num_vertices(),
            seq.base.num_edges(),
            &base,
            &steps
        )
    );
    println!("paper reference (32 partitions, CM-5):");
    println!("  +48  (10214): SB 800.05s / IGP 13.90s, 1.01s par, 1 stage");
    println!("  +139 (10305): SB 814.36s / IGP 18.89s, 1.08s par, 1 stage");
    println!("  +229 (10395): SB 853.35s / IGP(2) 35.98s, 2.08s par, 2 stages");
    println!("  +672 (10838): SB 904.81s / IGP(3) 76.78s, 3.66s par, 3 stages");
    println!("\nshape checks (see EXPERIMENTS.md E2):");
    let mut prev_stages = 0usize;
    let mut monotone = true;
    for s in &steps {
        let sb = &s.rows[0];
        let igp = &s.rows[1];
        let igpr = &s.rows[2];
        println!(
            "  {}: stages = {}, cut(IGP)/cut(SB) = {:.3}, cut(IGPR)/cut(SB) = {:.3}, \
             IGP speedup over SB (wall) = {:.1}x",
            s.label,
            igp.stages,
            igp.cut_total as f64 / sb.cut_total as f64,
            igpr.cut_total as f64 / sb.cut_total as f64,
            sb.wall_s / igp.wall_s.max(1e-9)
        );
        monotone &= igp.stages >= prev_stages;
        prev_stages = igp.stages;
    }
    println!(
        "\nstage counts non-decreasing with increment size: {}",
        if monotone {
            "HOLDS (paper: 1,1,2,3)"
        } else {
            "VIOLATED"
        }
    );
}
