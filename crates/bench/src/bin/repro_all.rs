//! Runs every reproduction experiment in one pass (E1–E3 via the other
//! binaries' code paths, plus the worked-LP checks E4/E5 and the LP-size
//! accounting E7) and prints a combined report. Used to fill
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p igp-bench --release --bin repro_all [seed]
//! ```

use igp_bench::experiments::{run_sequence_experiment, run_speedup_experiment, Fidelity};
use igp_bench::tables::{full_table, speedup_table};
use igp_lp::{solve, LpModel};
use igp_mesh::sequence::{paper_sequence_a, paper_sequence_b};
use igp_spectral::{recursive_spectral_bisection, RsbOptions};

fn check_figure5() {
    let caps = [9.0, 7.0, 12.0, 10.0, 11.0, 3.0, 7.0, 9.0, 7.0, 5.0];
    let mut m = LpModel::minimize(10);
    for i in 0..10 {
        m.set_objective(i, 1.0);
        m.set_upper_bound(i, caps[i]);
    }
    m.add_eq(
        vec![
            (0, 1.0),
            (1, 1.0),
            (2, 1.0),
            (3, -1.0),
            (5, -1.0),
            (8, -1.0),
        ],
        8.0,
    );
    m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 1.0);
    m.add_eq(
        vec![
            (5, 1.0),
            (6, 1.0),
            (7, 1.0),
            (1, -1.0),
            (4, -1.0),
            (9, -1.0),
        ],
        -1.0,
    );
    m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], -8.0);
    let s = solve(&m).unwrap();
    println!(
        "E4 (paper Figure 5 LP): objective = {} (paper: l03=8, l12=1, total 9) -> {}",
        s.objective,
        if (s.objective - 9.0).abs() < 1e-6 && (s.x[2] - 8.0).abs() < 1e-6 {
            "MATCHES"
        } else {
            "MISMATCH"
        }
    );
}

fn check_figure8() {
    let caps = [1.0, 1.0, 1.0, 2.0, 1.0, 0.0, 1.0, 1.0, 2.0, 1.0];
    let mut m = LpModel::maximize(10);
    for i in 0..10 {
        m.set_objective(i, 1.0);
        m.set_upper_bound(i, caps[i]);
    }
    m.add_eq(
        vec![
            (0, 1.0),
            (1, 1.0),
            (2, 1.0),
            (3, -1.0),
            (5, -1.0),
            (8, -1.0),
        ],
        0.0,
    );
    m.add_eq(vec![(3, 1.0), (4, 1.0), (0, -1.0), (6, -1.0)], 0.0);
    m.add_eq(
        vec![
            (5, 1.0),
            (6, 1.0),
            (7, 1.0),
            (1, -1.0),
            (4, -1.0),
            (9, -1.0),
        ],
        0.0,
    );
    m.add_eq(vec![(8, 1.0), (9, 1.0), (2, -1.0), (7, -1.0)], 0.0);
    let s = solve(&m).unwrap();
    println!(
        "E5 (paper Figure 8 LP): objective = {} (LP optimum 9; the paper prints a \
         solution totalling 8 with a per-node conservation typo) -> {}",
        s.objective,
        if (s.objective - 9.0).abs() < 1e-6 {
            "LP OPTIMUM CONFIRMED"
        } else {
            "MISMATCH"
        }
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let parts = 32;
    println!("================ repro_all (seed {seed}, P = {parts}) ================\n");
    check_figure5();
    check_figure8();

    println!("\n---------------- E1: Figure 11 (test set A) ----------------");
    let seq_a = paper_sequence_a(seed);
    let (base_a, steps_a) = run_sequence_experiment(&seq_a, parts, Fidelity::full());
    println!(
        "{}",
        full_table(
            "A",
            seq_a.base.num_vertices(),
            seq_a.base.num_edges(),
            &base_a,
            &steps_a
        )
    );
    // E7: LP sizes (paper: v = 188, c = 126 for the first increment).
    let (v, c) = steps_a[0].rows[1].lp_size;
    println!("E7: balance LP size on A1 = {v} vars x {c} constraints (paper: 188 x 126)");

    println!("\n---------------- E2: Figure 14 (test set B) ----------------");
    let seq_b = paper_sequence_b(seed);
    let (base_b, steps_b) = run_sequence_experiment(&seq_b, parts, Fidelity::full());
    println!(
        "{}",
        full_table(
            "B",
            seq_b.base.num_vertices(),
            seq_b.base.num_edges(),
            &base_b,
            &steps_b
        )
    );
    println!(
        "stage counts: {:?} (paper: [1, 1, 2, 3])",
        steps_b.iter().map(|s| s.rows[1].stages).collect::<Vec<_>>()
    );

    println!("\n---------------- E3: speedup ----------------");
    let old_a = recursive_spectral_bisection(&seq_a.base, parts, RsbOptions::default());
    let pts = run_speedup_experiment(
        &seq_a.steps[0].inc,
        &old_a,
        parts,
        &[1, 2, 4, 8, 16, 32],
        false,
    );
    println!("{}", speedup_table("test A step 1, IGP", &pts));
    println!(
        "32-worker modeled speedup: {:.1}x (paper claims 15-20x)",
        pts.last().unwrap().model_speedup
    );
}
