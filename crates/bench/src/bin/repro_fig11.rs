//! Regenerates the paper's **Figure 11** table (test set A): SB vs IGP vs
//! IGPR on the chained mesh sequence 1071 → 1096 → 1121 → 1152 → 1192
//! nodes, 32 partitions.
//!
//! ```text
//! cargo run -p igp-bench --release --bin repro_fig11 [seed] [parts]
//! ```

use igp_bench::experiments::{run_sequence_experiment, Fidelity};
use igp_bench::tables::full_table;
use igp_mesh::sequence::paper_sequence_a;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(42);
    let parts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    if parts == 0 {
        eprintln!("error: parts must be >= 1");
        std::process::exit(2);
    }

    eprintln!("building mesh sequence A (seed {seed}) ...");
    let seq = paper_sequence_a(seed);
    eprintln!(
        "base mesh: {} nodes, {} edges (paper: 1071 nodes, 3185 edges)",
        seq.base.num_vertices(),
        seq.base.num_edges()
    );
    let (base, steps) = run_sequence_experiment(&seq, parts, Fidelity::full());
    println!("==== Figure 11 reproduction: test set A, P = {parts} ====\n");
    println!(
        "{}",
        full_table(
            "A",
            seq.base.num_vertices(),
            seq.base.num_edges(),
            &base,
            &steps
        )
    );
    println!("paper reference (32 partitions, CM-5):");
    println!("  |V|=1096: SB 31.71s  / IGP 14.75s, 0.68s par, cut 747 / IGPR 730");
    println!("  |V|=1121: SB 34.05s  / IGP 13.63s, 0.73s par, cut 752 / IGPR 727");
    println!("  |V|=1152: SB 34.96s  / IGP 15.89s, 0.92s par, cut 757 / IGPR 741");
    println!("  |V|=1192: SB 38.20s  / IGP 15.69s, 0.94s par, cut 815 / IGPR 779");
    println!("\nshape checks (see EXPERIMENTS.md E1):");
    let mut ok = true;
    for s in &steps {
        let sb = &s.rows[0];
        let igp = &s.rows[1];
        let igpr = &s.rows[2];
        let q_igp = igp.cut_total as f64 / sb.cut_total as f64;
        let q_igpr = igpr.cut_total as f64 / sb.cut_total as f64;
        let faster = igp.wall_s < sb.wall_s;
        let par_gain = igp.model_s.unwrap() / igp.model_p.unwrap();
        println!(
            "  {}: cut(IGP)/cut(SB) = {q_igp:.3}, cut(IGPR)/cut(SB) = {q_igpr:.3}, \
             IGP {:.1}x faster than SB (wall), modeled parallel gain {par_gain:.1}x",
            s.label,
            sb.wall_s / igp.wall_s.max(1e-9),
        );
        ok &= q_igp < 1.25 && q_igpr < 1.20 && faster;
    }
    println!("\nshape {}", if ok { "HOLDS" } else { "VIOLATED" });
}
