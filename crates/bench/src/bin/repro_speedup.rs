//! Regenerates the paper's in-text parallel-speedup claim (experiment E3):
//! "The algorithm provides speedup of around 15 to 20 on a 32 node CM-5."
//!
//! Sweeps SPMD worker counts 1..32 on an increment from each test set and
//! prints the per-worker times plus speedup. The substrate is selectable
//! (DESIGN.md §6): under `sim-cm5` the sweep reports simulated CM-5 times
//! (cost model: DESIGN.md §4); under `shared-mem` it reports real wall
//! time on this host, bounded by the core count.
//!
//! ```text
//! cargo run -p igp-bench --release --bin repro_speedup [seed] [parts] [backend]
//! ```
//!
//! `backend` is `sim-cm5` (default) or `shared-mem`.

use igp_bench::experiments::run_speedup_experiment_on;
use igp_bench::tables::speedup_table_for;
use igp_mesh::sequence::{paper_sequence_a, paper_sequence_b};
use igp_runtime::Backend;
use igp_spectral::{recursive_spectral_bisection, RsbOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    // Positional args are strict: a malformed `seed` or `parts` must not
    // silently become the default and swallow what the user meant as a
    // later argument (e.g. `repro_speedup 42 shared-mem`).
    let seed: u64 = match args.next() {
        None => 42,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "error: seed must be a number (got '{s}'); usage: repro_speedup [seed] [parts] [backend]"
                );
                std::process::exit(2);
            }
        },
    };
    let parts: usize = match args.next() {
        None => 32,
        Some(s) => match s.parse() {
            Ok(p) if p >= 1 => p,
            Ok(_) => {
                eprintln!("error: parts must be >= 1");
                std::process::exit(2);
            }
            Err(_) => {
                eprintln!("error: parts must be a number >= 1 (got '{s}'); usage: repro_speedup [seed] [parts] [backend]");
                std::process::exit(2);
            }
        },
    };
    let backend: Backend = match args.next() {
        None => Backend::SimCm5,
        Some(s) => match s.parse() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
    };
    let workers = [1usize, 2, 4, 8, 16, 32];

    eprintln!("building mesh sequence A (seed {seed}) ...");
    let seq_a = paper_sequence_a(seed);
    let old_a = recursive_spectral_bisection(&seq_a.base, parts, RsbOptions::default());
    let pts_a =
        run_speedup_experiment_on(&seq_a.steps[0].inc, &old_a, parts, &workers, false, backend);
    println!("==== Speedup reproduction (E3), P = {parts}, backend = {backend} ====\n");
    println!(
        "{}",
        speedup_table_for("test A, 1071 -> 1096 nodes, IGP", &pts_a, backend)
    );

    eprintln!("building mesh sequence B (seed {seed}) ...");
    let seq_b = paper_sequence_b(seed);
    let old_b = recursive_spectral_bisection(&seq_b.base, parts, RsbOptions::default());
    let pts_b =
        run_speedup_experiment_on(&seq_b.steps[3].inc, &old_b, parts, &workers, false, backend);
    println!(
        "{}",
        speedup_table_for("test B, 10166 -> 10838 nodes (+672), IGP", &pts_b, backend)
    );

    let s_a = pts_a.last().unwrap().model_speedup;
    let s_b = pts_b.last().unwrap().model_speedup;
    match backend {
        Backend::SimCm5 => {
            println!("paper claim: speedup 15–20 at 32 nodes.");
            println!("measured (modeled CM-5): A = {s_a:.1}x, B = {s_b:.1}x at 32 workers.");
            println!(
                "shape {}",
                if s_a > 8.0 && s_b > 8.0 {
                    "HOLDS (within 2x of claim)"
                } else {
                    "VIOLATED"
                }
            );
            println!("(real wall speedup is bounded by this host's core count; see DESIGN.md §4)");
        }
        Backend::SharedMem => {
            println!("shared-mem wall speedup at 32 workers: A = {s_a:.1}x, B = {s_b:.1}x");
            println!(
                "(wall time on this host; the CM-5 shape claim is checked under sim-cm5 — \
                 see DESIGN.md §6 and EXPERIMENTS.md E3)"
            );
        }
    }
}
