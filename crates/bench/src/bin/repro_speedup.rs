//! Regenerates the paper's in-text parallel-speedup claim (experiment E3):
//! "The algorithm provides speedup of around 15 to 20 on a 32 node CM-5."
//!
//! Sweeps SPMD worker counts 1..32 on an increment from each test set and
//! prints simulated CM-5 times (cost model: DESIGN.md §4) plus the real
//! wall time of the threaded run on this host.
//!
//! ```text
//! cargo run -p igp-bench --release --bin repro_speedup [seed]
//! ```

use igp_bench::experiments::run_speedup_experiment;
use igp_bench::tables::speedup_table;
use igp_mesh::sequence::{paper_sequence_a, paper_sequence_b};
use igp_spectral::{recursive_spectral_bisection, RsbOptions};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let workers = [1usize, 2, 4, 8, 16, 32];
    let parts = 32;

    eprintln!("building mesh sequence A (seed {seed}) ...");
    let seq_a = paper_sequence_a(seed);
    let old_a = recursive_spectral_bisection(&seq_a.base, parts, RsbOptions::default());
    let pts_a = run_speedup_experiment(&seq_a.steps[0].inc, &old_a, parts, &workers, false);
    println!("==== Speedup reproduction (E3), P = {parts} ====\n");
    println!(
        "{}",
        speedup_table("test A, 1071 -> 1096 nodes, IGP", &pts_a)
    );

    eprintln!("building mesh sequence B (seed {seed}) ...");
    let seq_b = paper_sequence_b(seed);
    let old_b = recursive_spectral_bisection(&seq_b.base, parts, RsbOptions::default());
    let pts_b = run_speedup_experiment(&seq_b.steps[3].inc, &old_b, parts, &workers, false);
    println!(
        "{}",
        speedup_table("test B, 10166 -> 10838 nodes (+672), IGP", &pts_b)
    );

    let s_a = pts_a.last().unwrap().model_speedup;
    let s_b = pts_b.last().unwrap().model_speedup;
    println!("paper claim: speedup 15–20 at 32 nodes.");
    println!("measured (modeled CM-5): A = {s_a:.1}x, B = {s_b:.1}x at 32 workers.");
    println!(
        "shape {}",
        if s_a > 8.0 && s_b > 8.0 {
            "HOLDS (within 2x of claim)"
        } else {
            "VIOLATED"
        }
    );
    println!("(real wall speedup is bounded by this host's core count; see DESIGN.md §4)");
}
