//! # igp-bench — experiment harness for the SC'94 reproduction
//!
//! Regenerates every table and figure from the paper's evaluation
//! (see DESIGN.md §3 for the experiment index):
//!
//! * [`experiments::run_sequence_experiment`] — the Figure 11 / Figure 14
//!   tables: SB (recursive spectral bisection from scratch) vs IGP vs
//!   IGPR per incremental mesh, with cutset total/max/min, measured
//!   sequential wall time, and simulated CM-5 `Time-s` / `Time-p`.
//! * [`experiments::run_speedup_experiment`] — the in-text "speedup of
//!   around 15 to 20 on a 32-node CM-5" claim, sweeping worker counts.
//! * `repro_*` binaries print the tables; Criterion benches under
//!   `benches/` track the same kernels as regressions.

pub mod artifact;
pub mod experiments;
pub mod tables;

pub use experiments::{
    run_sequence_experiment, run_speedup_experiment, RowResult, SpeedupPoint, StepResult,
};
