//! Experiment runners shared by the `repro_*` binaries and the Criterion
//! benches.

use igp_core::parallel::ParallelPartitioner;
use igp_core::{IgpConfig, IncrementalPartitioner};
use igp_graph::metrics::CutMetrics;
use igp_graph::{CsrGraph, IncrementalGraph, Partitioning};
use igp_mesh::sequence::MeshSequence;
use igp_runtime::{Backend, CostModel};
use igp_spectral::{recursive_spectral_bisection, FiedlerOptions, RsbOptions};
use std::time::Instant;

/// One printed table row (one partitioner on one incremental mesh).
#[derive(Clone, Debug)]
pub struct RowResult {
    /// `"SB"`, `"IGP"` or `"IGPR"`.
    pub name: &'static str,
    /// Measured sequential wall time on this host (seconds).
    pub wall_s: f64,
    /// Simulated 1-rank CM-5 time (seconds); `None` for SB.
    pub model_s: Option<f64>,
    /// Simulated 32-rank CM-5 time (seconds); `None` for SB.
    pub model_p: Option<f64>,
    /// Cut edges (paper `Cutset Total`).
    pub cut_total: u64,
    /// `max_q C(q)`.
    pub cut_max: u64,
    /// `min_q C(q)`.
    pub cut_min: u64,
    /// Balancing stages used (IGP/IGPR only; paper Figure 14 footnote).
    pub stages: usize,
    /// Largest LP size solved, `(vars, constraints)` — experiment E7.
    pub lp_size: (usize, usize),
}

/// Results for one incremental mesh.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Step label from the mesh sequence.
    pub label: String,
    /// `|V|` of the incremental graph.
    pub num_vertices: usize,
    /// `|E|` of the incremental graph.
    pub num_edges: usize,
    /// SB / IGP / IGPR rows.
    pub rows: Vec<RowResult>,
}

/// Fidelity knobs (benches use lighter spectral settings than the repro
/// binaries; quality changes by a few percent, runtime by ~10×).
#[derive(Clone, Copy, Debug)]
pub struct Fidelity {
    /// Fiedler solver settings for the SB baseline.
    pub fiedler: FiedlerOptions,
    /// Parallel worker count used for the modeled `Time-p`.
    pub model_workers: usize,
}

impl Fidelity {
    /// Settings for the `repro_*` binaries (paper-faithful).
    pub fn full() -> Self {
        Fidelity {
            fiedler: FiedlerOptions::default(),
            model_workers: 32,
        }
    }

    /// Cheaper settings for Criterion iterations.
    pub fn bench() -> Self {
        Fidelity {
            fiedler: FiedlerOptions {
                subspace: 40,
                max_restarts: 4,
                tol: 1e-4,
                seed: 0x5eed,
            },
            model_workers: 32,
        }
    }
}

fn cut_row(g: &CsrGraph, part: &Partitioning) -> (u64, u64, u64) {
    let m = CutMetrics::compute(g, part);
    (m.total_cut_edges, m.max_boundary, m.min_boundary)
}

/// Run SB / IGP / IGPR on every step of a mesh sequence with `p`
/// partitions — the Figure 11 (chained) and Figure 14 (star) experiment.
///
/// Returns `(base_row, steps)`: the SB row for the base mesh plus one
/// [`StepResult`] per increment. For chained sequences the incremental
/// partitioner's result is carried forward as the next step's old
/// partitioning, as in the paper ("using the partitioning obtained by
/// using the IGP for the previous mesh in the sequence"); we carry the
/// refined (IGPR) partitioning so per-step rows measure one increment
/// from a healthy base rather than compounding unrefined drift.
pub fn run_sequence_experiment(
    seq: &MeshSequence,
    p: usize,
    fid: Fidelity,
) -> (RowResult, Vec<StepResult>) {
    let rsb_opts = RsbOptions {
        fiedler: fid.fiedler,
    };
    // Base partitioning via RSB (timed).
    let t = Instant::now();
    let base_part = recursive_spectral_bisection(&seq.base, p, rsb_opts);
    let base_wall = t.elapsed().as_secs_f64();
    let (ct, cmax, cmin) = cut_row(&seq.base, &base_part);
    let base_row = RowResult {
        name: "SB",
        wall_s: base_wall,
        model_s: None,
        model_p: None,
        cut_total: ct,
        cut_max: cmax,
        cut_min: cmin,
        stages: 0,
        lp_size: (0, 0),
    };

    let mut carried = base_part.clone();
    let mut steps = Vec::new();
    for step in &seq.steps {
        let inc = &step.inc;
        let g = inc.new_graph();
        let old_part = if seq.chained {
            carried.clone()
        } else {
            base_part.clone()
        };
        let mut rows = Vec::new();

        // SB from scratch on the new graph.
        let t = Instant::now();
        let sb = recursive_spectral_bisection(g, p, rsb_opts);
        let sb_wall = t.elapsed().as_secs_f64();
        let (ct, cmax, cmin) = cut_row(g, &sb);
        rows.push(RowResult {
            name: "SB",
            wall_s: sb_wall,
            model_s: None,
            model_p: None,
            cut_total: ct,
            cut_max: cmax,
            cut_min: cmin,
            stages: 0,
            lp_size: (0, 0),
        });

        // IGP (sequential wall + modeled times).
        let igp = IncrementalPartitioner::igp(IgpConfig::new(p));
        let t = Instant::now();
        let (igp_part, igp_rep) = igp.repartition(inc, &old_part);
        let igp_wall = t.elapsed().as_secs_f64();
        let model_s = model_time(inc, &old_part, p, 1, false);
        let model_p = model_time(inc, &old_part, p, fid.model_workers, false);
        let (ct, cmax, cmin) = cut_row(g, &igp_part);
        rows.push(RowResult {
            name: "IGP",
            wall_s: igp_wall,
            model_s: Some(model_s),
            model_p: Some(model_p),
            cut_total: ct,
            cut_max: cmax,
            cut_min: cmin,
            stages: igp_rep.num_stages(),
            lp_size: igp_rep.max_lp_size(),
        });

        // IGPR.
        let igpr = IncrementalPartitioner::igpr(IgpConfig::new(p));
        let t = Instant::now();
        let (igpr_part, igpr_rep) = igpr.repartition(inc, &old_part);
        let igpr_wall = t.elapsed().as_secs_f64();
        let model_s_r = model_time(inc, &old_part, p, 1, true);
        let model_p_r = model_time(inc, &old_part, p, fid.model_workers, true);
        let (ct, cmax, cmin) = cut_row(g, &igpr_part);
        rows.push(RowResult {
            name: "IGPR",
            wall_s: igpr_wall,
            model_s: Some(model_s_r),
            model_p: Some(model_p_r),
            cut_total: ct,
            cut_max: cmax,
            cut_min: cmin,
            stages: igpr_rep.num_stages(),
            lp_size: igpr_rep.max_lp_size(),
        });

        steps.push(StepResult {
            label: step.label.clone(),
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            rows,
        });
        let _ = igp_part;
        carried = igpr_part;
    }
    (base_row, steps)
}

/// Simulated CM-5 makespan for one IGP/IGPR run on `workers` ranks.
pub fn model_time(
    inc: &IncrementalGraph,
    old: &Partitioning,
    p: usize,
    workers: usize,
    refine: bool,
) -> f64 {
    let pp = ParallelPartitioner::new(IgpConfig::new(p), workers, refine, CostModel::cm5());
    let (_, rep) = pp.repartition(inc, old);
    rep.sim.makespan
}

/// One point of the speedup sweep.
#[derive(Clone, Debug)]
pub struct SpeedupPoint {
    /// Worker count.
    pub workers: usize,
    /// Makespan: simulated CM-5 time under [`Backend::SimCm5`], measured
    /// wall seconds under [`Backend::SharedMem`].
    pub model_time: f64,
    /// Speedup vs 1 worker (same unit as `model_time`).
    pub model_speedup: f64,
    /// Real wall time of the threaded run on this host.
    pub wall_time: f64,
}

/// Sweep worker counts on one incremental step (experiment E3) under the
/// simulated-CM-5 backend.
pub fn run_speedup_experiment(
    inc: &IncrementalGraph,
    old: &Partitioning,
    p: usize,
    worker_counts: &[usize],
    refine: bool,
) -> Vec<SpeedupPoint> {
    run_speedup_experiment_on(inc, old, p, worker_counts, refine, Backend::SimCm5)
}

/// [`run_speedup_experiment`] on an explicit [`Backend`]. Under
/// [`Backend::SharedMem`] the curve is real wall time — bounded by this
/// host's core count rather than the CM-5 cost model.
pub fn run_speedup_experiment_on(
    inc: &IncrementalGraph,
    old: &Partitioning,
    p: usize,
    worker_counts: &[usize],
    refine: bool,
    backend: Backend,
) -> Vec<SpeedupPoint> {
    let mut out = Vec::new();
    let mut base = None;
    for &w in worker_counts {
        let cfg = IgpConfig::new(p).with_backend(backend);
        let pp = ParallelPartitioner::new(cfg, w, refine, CostModel::cm5());
        let (_, rep) = pp.repartition(inc, old);
        let t = rep.sim.makespan;
        let b = *base.get_or_insert(t);
        out.push(SpeedupPoint {
            workers: w,
            model_time: t,
            model_speedup: b / t,
            wall_time: rep.sim.wall_seconds,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igp_mesh::sequence::tiny_sequence;

    #[test]
    fn tiny_sequence_experiment_shape() {
        let seq = tiny_sequence(3);
        let (base, steps) = run_sequence_experiment(&seq, 4, Fidelity::bench());
        assert_eq!(base.name, "SB");
        assert!(base.cut_total > 0);
        assert_eq!(steps.len(), 2);
        for s in &steps {
            assert_eq!(s.rows.len(), 3);
            let sb = &s.rows[0];
            let igp = &s.rows[1];
            let igpr = &s.rows[2];
            // Quality shape: IGPR ≤ IGP (+ slack), both within ~2× SB on a
            // tiny mesh (statistical noise is large at this size).
            assert!(igpr.cut_total <= igp.cut_total + 2);
            assert!(igp.cut_total as f64 <= 2.5 * sb.cut_total as f64 + 10.0);
            // Modeled parallel time beats modeled sequential time.
            assert!(igp.model_p.unwrap() < igp.model_s.unwrap());
            assert!(igp.stages >= 1);
        }
    }

    #[test]
    fn speedup_monotone_on_tiny() {
        let seq = tiny_sequence(5);
        let old = recursive_spectral_bisection(&seq.base, 4, RsbOptions::default());
        let pts = run_speedup_experiment(&seq.steps[0].inc, &old, 4, &[1, 2, 8], false);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].model_speedup - 1.0).abs() < 1e-9);
        assert!(pts[2].model_speedup > pts[1].model_speedup * 0.8);
        assert!(pts[1].model_speedup > 1.0);
    }
}
