//! Shared machine-readable bench artifact writer.
//!
//! The custom-harness benches (`benches/{backend,service,store}.rs`)
//! each emit a `BENCH_*.json` in the working directory for CI to
//! upload. This module is the one place that knows the envelope: a
//! `schema_version` stamp (bump on any incompatible field change), the
//! host's core count (scaling results are meaningless without it), and
//! the write-or-warn handling that used to be copy-pasted per bench.
//!
//! JSON is hand-rolled throughout — the offline workspace has no serde.

use std::fmt::Write as _;

/// Version of the `BENCH_*.json` envelope + field layout. History:
/// 1 = pre-envelope (ad-hoc per bench); 2 = shared envelope with
/// `schema_version`/`host_cores` stamped here and `p50/p99` latency
/// columns from [`igp_obs::Histogram`]; 3 = `BENCH_service.json` gains
/// a `concurrency` section (event-loop session sweep: per-N
/// `sessions`, `open_s`, `idle_rss_mb`, `deltas_per_s`,
/// `flush_p50_us`/`flush_p99_us`/`flush_max_us`); 4 =
/// `BENCH_service.json` gains `trace_overhead` (A/B of the request
/// flight recorder with metrics held on, same envelope as
/// `obs_overhead`); 5 = `BENCH_service.json` gains
/// `http_scrape_overhead` (same workload with a concurrent ops-plane
/// `GET /metrics` scraper vs without; the exposition renders on the
/// event-loop thread, so this prices scraping under load).
pub const SCHEMA_VERSION: u32 = 5;

/// The host's logical core count (1 if undeterminable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Render a histogram's standard latency columns as JSON fields
/// (no surrounding braces): `"p50_us": …, "p99_us": …, "max_us": …,
/// "count": …`.
pub fn hist_fields(h: &igp_obs::Histogram) -> String {
    format!(
        "\"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"count\": {}",
        h.quantile(0.5),
        h.quantile(0.99),
        h.max(),
        h.count()
    )
}

/// Wrap bench-specific fields in the common envelope and write
/// `path`. `body` is the inner field list (no outer braces, trailing
/// comma or newline required on the last line). A failed write warns —
/// a bench that computed its table must not die on a read-only CWD.
pub fn write_artifact(path: &str, body: &str) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"host_cores\": {},", host_cores());
    json.push_str(body.trim_end_matches('\n'));
    json.push_str("\n}\n");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            igp_obs::warn!(target: "bench", "could not write artifact"; path = path, error = e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_stamps_schema_and_cores() {
        let dir = std::env::temp_dir().join(format!("igp-bench-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let path_str = path.to_str().unwrap().to_string();
        write_artifact(&path_str, "  \"answer\": 42");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n  \"schema_version\": "), "{text}");
        assert!(text.contains("\"host_cores\": "), "{text}");
        assert!(text.contains("\"answer\": 42"), "{text}");
        assert!(text.trim_end().ends_with('}'), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hist_fields_render_quantiles() {
        let h = igp_obs::Histogram::new();
        igp_obs::set_enabled(true);
        for v in 1..=100 {
            h.observe(v);
        }
        let f = hist_fields(&h);
        assert!(f.contains("\"p50_us\": "), "{f}");
        assert!(f.contains("\"count\": 100"), "{f}");
    }
}
