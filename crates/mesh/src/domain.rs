//! Composable irregular 2-D domains.
//!
//! DIME meshes cover irregular (non-convex, holed) regions. A [`Domain`]
//! is anything that can answer point membership; constructive solid
//! geometry combinators build the paper-like test shapes.

use crate::geometry::Point;

/// A region of the plane.
pub trait Domain: Send + Sync {
    /// True if `p` is inside the region.
    fn contains(&self, p: Point) -> bool;
    /// A bounding box `(min, max)` enclosing the region.
    fn bounding_box(&self) -> (Point, Point);
}

/// Axis-aligned rectangle.
#[derive(Clone, Copy, Debug)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Construct from corners.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(min.x < max.x && min.y < max.y, "degenerate rectangle");
        Rect { min, max }
    }
}

impl Domain for Rect {
    fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
    fn bounding_box(&self) -> (Point, Point) {
        (self.min, self.max)
    }
}

/// Disc of radius `r` around `center`.
#[derive(Clone, Copy, Debug)]
pub struct Disc {
    /// Centre.
    pub center: Point,
    /// Radius.
    pub radius: f64,
}

impl Disc {
    /// Construct a disc.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius > 0.0);
        Disc { center, radius }
    }
}

impl Domain for Disc {
    fn contains(&self, p: Point) -> bool {
        p.dist2(self.center) <= self.radius * self.radius
    }
    fn bounding_box(&self) -> (Point, Point) {
        (
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }
}

/// Closed half-plane `n·(p − a) ≥ 0`.
#[derive(Clone, Copy, Debug)]
pub struct HalfPlane {
    /// A point on the boundary line.
    pub anchor: Point,
    /// Inward normal.
    pub normal: Point,
}

impl Domain for HalfPlane {
    fn contains(&self, p: Point) -> bool {
        (p.x - self.anchor.x) * self.normal.x + (p.y - self.anchor.y) * self.normal.y >= 0.0
    }
    fn bounding_box(&self) -> (Point, Point) {
        // Unbounded; callers intersect with something bounded first.
        (Point::new(-1e12, -1e12), Point::new(1e12, 1e12))
    }
}

/// Simple polygon (even-odd rule).
#[derive(Clone, Debug)]
pub struct Polygon {
    verts: Vec<Point>,
}

impl Polygon {
    /// Construct from ≥ 3 vertices in order.
    pub fn new(verts: Vec<Point>) -> Self {
        assert!(verts.len() >= 3, "polygon needs at least 3 vertices");
        Polygon { verts }
    }
}

impl Domain for Polygon {
    fn contains(&self, p: Point) -> bool {
        let mut inside = false;
        let n = self.verts.len();
        let mut j = n - 1;
        for i in 0..n {
            let (a, b) = (self.verts[i], self.verts[j]);
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }
    fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.verts {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }
}

/// Set difference `base − holes` (bounding box of `base`).
#[derive(Clone)]
pub struct Difference {
    /// The positive region.
    pub base: std::sync::Arc<dyn Domain>,
    /// Subtracted regions.
    pub holes: Vec<std::sync::Arc<dyn Domain>>,
}

impl Domain for Difference {
    fn contains(&self, p: Point) -> bool {
        self.base.contains(p) && !self.holes.iter().any(|h| h.contains(p))
    }
    fn bounding_box(&self) -> (Point, Point) {
        self.base.bounding_box()
    }
}

/// Set union.
#[derive(Clone)]
pub struct Union {
    /// The member regions.
    pub parts: Vec<std::sync::Arc<dyn Domain>>,
}

impl Domain for Union {
    fn contains(&self, p: Point) -> bool {
        self.parts.iter().any(|d| d.contains(p))
    }
    fn bounding_box(&self) -> (Point, Point) {
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for d in &self.parts {
            let (lo, hi) = d.bounding_box();
            min.x = min.x.min(lo.x);
            min.y = min.y.min(lo.y);
            max.x = max.x.max(hi.x);
            max.y = max.y.max(hi.y);
        }
        (min, max)
    }
}

/// The irregular test-A-style domain: a wide plate with two circular holes
/// and a notch cut from the top — non-convex with interior boundaries,
/// qualitatively like the paper's Figure 10 airfoil-ish mesh.
pub fn paper_domain_a() -> Difference {
    let base = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
    Difference {
        base: std::sync::Arc::new(base),
        holes: vec![
            std::sync::Arc::new(Disc::new(Point::new(1.1, 1.0), 0.35)),
            std::sync::Arc::new(Disc::new(Point::new(2.9, 0.8), 0.45)),
            std::sync::Arc::new(Polygon::new(vec![
                Point::new(1.8, 2.0),
                Point::new(2.2, 2.0),
                Point::new(2.0, 1.2),
            ])),
        ],
    }
}

/// The larger, more irregular test-B-style domain: an L-shaped slab with a
/// circular hole and a wedge cut, for the "highly irregular mesh with
/// 10166 nodes" experiments.
pub fn paper_domain_b() -> Difference {
    let base = Polygon::new(vec![
        Point::new(0.0, 0.0),
        Point::new(6.0, 0.0),
        Point::new(6.0, 2.4),
        Point::new(3.4, 2.4),
        Point::new(3.4, 4.0),
        Point::new(0.0, 4.0),
    ]);
    Difference {
        base: std::sync::Arc::new(base),
        holes: vec![
            std::sync::Arc::new(Disc::new(Point::new(1.6, 1.4), 0.55)),
            std::sync::Arc::new(Disc::new(Point::new(4.6, 1.2), 0.4)),
            std::sync::Arc::new(Polygon::new(vec![
                Point::new(0.0, 2.4),
                Point::new(1.0, 3.0),
                Point::new(0.0, 3.6),
            ])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_membership() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        assert!(r.contains(Point::new(1.0, 0.5)));
        assert!(r.contains(Point::new(0.0, 0.0))); // boundary closed
        assert!(!r.contains(Point::new(2.1, 0.5)));
    }

    #[test]
    fn disc_membership() {
        let d = Disc::new(Point::new(0.0, 0.0), 1.0);
        assert!(d.contains(Point::new(0.5, 0.5)));
        assert!(!d.contains(Point::new(0.9, 0.9)));
        assert!(d.contains(Point::new(1.0, 0.0)));
    }

    #[test]
    fn half_plane_membership() {
        let h = HalfPlane {
            anchor: Point::new(0.0, 0.0),
            normal: Point::new(0.0, 1.0),
        };
        assert!(h.contains(Point::new(5.0, 0.1)));
        assert!(!h.contains(Point::new(5.0, -0.1)));
    }

    #[test]
    fn polygon_membership_l_shape() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ]);
        assert!(l.contains(Point::new(0.5, 1.5)));
        assert!(l.contains(Point::new(1.5, 0.5)));
        assert!(!l.contains(Point::new(1.5, 1.5))); // the cut corner
        assert!(!l.contains(Point::new(-0.5, 0.5)));
    }

    #[test]
    fn difference_and_union() {
        let d = Difference {
            base: std::sync::Arc::new(Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))),
            holes: vec![std::sync::Arc::new(Disc::new(Point::new(1.0, 1.0), 0.5))],
        };
        assert!(!d.contains(Point::new(1.0, 1.0)));
        assert!(d.contains(Point::new(0.2, 0.2)));
        let u = Union {
            parts: vec![
                std::sync::Arc::new(Disc::new(Point::new(0.0, 0.0), 1.0)),
                std::sync::Arc::new(Disc::new(Point::new(3.0, 0.0), 1.0)),
            ],
        };
        assert!(u.contains(Point::new(3.2, 0.0)));
        assert!(!u.contains(Point::new(1.6, 0.0)));
        let (lo, hi) = u.bounding_box();
        assert_eq!(lo.x, -1.0);
        assert_eq!(hi.x, 4.0);
    }

    #[test]
    fn paper_domains_nontrivial() {
        let a = paper_domain_a();
        assert!(a.contains(Point::new(0.4, 0.4)));
        assert!(!a.contains(Point::new(1.1, 1.0))); // inside hole
        assert!(!a.contains(Point::new(2.0, 1.9))); // inside notch
        let b = paper_domain_b();
        assert!(b.contains(Point::new(0.5, 0.5)));
        assert!(!b.contains(Point::new(5.0, 3.5))); // outside L
        assert!(!b.contains(Point::new(1.6, 1.4))); // hole
    }
}
