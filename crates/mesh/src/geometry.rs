//! Planar geometric primitives and predicates.
//!
//! Predicates are plain `f64` determinants with a relative-error filter:
//! results whose magnitude falls below the filter are treated as the
//! degenerate sign (0). The mesh generators jitter their input points, so
//! exact-arithmetic fallbacks are not needed at the scales used here
//! (coordinates O(1e4), separations ≥ 1e-6).

/// A point in the plane.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }
}

/// Twice the signed area of triangle `abc`: positive iff `abc` is
/// counter-clockwise. Uses an error filter: near-degenerate values within
/// the floating-point error bound return exactly 0.
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;
    // Shewchuk's static filter constant for the 2D orientation test.
    let detsum = detleft.abs() + detright.abs();
    if det.abs() >= 3.3306690738754716e-16 * detsum {
        det
    } else {
        0.0
    }
}

/// In-circle predicate: positive iff `d` lies strictly inside the
/// circumcircle of the counter-clockwise triangle `abc`.
#[inline]
pub fn in_circle(a: Point, b: Point, c: Point, d: Point) -> f64 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let ad2 = adx * adx + ady * ady;
    let bd2 = bdx * bdx + bdy * bdy;
    let cd2 = cdx * cdx + cdy * cdy;
    let det = adx * (bdy * cd2 - cdy * bd2) - ady * (bdx * cd2 - cdx * bd2)
        + ad2 * (bdx * cdy - cdx * bdy);
    // Magnitude-based filter.
    let perm = (adx.abs() + ady.abs() + ad2)
        * (bdx.abs() + bdy.abs() + bd2)
        * (cdx.abs() + cdy.abs() + cd2);
    if det.abs() >= 1e-12 * perm.max(f64::MIN_POSITIVE) {
        det
    } else {
        0.0
    }
}

/// Signed area of triangle `abc` (positive = CCW).
#[inline]
pub fn tri_area(a: Point, b: Point, c: Point) -> f64 {
    0.5 * ((b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x))
}

/// Centroid of triangle `abc`.
#[inline]
pub fn centroid(a: Point, b: Point, c: Point) -> Point {
    Point::new((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0)
}

/// Circumcenter of triangle `abc`; returns the centroid as a fallback for
/// (near-)degenerate triangles.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Point {
    let d = 2.0 * ((a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x));
    if d.abs() < 1e-30 {
        return centroid(a, b, c);
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 - c2) * (b.y - c.y) - (b2 - c2) * (a.y - c.y);
    let uy = (b2 - c2) * (a.x - c.x) - (a2 - c2) * (b.x - c.x);
    Point::new(ux / d, uy / d)
}

/// True if point `p` lies inside or on the boundary of CCW triangle `abc`.
#[inline]
pub fn point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    orient2d(a, b, p) >= 0.0 && orient2d(b, c, p) >= 0.0 && orient2d(c, a, p) >= 0.0
}

/// Minimum interior angle of triangle `abc` in radians (mesh quality).
pub fn min_angle(a: Point, b: Point, c: Point) -> f64 {
    let la = b.dist(c);
    let lb = a.dist(c);
    let lc = a.dist(b);
    let angle = |opp: f64, s1: f64, s2: f64| {
        let cosv = ((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2)).clamp(-1.0, 1.0);
        cosv.acos()
    };
    angle(la, lb, lc)
        .min(angle(lb, la, lc))
        .min(angle(lc, la, lb))
}

#[cfg(test)]
mod tests {
    use super::*;

    const P00: Point = Point::new(0.0, 0.0);
    const P10: Point = Point::new(1.0, 0.0);
    const P01: Point = Point::new(0.0, 1.0);
    const P11: Point = Point::new(1.0, 1.0);

    #[test]
    fn orientation_signs() {
        assert!(orient2d(P00, P10, P01) > 0.0); // CCW
        assert!(orient2d(P00, P01, P10) < 0.0); // CW
        assert_eq!(orient2d(P00, P10, Point::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn orientation_filter_kills_roundoff_noise() {
        // Collinear points at awkward magnitudes: the naive determinant of
        // ((0.1,0.1),(0.4,0.4),(0.7,0.7)) suffers cancellation; the filter
        // must report exactly 0 rather than ±1e-17 noise.
        let a = Point::new(0.1, 0.1);
        let b = Point::new(0.4, 0.4);
        let c = Point::new(0.7, 0.7);
        assert_eq!(orient2d(a, b, c), 0.0);
        // A genuinely tiny-but-real offset well above the error bound is
        // preserved.
        assert!(orient2d(P00, P10, Point::new(0.5, 1e-9)) > 0.0);
    }

    #[test]
    fn in_circle_signs() {
        // Unit right triangle; circumcircle is centred at (0.5, 0.5), r = √2/2.
        let inside = Point::new(0.5, 0.5);
        let outside = Point::new(2.0, 2.0);
        assert!(in_circle(P00, P10, P01, inside) > 0.0);
        assert!(in_circle(P00, P10, P01, outside) < 0.0);
        // (1,1) is exactly on the circle.
        assert_eq!(in_circle(P00, P10, P01, P11), 0.0);
    }

    #[test]
    fn circumcenter_right_triangle() {
        let cc = circumcenter(P00, P10, P01);
        assert!((cc.x - 0.5).abs() < 1e-12);
        assert!((cc.y - 0.5).abs() < 1e-12);
        // Equidistance.
        assert!((cc.dist(P00) - cc.dist(P10)).abs() < 1e-12);
        assert!((cc.dist(P00) - cc.dist(P01)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_circumcenter_falls_back() {
        let cc = circumcenter(P00, P10, Point::new(2.0, 0.0));
        assert!((cc.x - 1.0).abs() < 1e-12); // centroid of collinear points
    }

    #[test]
    fn areas_and_centroid() {
        assert!((tri_area(P00, P10, P01) - 0.5).abs() < 1e-12);
        assert!((tri_area(P00, P01, P10) + 0.5).abs() < 1e-12);
        let g = centroid(P00, P10, P01);
        assert!((g.x - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn point_in_triangle_cases() {
        assert!(point_in_triangle(Point::new(0.2, 0.2), P00, P10, P01));
        assert!(!point_in_triangle(Point::new(0.9, 0.9), P00, P10, P01));
        assert!(point_in_triangle(Point::new(0.5, 0.0), P00, P10, P01)); // on edge
    }

    #[test]
    fn min_angle_equilateral() {
        let h = 3f64.sqrt() / 2.0;
        let ang = min_angle(P00, P10, Point::new(0.5, h));
        assert!((ang - std::f64::consts::FRAC_PI_3).abs() < 1e-9);
    }

    #[test]
    fn distances() {
        assert!((P00.dist(P11) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(P00.dist2(P10), 1.0);
    }
}
