//! Extracted triangle meshes and node-graph export.

use crate::geometry::{min_angle, tri_area, Point};
use igp_graph::{CsrBuilder, CsrGraph, NodeId};

/// An immutable triangle mesh: points plus CCW vertex-index triples.
///
/// The partitioner consumes the **node graph**: one graph vertex per mesh
/// point, one graph edge per triangle edge (deduplicated) — the
/// representation whose sizes the paper reports (e.g. 1071 nodes / 3185
/// edges for test graph A).
#[derive(Clone, Debug)]
pub struct TriMesh {
    /// Vertex coordinates.
    pub points: Vec<Point>,
    /// Triangles as CCW index triples.
    pub tris: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Number of mesh points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.tris.len()
    }

    /// Unique undirected triangle edges, sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut e = Vec::with_capacity(self.tris.len() * 3);
        for t in &self.tris {
            for k in 0..3 {
                let (a, b) = (t[k], t[(k + 1) % 3]);
                e.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        e.sort_unstable();
        e.dedup();
        e
    }

    /// The node graph (unit weights). Every mesh point becomes a vertex;
    /// isolated points (not referenced by any triangle) are permitted but
    /// the generators in [`crate::refine`] repair them before export.
    pub fn node_graph(&self) -> CsrGraph {
        let edges = self.edges();
        let mut b = CsrBuilder::with_edge_capacity(self.points.len(), edges.len());
        for (u, v) in edges {
            b.add_edge(u as NodeId, v as NodeId, 1);
        }
        b.build()
    }

    /// Edges incident to exactly one triangle (the mesh boundary).
    pub fn boundary_edges(&self) -> Vec<(u32, u32)> {
        let mut count: std::collections::BTreeMap<(u32, u32), u32> = Default::default();
        for t in &self.tris {
            for k in 0..3 {
                let (a, b) = (t[k], t[(k + 1) % 3]);
                let key = if a < b { (a, b) } else { (b, a) };
                *count.entry(key).or_insert(0) += 1;
            }
        }
        count
            .into_iter()
            .filter(|&(_, c)| c == 1)
            .map(|(e, _)| e)
            .collect()
    }

    /// Smallest interior angle over all triangles, in radians.
    pub fn min_angle(&self) -> f64 {
        self.tris
            .iter()
            .map(|t| {
                min_angle(
                    self.points[t[0] as usize],
                    self.points[t[1] as usize],
                    self.points[t[2] as usize],
                )
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Total mesh area.
    pub fn area(&self) -> f64 {
        self.tris
            .iter()
            .map(|t| {
                tri_area(
                    self.points[t[0] as usize],
                    self.points[t[1] as usize],
                    self.points[t[2] as usize],
                )
            })
            .sum()
    }

    /// Render to a standalone SVG string; when `part_of` is given, faces
    /// are coloured by partition (reproduces the paper's Figures 2/6/9
    /// qualitatively; see the `partition_viz` example).
    pub fn to_svg(&self, part_of: Option<&[u32]>, width: f64) -> String {
        use std::fmt::Write;
        let (mut minx, mut miny) = (f64::INFINITY, f64::INFINITY);
        let (mut maxx, mut maxy) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.points {
            minx = minx.min(p.x);
            miny = miny.min(p.y);
            maxx = maxx.max(p.x);
            maxy = maxy.max(p.y);
        }
        let scale = width / (maxx - minx).max(1e-9);
        let height = (maxy - miny) * scale;
        let tx = |p: Point| ((p.x - minx) * scale, height - (p.y - miny) * scale);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\">"
        );
        for t in &self.tris {
            let (x0, y0) = tx(self.points[t[0] as usize]);
            let (x1, y1) = tx(self.points[t[1] as usize]);
            let (x2, y2) = tx(self.points[t[2] as usize]);
            let fill = match part_of {
                Some(assign) => {
                    // Colour by majority partition of the corners.
                    let p = assign[t[0] as usize];
                    let hue = (p as u64 * 47) % 360;
                    format!("hsl({hue},70%,65%)")
                }
                None => "none".to_string(),
            };
            let _ = writeln!(
                s,
                "<polygon points=\"{x0:.1},{y0:.1} {x1:.1},{y1:.1} {x2:.1},{y2:.1}\" \
                 fill=\"{fill}\" stroke=\"#333\" stroke-width=\"0.4\"/>"
            );
        }
        s.push_str("</svg>\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tri_mesh() -> TriMesh {
        // Unit square split along the diagonal 0-2.
        TriMesh {
            points: vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
            ],
            tris: vec![[0, 1, 2], [0, 2, 3]],
        }
    }

    #[test]
    fn edges_deduplicated() {
        let m = two_tri_mesh();
        assert_eq!(m.edges(), vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn node_graph_matches_edges() {
        let m = two_tri_mesh();
        let g = m.node_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(0, 2)); // the shared diagonal
        g.validate().unwrap();
    }

    #[test]
    fn boundary_of_square() {
        let m = two_tri_mesh();
        assert_eq!(m.boundary_edges(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn area_of_square() {
        assert!((two_tri_mesh().area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_angle_of_right_triangles() {
        let m = two_tri_mesh();
        assert!((m.min_angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn svg_renders() {
        let m = two_tri_mesh();
        let svg = m.to_svg(Some(&[0, 0, 1, 1]), 100.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.matches("<polygon").count() == 2);
        assert!(svg.contains("hsl("));
    }
}
