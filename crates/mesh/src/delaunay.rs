//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! The triangulation is maintained under point insertion, which is exactly
//! what localized mesh refinement needs: each refinement step inserts one
//! new point, carving a cavity of invalidated triangles and re-triangulating
//! it as a fan — adding edges (`E₁`) and deleting cavity edges (`E₂`), the
//! paper's incremental-graph model.
//!
//! Implementation notes:
//! * Three synthetic "super-triangle" vertices bound the working area;
//!   triangles touching them are hidden from the public API.
//! * Point location walks from a hint triangle (the last insertion), which
//!   is O(1) amortized for the localized insertion patterns used here.
//! * Triangles store `nbr[i]` = the triangle across the edge *opposite*
//!   vertex `i`; all triangles are kept counter-clockwise.

use crate::geometry::{in_circle, orient2d, point_in_triangle, Point};

const NIL: u32 = u32::MAX;
const SUPER: u32 = 3; // vertices 0, 1, 2 are the super-triangle

#[derive(Clone, Copy, Debug)]
struct Tri {
    v: [u32; 3],
    nbr: [u32; 3],
    alive: bool,
}

/// An incremental Delaunay triangulation.
///
/// Public vertex ids start at 0 for the first inserted point and are
/// stable forever (internal ids are offset by the 3 super vertices).
#[derive(Clone, Debug)]
pub struct Delaunay {
    pts: Vec<Point>,
    tris: Vec<Tri>,
    free: Vec<u32>,
    hint: u32,
    // Reusable scratch (workhorse buffers; see perf-book "reusing collections").
    bad: Vec<u32>,
    cavity: Vec<(u32, u32, u32)>, // directed boundary edge (a, b) + outside tri
}

impl Delaunay {
    /// A triangulation whose super-triangle encloses the axis-aligned box
    /// `[min, max]` with a wide margin.
    pub fn new(min: Point, max: Point) -> Self {
        let cx = 0.5 * (min.x + max.x);
        let cy = 0.5 * (min.y + max.y);
        let span = (max.x - min.x).max(max.y - min.y).max(1.0);
        let m = 1e4 * span;
        let pts = vec![
            Point::new(cx - 2.0 * m, cy - m),
            Point::new(cx + 2.0 * m, cy - m),
            Point::new(cx, cy + 2.0 * m),
        ];
        debug_assert!(orient2d(pts[0], pts[1], pts[2]) > 0.0);
        let tris = vec![Tri {
            v: [0, 1, 2],
            nbr: [NIL, NIL, NIL],
            alive: true,
        }];
        Delaunay {
            pts,
            tris,
            free: Vec::new(),
            hint: 0,
            bad: Vec::new(),
            cavity: Vec::new(),
        }
    }

    /// Number of (public) inserted points.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.pts.len() - SUPER as usize
    }

    /// Coordinates of public vertex `v`.
    #[inline]
    pub fn point(&self, v: u32) -> Point {
        self.pts[(v + SUPER) as usize]
    }

    /// Insert `p`; returns its public vertex id.
    ///
    /// Panics if `p` coincides (within predicate tolerance) with an
    /// existing vertex — callers jitter or pre-filter duplicates.
    pub fn insert(&mut self, p: Point) -> u32 {
        let pid = self.pts.len() as u32;
        self.pts.push(p);
        let t0 = self.locate(p);
        self.carve_cavity(t0, p);
        self.fill_cavity(pid);
        pid - SUPER
    }

    /// All triangles not touching the super-triangle, as CCW public-id
    /// triples.
    pub fn triangles(&self) -> Vec<[u32; 3]> {
        let mut out = Vec::new();
        for t in &self.tris {
            if t.alive && t.v.iter().all(|&v| v >= SUPER) {
                out.push([t.v[0] - SUPER, t.v[1] - SUPER, t.v[2] - SUPER]);
            }
        }
        out
    }

    /// Count of live internal triangles (including super-adjacent ones).
    pub fn num_live_triangles(&self) -> usize {
        self.tris.iter().filter(|t| t.alive).count()
    }

    /// Walk from the hint triangle to one containing `p`.
    fn locate(&self, p: Point) -> u32 {
        let mut t = self.hint;
        if !self.tris[t as usize].alive {
            t = self
                .tris
                .iter()
                .position(|x| x.alive)
                .expect("triangulation has no live triangles") as u32;
        }
        let max_steps = 4 * self.tris.len() + 16;
        for _ in 0..max_steps {
            let tri = &self.tris[t as usize];
            let mut advanced = false;
            for i in 0..3 {
                let a = self.pts[tri.v[(i + 1) % 3] as usize];
                let b = self.pts[tri.v[(i + 2) % 3] as usize];
                if orient2d(a, b, p) < 0.0 {
                    let nb = tri.nbr[i];
                    if nb != NIL {
                        t = nb;
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced {
                return t;
            }
        }
        // Walk failed (numerical corner case): fall back to a linear scan.
        for (i, tri) in self.tris.iter().enumerate() {
            if tri.alive
                && point_in_triangle(
                    p,
                    self.pts[tri.v[0] as usize],
                    self.pts[tri.v[1] as usize],
                    self.pts[tri.v[2] as usize],
                )
            {
                return i as u32;
            }
        }
        panic!("point ({}, {}) not inside the super-triangle", p.x, p.y);
    }

    /// Grow the Bowyer–Watson cavity from `t0`: every connected triangle
    /// whose circumcircle strictly contains `p`, recording the directed
    /// boundary edges.
    fn carve_cavity(&mut self, t0: u32, p: Point) {
        self.bad.clear();
        self.cavity.clear();
        debug_assert!(self.tris[t0 as usize].alive);
        // Mark via a stack; `alive = false` doubles as the visited flag.
        let mut stack = vec![t0];
        self.tris[t0 as usize].alive = false;
        self.bad.push(t0);
        while let Some(t) = stack.pop() {
            let tri = self.tris[t as usize];
            for i in 0..3 {
                let nb = tri.nbr[i];
                let a = tri.v[(i + 1) % 3];
                let b = tri.v[(i + 2) % 3];
                if nb == NIL {
                    self.cavity.push((a, b, NIL));
                    continue;
                }
                let n = &self.tris[nb as usize];
                if !n.alive {
                    // Either already in the cavity or its boundary is
                    // recorded from the other side; only record from the
                    // inside triangle (this one), so check whether nb is in
                    // `bad` — it always is, because dead non-bad triangles
                    // are recycled and unreachable via nbr pointers.
                    continue;
                }
                let nv = n.v;
                let inc = in_circle(
                    self.pts[nv[0] as usize],
                    self.pts[nv[1] as usize],
                    self.pts[nv[2] as usize],
                    p,
                );
                if inc > 0.0 {
                    self.tris[nb as usize].alive = false;
                    self.bad.push(nb);
                    stack.push(nb);
                } else {
                    self.cavity.push((a, b, nb));
                }
            }
        }
    }

    /// Star the cavity from the new point `pid`, wiring all adjacency.
    fn fill_cavity(&mut self, pid: u32) {
        let k = self.cavity.len();
        debug_assert!(k >= 3, "cavity must have at least 3 boundary edges");
        // Allocate new triangle slots (reuse the just-killed ones).
        let mut new_ids = Vec::with_capacity(k);
        for _ in 0..k {
            if let Some(id) = self.free.pop() {
                new_ids.push(id);
            } else {
                self.tris.push(Tri {
                    v: [0; 3],
                    nbr: [NIL; 3],
                    alive: false,
                });
                new_ids.push(self.tris.len() as u32 - 1);
            }
        }
        // Recycle bad slots for *future* inserts.
        self.free
            .extend(self.bad.iter().copied().filter(|id| !new_ids.contains(id)));
        // Build (p, a, b) per boundary edge; link across the boundary.
        let cavity = std::mem::take(&mut self.cavity);
        for (idx, &(a, b, outside)) in cavity.iter().enumerate() {
            let id = new_ids[idx];
            self.tris[id as usize] = Tri {
                v: [pid, a, b],
                nbr: [outside, NIL, NIL],
                alive: true,
            };
            if outside != NIL {
                // Fix the outside triangle's back-pointer (it pointed at a
                // dead cavity triangle; find the edge (b, a) seen from
                // outside).
                let o = &mut self.tris[outside as usize];
                for i in 0..3 {
                    let oa = o.v[(i + 1) % 3];
                    let ob = o.v[(i + 2) % 3];
                    if oa == b && ob == a {
                        o.nbr[i] = id;
                        break;
                    }
                }
            }
        }
        // Link fan neighbours: triangle with boundary edge (a, b) has
        //   nbr[1] (edge (b, p)) = triangle whose boundary edge starts at b,
        //   nbr[2] (edge (p, a)) = triangle whose boundary edge ends at a.
        // The cavity boundary is a cycle, so linear scan over ≤ k entries.
        for (idx, &(a, b, _)) in cavity.iter().enumerate() {
            let id = new_ids[idx];
            let next = cavity
                .iter()
                .position(|&(a2, _, _)| a2 == b)
                .expect("cavity boundary not closed (next)");
            let prev = cavity
                .iter()
                .position(|&(_, b2, _)| b2 == a)
                .expect("cavity boundary not closed (prev)");
            self.tris[id as usize].nbr[1] = new_ids[next];
            self.tris[id as usize].nbr[2] = new_ids[prev];
        }
        self.cavity = cavity;
        self.hint = new_ids[0];
    }

    /// Structural validation: adjacency symmetry, CCW orientation, and the
    /// Delaunay empty-circumcircle property over all live triangles.
    /// O(T²) — tests only.
    pub fn validate(&self) -> Result<(), String> {
        for (ti, t) in self.tris.iter().enumerate() {
            if !t.alive {
                continue;
            }
            let [a, b, c] = [
                self.pts[t.v[0] as usize],
                self.pts[t.v[1] as usize],
                self.pts[t.v[2] as usize],
            ];
            if orient2d(a, b, c) <= 0.0 {
                return Err(format!("triangle {ti} not CCW"));
            }
            for i in 0..3 {
                let nb = t.nbr[i];
                if nb == NIL {
                    continue;
                }
                let n = &self.tris[nb as usize];
                if !n.alive {
                    return Err(format!("triangle {ti} points at dead neighbour {nb}"));
                }
                if !n.nbr.contains(&(ti as u32)) {
                    return Err(format!("asymmetric adjacency {ti} ↔ {nb}"));
                }
            }
            // Empty circumcircle over all real vertices.
            for (vi, &p) in self.pts.iter().enumerate().skip(SUPER as usize) {
                if t.v.contains(&(vi as u32)) {
                    continue;
                }
                if in_circle(a, b, c, p) > 0.0 {
                    return Err(format!("vertex {vi} inside circumcircle of triangle {ti}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Delaunay {
        Delaunay::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn empty_triangulation() {
        let d = unit_box();
        assert_eq!(d.num_points(), 0);
        assert!(d.triangles().is_empty());
        d.validate().unwrap();
    }

    #[test]
    fn single_point_no_real_triangles() {
        let mut d = unit_box();
        assert_eq!(d.insert(Point::new(0.4, 0.4)), 0);
        assert!(d.triangles().is_empty());
        d.validate().unwrap();
    }

    #[test]
    fn three_points_one_triangle() {
        let mut d = unit_box();
        d.insert(Point::new(0.1, 0.1));
        d.insert(Point::new(0.9, 0.1));
        d.insert(Point::new(0.5, 0.8));
        let tris = d.triangles();
        assert_eq!(tris.len(), 1);
        let mut vs = tris[0].to_vec();
        vs.sort_unstable();
        assert_eq!(vs, vec![0, 1, 2]);
        d.validate().unwrap();
    }

    #[test]
    fn four_points_two_triangles() {
        let mut d = unit_box();
        d.insert(Point::new(0.1, 0.1));
        d.insert(Point::new(0.9, 0.1));
        d.insert(Point::new(0.9, 0.9));
        d.insert(Point::new(0.1, 0.92)); // break exact cocircularity
        assert_eq!(d.triangles().len(), 2);
        d.validate().unwrap();
    }

    #[test]
    fn delaunay_flip_behaviour() {
        // Points placed so the Delaunay diagonal is forced: a thin quad.
        let mut d = unit_box();
        d.insert(Point::new(0.0, 0.0));
        d.insert(Point::new(1.0, 0.05));
        d.insert(Point::new(2.0, 0.0));
        d.insert(Point::new(1.0, -0.05));
        // The Delaunay triangulation must use the short diagonal (1-3).
        let tris = d.triangles();
        assert_eq!(tris.len(), 2);
        let has_short_diag = tris.iter().all(|t| t.contains(&1) && t.contains(&3));
        assert!(
            has_short_diag,
            "triangles {tris:?} should share diagonal 1-3"
        );
        d.validate().unwrap();
    }

    #[test]
    fn random_points_satisfy_delaunay_property() {
        // Deterministic pseudo-random points (LCG) — no rand dependency in
        // the hot library, and the test stays reproducible.
        let mut d = unit_box();
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..200 {
            let p = Point::new(next(), next());
            d.insert(p);
        }
        assert_eq!(d.num_points(), 200);
        d.validate().unwrap();
        // Euler: for n points with h on the hull, triangles = 2n - h - 2.
        let tris = d.triangles();
        assert!(tris.len() > 300, "too few triangles: {}", tris.len());
    }

    #[test]
    fn localized_insertions_stay_valid() {
        let mut d = unit_box();
        let mut state: u64 = 7;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for _ in 0..60 {
            d.insert(Point::new(next(), next()));
        }
        // Cluster insertions in a tiny disc — the refinement access pattern.
        for i in 0..40 {
            let ang = i as f64 * 2.399963; // golden angle
            let r = 0.02 * ((i + 1) as f64).sqrt() / 6.4;
            d.insert(Point::new(0.3 + r * ang.cos(), 0.3 + r * ang.sin()));
        }
        assert_eq!(d.num_points(), 100);
        d.validate().unwrap();
    }

    #[test]
    fn point_ids_sequential() {
        let mut d = unit_box();
        for i in 0..10 {
            let id = d.insert(Point::new(0.05 + 0.09 * i as f64, 0.5 + 0.01 * i as f64));
            assert_eq!(id, i);
        }
    }
}
