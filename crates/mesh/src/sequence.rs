//! The paper's two experimental mesh workloads, as incremental-graph
//! sequences.
//!
//! * **Test set A** (paper Figures 10/11): an irregular mesh of 1071 nodes
//!   refined four times in the same localized area, giving 1096, 1121,
//!   1152 and 1192 nodes — *chained*: each step's old graph is the
//!   previous step's new graph.
//! * **Test set B** (paper Figures 12–14): a highly irregular mesh of
//!   10166 nodes with four *independent* increments of +48, +139, +229 and
//!   +672 nodes concentrated in one region — *star-shaped*: every step's
//!   old graph is the base mesh (the paper studies "the effect of different
//!   amounts of new data added to the original mesh").

use crate::domain::{paper_domain_a, paper_domain_b, Disc, Domain};
use crate::geometry::Point;
use crate::refine::MeshBuilder;
use crate::TriMesh;
use igp_graph::{CsrGraph, IncrementalGraph, INVALID_NODE};

/// One incremental step of a workload.
pub struct MeshStep {
    /// Human-readable label (e.g. `"A2: 1096 -> 1121"`).
    pub label: String,
    /// The old/new graph pair with vertex identity.
    pub inc: IncrementalGraph,
    /// The refined mesh (for visualization).
    pub mesh: TriMesh,
}

/// A full workload: base mesh plus incremental steps.
pub struct MeshSequence {
    /// Workload name (`"A"` / `"B"`).
    pub name: String,
    /// The initial node graph.
    pub base: CsrGraph,
    /// The initial mesh (for visualization).
    pub base_mesh: TriMesh,
    /// Incremental steps in order.
    pub steps: Vec<MeshStep>,
    /// True if steps chain (A); false if all steps start from `base` (B).
    pub chained: bool,
}

/// Identity-prefix incremental graph: `new` extends `old` by appended
/// vertices (the mesh refinement model — points are never deleted).
fn appended_inc(old: CsrGraph, new: CsrGraph) -> IncrementalGraph {
    let n_old = old.num_vertices() as u32;
    let map = (0..new.num_vertices() as u32)
        .map(|v| if v < n_old { v } else { INVALID_NODE })
        .collect();
    IncrementalGraph::new(old, new, map)
}

/// Incremental graph for a derefinement step: `removed` old ids (sorted)
/// were deleted and the survivors compacted order-preservingly
/// (the contract of [`crate::MeshBuilder::coarsen_region`]).
pub fn removal_inc(old: CsrGraph, new: CsrGraph, removed: &[u32]) -> IncrementalGraph {
    debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
    let n_old = old.num_vertices();
    assert_eq!(
        n_old,
        new.num_vertices() + removed.len(),
        "removal count mismatch"
    );
    let mut old_of_new = Vec::with_capacity(new.num_vertices());
    let mut r = 0usize;
    for v in 0..n_old as u32 {
        if r < removed.len() && removed[r] == v {
            r += 1;
        } else {
            old_of_new.push(v);
        }
    }
    IncrementalGraph::new(old, new, old_of_new)
}

/// Incremental graph combining a derefinement (removed old ids) followed
/// by appended refinement points, the general adaptive-window step.
pub fn mixed_inc(old: CsrGraph, new: CsrGraph, removed: &[u32], added: usize) -> IncrementalGraph {
    debug_assert!(removed.windows(2).all(|w| w[0] < w[1]));
    let n_old = old.num_vertices();
    assert_eq!(
        n_old - removed.len() + added,
        new.num_vertices(),
        "removal/addition counts mismatch"
    );
    let mut old_of_new = Vec::with_capacity(new.num_vertices());
    let mut r = 0usize;
    for v in 0..n_old as u32 {
        if r < removed.len() && removed[r] == v {
            r += 1;
        } else {
            old_of_new.push(v);
        }
    }
    old_of_new.extend(std::iter::repeat_n(INVALID_NODE, added));
    IncrementalGraph::new(old, new, old_of_new)
}

/// Build a workload over `domain`: `n0` initial nodes, then `increments`
/// refinement steps inside `region`. `chained` selects A-style (chained)
/// vs B-style (star) increments. Deterministic in `seed`.
pub fn build_sequence<D: Domain + Clone>(
    name: &str,
    domain: D,
    n0: usize,
    region: Disc,
    increments: &[usize],
    chained: bool,
    seed: u64,
) -> MeshSequence {
    let base_builder = MeshBuilder::generate(domain, n0, seed);
    let base = base_builder.graph();
    let base_mesh = base_builder.mesh();
    assert!(
        igp_graph::traversal::is_connected(&base),
        "base mesh graph must be connected (seed {seed})"
    );
    let mut steps = Vec::with_capacity(increments.len());
    let mut chain_builder = base_builder.clone();
    let mut chain_graph = base.clone();
    for (i, &k) in increments.iter().enumerate() {
        let (old_graph, mut builder) = if chained {
            (chain_graph.clone(), chain_builder.clone())
        } else {
            (base.clone(), base_builder.clone())
        };
        builder.refine_region(&region, k);
        let new_graph = builder.graph();
        assert!(
            igp_graph::traversal::is_connected(&new_graph),
            "refined mesh graph must stay connected"
        );
        let label = format!(
            "{name}{}: {} -> {}",
            i + 1,
            old_graph.num_vertices(),
            new_graph.num_vertices()
        );
        steps.push(MeshStep {
            label,
            inc: appended_inc(old_graph, new_graph.clone()),
            mesh: builder.mesh(),
        });
        if chained {
            chain_builder = builder;
            chain_graph = new_graph;
        }
    }
    MeshSequence {
        name: name.to_string(),
        base,
        base_mesh,
        steps,
        chained,
    }
}

/// Paper test set A: 1071 → 1096 → 1121 → 1152 → 1192 nodes, chained
/// localized refinements over the irregular plate domain.
pub fn paper_sequence_a(seed: u64) -> MeshSequence {
    build_sequence(
        "A",
        paper_domain_a(),
        1071,
        Disc::new(Point::new(3.3, 1.55), 0.45),
        &[25, 25, 31, 40],
        true,
        seed,
    )
}

/// Paper test set B: base 10166 nodes; star increments +48, +139, +229,
/// +672 concentrated in one region (the severe-imbalance workload).
pub fn paper_sequence_b(seed: u64) -> MeshSequence {
    build_sequence(
        "B",
        paper_domain_b(),
        10166,
        // A tight disc: all new nodes land in very few partitions, making
        // "the load imbalance created by the additional nodes ... severe"
        // (paper §3) and forcing multi-stage balancing on the larger
        // increments.
        Disc::new(Point::new(5.2, 1.9), 0.22),
        &[48, 139, 229, 672],
        false,
        seed,
    )
}

/// A miniature A-style sequence for unit tests (fast).
pub fn tiny_sequence(seed: u64) -> MeshSequence {
    build_sequence(
        "tiny",
        crate::domain::Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0)),
        160,
        Disc::new(Point::new(1.6, 0.75), 0.25),
        &[12, 12],
        true,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Rect;
    use crate::geometry::Point;
    use crate::refine::MeshBuilder;
    use crate::Disc;

    #[test]
    fn smoothing_preserves_ids_and_connectivity() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 150, 5);
        let before = mb.graph();
        let angle_before = mb.mesh().min_angle();
        mb.smooth(3);
        let after = mb.graph();
        assert_eq!(after.num_vertices(), 150);
        assert!(igp_graph::traversal::is_connected(&after));
        // Smoothing should not degrade the worst angle (usually improves).
        let angle_after = mb.mesh().min_angle();
        assert!(
            angle_after >= angle_before * 0.9,
            "{angle_before} -> {angle_after}"
        );
        // Edge set may change (that is the point) but sizes stay similar.
        let (b, a) = (before.num_edges() as i64, after.num_edges() as i64);
        assert!((b - a).abs() <= b / 5, "{b} -> {a}");
    }

    #[test]
    fn coarsen_region_removes_exact_interior_points() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 200, 6);
        let old = mb.graph();
        let region = Disc::new(Point::new(1.0, 0.5), 0.3);
        let removed = mb.coarsen_region(&region, 12);
        assert!(!removed.is_empty() && removed.len() <= 12);
        let new = mb.graph();
        assert_eq!(new.num_vertices(), 200 - removed.len());
        assert!(igp_graph::traversal::is_connected(&new));
        // The incremental-graph construction round-trips.
        let inc = removal_inc(old, new.clone(), &removed);
        assert_eq!(inc.removed_vertices(), removed);
        assert_eq!(inc.new_graph(), &new);
    }

    #[test]
    fn mixed_inc_refine_and_coarsen() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 180, 7);
        let old = mb.graph();
        let removed = mb.coarsen_region(&Disc::new(Point::new(0.4, 0.5), 0.25), 8);
        let added = mb.refine_region(&Disc::new(Point::new(1.6, 0.5), 0.25), 10);
        let new = mb.graph();
        let inc = mixed_inc(old, new, &removed, added.len());
        assert_eq!(inc.removed_vertices().len(), removed.len());
        assert_eq!(inc.added_vertices().len(), 10);
        let d = inc.diff();
        assert!(!d.add_edges.is_empty() && !d.remove_edges.is_empty());
    }

    #[test]
    fn tiny_sequence_counts_and_identity() {
        let s = tiny_sequence(1);
        assert_eq!(s.base.num_vertices(), 160);
        assert_eq!(s.steps.len(), 2);
        assert_eq!(s.steps[0].inc.old().num_vertices(), 160);
        assert_eq!(s.steps[0].inc.new_graph().num_vertices(), 172);
        // Chained: step 2 starts from step 1's result.
        assert_eq!(s.steps[1].inc.old().num_vertices(), 172);
        assert_eq!(s.steps[1].inc.new_graph().num_vertices(), 184);
        // Identity prefix.
        assert_eq!(s.steps[0].inc.added_vertices().len(), 12);
        assert_eq!(s.steps[0].inc.num_survivors(), 160);
    }

    #[test]
    fn star_sequence_all_from_base() {
        let s = build_sequence(
            "t",
            crate::domain::Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            120,
            Disc::new(Point::new(0.5, 0.5), 0.2),
            &[10, 20],
            false,
            2,
        );
        assert_eq!(s.steps[0].inc.old().num_vertices(), 120);
        assert_eq!(s.steps[1].inc.old().num_vertices(), 120);
        assert_eq!(s.steps[1].inc.new_graph().num_vertices(), 140);
    }

    #[test]
    #[ignore = "slow: builds the full paper meshes (run with --ignored)"]
    fn paper_sequences_match_node_counts() {
        let a = paper_sequence_a(42);
        assert_eq!(a.base.num_vertices(), 1071);
        let sizes: Vec<usize> = a
            .steps
            .iter()
            .map(|s| s.inc.new_graph().num_vertices())
            .collect();
        assert_eq!(sizes, vec![1096, 1121, 1152, 1192]);
        // Edge counts in the paper's ballpark (|E| ≈ 3·|V|).
        assert!(a.base.num_edges() > 2800 && a.base.num_edges() < 3400);

        let b = paper_sequence_b(42);
        assert_eq!(b.base.num_vertices(), 10166);
        let sizes: Vec<usize> = b
            .steps
            .iter()
            .map(|s| s.inc.new_graph().num_vertices())
            .collect();
        assert_eq!(sizes, vec![10214, 10305, 10395, 10838]);
    }
}
