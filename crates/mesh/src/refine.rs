//! Mesh generation and localized refinement (the DIME work-alike).
//!
//! [`MeshBuilder`] owns a live Delaunay triangulation over an irregular
//! domain. Initial meshes are produced by best-candidate (Mitchell)
//! sampling — blue-noise point sets that triangulate into well-shaped
//! elements. Refinement inserts one point per requested node at the
//! centroid of the currently largest triangle inside the target region,
//! matching the paper's "sequence of refinements in a localized area" with
//! *exact* control over node counts.

use crate::delaunay::Delaunay;
use crate::domain::{Disc, Domain};
use crate::geometry::{centroid, tri_area, Point};
use crate::mesh::TriMesh;
use igp_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mesh under construction/refinement.
pub struct MeshBuilder<D: Domain> {
    domain: D,
    del: Delaunay,
    rng: StdRng,
}

impl<D: Domain + Clone> Clone for MeshBuilder<D> {
    fn clone(&self) -> Self {
        MeshBuilder {
            domain: self.domain.clone(),
            del: self.del.clone(),
            rng: self.rng.clone(),
        }
    }
}

impl<D: Domain> MeshBuilder<D> {
    /// Generate an initial mesh with exactly `n` points inside `domain`.
    ///
    /// Uses Mitchell's best-candidate sampling (8 candidates per point)
    /// for an even, irregular distribution, then triangulates.
    pub fn generate(domain: D, n: usize, seed: u64) -> Self {
        let (lo, hi) = domain.bounding_box();
        let mut del = Delaunay::new(lo, hi);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut placed: Vec<Point> = Vec::with_capacity(n);
        // Coarse grid over the bbox for nearest-point queries.
        let cells = ((n as f64).sqrt().ceil() as usize).max(1);
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
        let cw = (hi.x - lo.x) / cells as f64;
        let ch = (hi.y - lo.y) / cells as f64;
        let cell_of = |p: Point| {
            let cx = (((p.x - lo.x) / cw) as usize).min(cells - 1);
            let cy = (((p.y - lo.y) / ch) as usize).min(cells - 1);
            cy * cells + cx
        };
        let nearest2 = |grid: &Vec<Vec<u32>>, placed: &Vec<Point>, p: Point| -> f64 {
            let cx = (((p.x - lo.x) / cw) as isize).clamp(0, cells as isize - 1);
            let cy = (((p.y - lo.y) / ch) as isize).clamp(0, cells as isize - 1);
            let mut best = f64::INFINITY;
            for ring in 0..3isize {
                for dy in -ring..=ring {
                    for dx in -ring..=ring {
                        if dx.abs() != ring && dy.abs() != ring {
                            continue;
                        }
                        let (gx, gy) = (cx + dx, cy + dy);
                        if gx < 0 || gy < 0 || gx >= cells as isize || gy >= cells as isize {
                            continue;
                        }
                        for &i in &grid[gy as usize * cells + gx as usize] {
                            best = best.min(p.dist2(placed[i as usize]));
                        }
                    }
                }
                if best < f64::INFINITY && ring >= 1 {
                    break;
                }
            }
            best
        };
        let sample_inside = |rng: &mut StdRng, domain: &D| -> Point {
            for _ in 0..100_000 {
                let p = Point::new(
                    lo.x + rng.gen::<f64>() * (hi.x - lo.x),
                    lo.y + rng.gen::<f64>() * (hi.y - lo.y),
                );
                if domain.contains(p) {
                    return p;
                }
            }
            panic!("domain rejection sampling failed — empty domain?");
        };
        for i in 0..n {
            let mut best_p = sample_inside(&mut rng, &domain);
            if i > 0 {
                let mut best_d = nearest2(&grid, &placed, best_p);
                for _ in 0..7 {
                    let cand = sample_inside(&mut rng, &domain);
                    let d = nearest2(&grid, &placed, cand);
                    if d > best_d {
                        best_d = d;
                        best_p = cand;
                    }
                }
            }
            grid[cell_of(best_p)].push(placed.len() as u32);
            placed.push(best_p);
            del.insert(best_p);
        }
        MeshBuilder { domain, del, rng }
    }

    /// Number of mesh points so far.
    pub fn num_points(&self) -> usize {
        self.del.num_points()
    }

    /// Point coordinates by id.
    pub fn point(&self, v: u32) -> Point {
        self.del.point(v)
    }

    /// Triangles kept by the domain filter (centroid inside the domain).
    fn kept_triangles(&self) -> Vec<[u32; 3]> {
        self.del
            .triangles()
            .into_iter()
            .filter(|t| {
                let g = centroid(
                    self.del.point(t[0]),
                    self.del.point(t[1]),
                    self.del.point(t[2]),
                );
                self.domain.contains(g)
            })
            .collect()
    }

    /// Insert `k` refinement points inside `region` (one mesh node each).
    /// Each insertion splits the largest in-region triangle at its
    /// centroid. Returns the new point ids.
    pub fn refine_region(&mut self, region: &Disc, k: usize) -> Vec<u32> {
        let mut new_ids = Vec::with_capacity(k);
        for _ in 0..k {
            let kept = self.kept_triangles();
            let target = kept
                .iter()
                .map(|t| {
                    let (a, b, c) = (
                        self.del.point(t[0]),
                        self.del.point(t[1]),
                        self.del.point(t[2]),
                    );
                    (centroid(a, b, c), tri_area(a, b, c).abs())
                })
                .filter(|(g, _)| region.contains(*g) && self.domain.contains(*g))
                .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
            let p = match target {
                Some((g, _)) => g,
                None => {
                    // Region has no kept triangles (e.g. fully outside the
                    // domain): fall back to the globally largest triangle.
                    kept.iter()
                        .map(|t| {
                            let (a, b, c) = (
                                self.del.point(t[0]),
                                self.del.point(t[1]),
                                self.del.point(t[2]),
                            );
                            (centroid(a, b, c), tri_area(a, b, c).abs())
                        })
                        .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
                        .expect("mesh has no kept triangles")
                        .0
                }
            };
            // Tiny jitter avoids exactly-cocircular configurations.
            let jx = (self.rng.gen::<f64>() - 0.5) * 1e-9;
            let jy = (self.rng.gen::<f64>() - 0.5) * 1e-9;
            new_ids.push(self.del.insert(Point::new(p.x + jx, p.y + jy)));
        }
        new_ids
    }

    /// Rebuild the triangulation from an explicit point list (used by
    /// smoothing and derefinement, which cannot be expressed as pure
    /// insertions). Point order defines the new ids.
    fn rebuild(&mut self, points: &[Point]) {
        let (lo, hi) = self.domain.bounding_box();
        let mut del = Delaunay::new(lo, hi);
        for &p in points {
            del.insert(p);
        }
        self.del = del;
    }

    /// Laplacian smoothing: move every *interior* point halfway toward the
    /// centroid of its node-graph neighbours (DIME performs analogous mesh
    /// relaxation after refinement). Points on the mesh boundary and moves
    /// leaving the domain are skipped. Vertex ids are preserved; the node
    /// graph is re-triangulated, so smoothing produces a pure
    /// edge-rewiring increment (`E₁`/`E₂` with `V₁ = V₂ = ∅`).
    pub fn smooth(&mut self, iterations: usize) {
        for _ in 0..iterations {
            let mesh = self.mesh();
            let n = mesh.num_points();
            let mut on_boundary = vec![false; n];
            for (a, b) in mesh.boundary_edges() {
                on_boundary[a as usize] = true;
                on_boundary[b as usize] = true;
            }
            let g = mesh.node_graph();
            let mut new_pts = mesh.points.clone();
            for v in 0..n {
                if on_boundary[v] || g.degree(v as u32) == 0 {
                    continue;
                }
                let (mut sx, mut sy) = (0.0, 0.0);
                for &u in g.neighbors(v as u32) {
                    let q = mesh.points[u as usize];
                    sx += q.x;
                    sy += q.y;
                }
                let d = g.degree(v as u32) as f64;
                let target = Point::new(sx / d, sy / d);
                let p = mesh.points[v];
                let cand = Point::new(0.5 * (p.x + target.x), 0.5 * (p.y + target.y));
                if self.domain.contains(cand) {
                    new_pts[v] = cand;
                }
            }
            self.rebuild(&new_pts);
        }
    }

    /// Derefinement: delete up to `k` points inside `region` (densest
    /// first — smallest nearest-neighbour spacing), re-triangulating the
    /// remainder. Returns the deleted (old) point ids, ascending.
    ///
    /// Surviving points keep their relative order, so the old→new id map
    /// is the order-preserving compaction (see
    /// [`crate::sequence::removal_inc`] for building the corresponding
    /// [`igp_graph::IncrementalGraph`]).
    pub fn coarsen_region(&mut self, region: &Disc, k: usize) -> Vec<u32> {
        let mesh = self.mesh();
        let g = mesh.node_graph();
        let n = mesh.num_points();
        let mut on_boundary = vec![false; n];
        for (a, b) in mesh.boundary_edges() {
            on_boundary[a as usize] = true;
            on_boundary[b as usize] = true;
        }
        // Candidates: interior points inside the region, densest first.
        let mut cands: Vec<(f64, u32)> = (0..n as u32)
            .filter(|&v| !on_boundary[v as usize] && region.contains(mesh.points[v as usize]))
            .map(|v| {
                let p = mesh.points[v as usize];
                let spacing = g
                    .neighbors(v)
                    .iter()
                    .map(|&u| p.dist2(mesh.points[u as usize]))
                    .fold(f64::INFINITY, f64::min);
                (spacing, v)
            })
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        // Avoid deleting adjacent pairs in one sweep (keeps mesh quality).
        let mut doomed = vec![false; n];
        let mut removed: Vec<u32> = Vec::new();
        for &(_, v) in &cands {
            if removed.len() == k {
                break;
            }
            if g.neighbors(v).iter().any(|&u| doomed[u as usize]) {
                continue;
            }
            doomed[v as usize] = true;
            removed.push(v);
        }
        removed.sort_unstable();
        let survivors: Vec<Point> = (0..n)
            .filter(|&v| !doomed[v])
            .map(|v| mesh.points[v])
            .collect();
        self.rebuild(&survivors);
        removed
    }

    /// Extract the current mesh (kept triangles only).
    pub fn mesh(&self) -> TriMesh {
        let points: Vec<Point> = (0..self.del.num_points() as u32)
            .map(|v| self.del.point(v))
            .collect();
        TriMesh {
            points,
            tris: self.kept_triangles(),
        }
    }

    /// Extract the node graph, repairing isolated vertices (points whose
    /// every incident triangle was filtered out) by linking them to their
    /// nearest in-domain neighbour so the partitioner's connectivity
    /// assumptions hold.
    pub fn graph(&self) -> CsrGraph {
        let mesh = self.mesh();
        let n = mesh.num_points();
        let mut edges = mesh.edges();
        let mut deg = vec![0u32; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        for v in 0..n as u32 {
            if deg[v as usize] == 0 {
                // Link to nearest other point (O(n) scan — rare repair path).
                let p = mesh.points[v as usize];
                let mut best = (f64::INFINITY, v);
                for u in 0..n as u32 {
                    if u != v {
                        let d = p.dist2(mesh.points[u as usize]);
                        if d < best.0 {
                            best = (d, u);
                        }
                    }
                }
                let (a, b) = if v < best.1 { (v, best.1) } else { (best.1, v) };
                edges.push((a, b));
                deg[a as usize] += 1;
                deg[b as usize] += 1;
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut b = igp_graph::CsrBuilder::with_edge_capacity(n, edges.len());
        for (u, v) in edges {
            b.add_edge(u, v, 1);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{paper_domain_a, Rect};
    use igp_graph::traversal::is_connected;

    #[test]
    fn generates_exact_point_count() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let mb = MeshBuilder::generate(dom, 150, 3);
        assert_eq!(mb.num_points(), 150);
        let g = mb.graph();
        assert_eq!(g.num_vertices(), 150);
        assert!(is_connected(&g));
        // Planar triangulation: |E| ≈ 3n.
        assert!(g.num_edges() > 2 * 150 && g.num_edges() < 3 * 150);
    }

    #[test]
    fn irregular_domain_mesh_connected() {
        let mb = MeshBuilder::generate(paper_domain_a(), 400, 11);
        let g = mb.graph();
        assert_eq!(g.num_vertices(), 400);
        assert!(
            is_connected(&g),
            "mesh graph over holed domain must stay connected"
        );
        let mesh = mb.mesh();
        // Holes must actually remove triangles: area < bbox-filling mesh.
        assert!(mesh.area() < 4.0 * 2.0 * 0.95);
    }

    #[test]
    fn refinement_adds_exact_nodes_and_edits_edges() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 200, 5);
        let g_old = mb.graph();
        let region = Disc::new(Point::new(0.3, 0.3), 0.15);
        let new_ids = mb.refine_region(&region, 20);
        assert_eq!(new_ids.len(), 20);
        assert_eq!(mb.num_points(), 220);
        let g_new = mb.graph();
        assert_eq!(g_new.num_vertices(), 220);
        assert!(is_connected(&g_new));
        // Refinement must both add and delete edges (cavity re-triangulation).
        let inc = igp_graph::IncrementalGraph::new(
            g_old.clone(),
            g_new.clone(),
            (0..220u32)
                .map(|v| if v < 200 { v } else { igp_graph::INVALID_NODE })
                .collect(),
        );
        let d = inc.diff();
        assert_eq!(d.add_vertices.len(), 20);
        assert!(!d.add_edges.is_empty());
        assert!(
            !d.remove_edges.is_empty(),
            "re-triangulation should delete old edges"
        );
    }

    #[test]
    fn refinement_is_localized() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let mut mb = MeshBuilder::generate(dom, 300, 9);
        let center = Point::new(0.7, 0.7);
        let region = Disc::new(center, 0.1);
        let new_ids = mb.refine_region(&region, 25);
        for &v in &new_ids {
            let d = mb.point(v).dist(center);
            assert!(d < 0.25, "refinement point {v} strayed to distance {d}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let a = MeshBuilder::generate(dom, 120, 77).graph();
        let dom = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = MeshBuilder::generate(dom, 120, 77).graph();
        assert_eq!(a, b);
    }
}
