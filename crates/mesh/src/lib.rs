//! # igp-mesh — a DIME-like adaptive triangular mesh environment
//!
//! The paper's experiments use meshes produced by **DIME** (Distributed
//! Irregular Mesh Environment, R.D. Williams, Caltech 1990): irregular
//! two-dimensional triangular meshes refined repeatedly "in a localized
//! area". DIME is unavailable, so this crate rebuilds the relevant
//! behaviour from scratch:
//!
//! * [`delaunay::Delaunay`] — incremental Bowyer–Watson Delaunay
//!   triangulation with point-location by walking.
//! * [`domain`] — composable irregular 2-D domains (rectangles, discs,
//!   polygons, CSG union/difference) over which meshes are generated.
//! * [`TriMesh`] — an extracted triangle mesh with node-graph export
//!   (`igp-graph::CsrGraph`), the representation the partitioner consumes.
//! * [`refine`] — localized refinement: insert points at centroids of the
//!   largest triangles inside a target region, one node per insertion, so
//!   incremental node counts can be matched to the paper *exactly*.
//! * [`sequence`] — the two experiment workloads: test set A
//!   (1071 → 1096 → 1121 → 1152 → 1192 nodes, chained refinements) and
//!   test set B (10166 + 48/139/229/672 nodes, star-shaped increments),
//!   exported as [`igp_graph::IncrementalGraph`] steps.
//!
//! Vertex identity is stable across refinement (new points append), and a
//! refinement both adds edges (`E₁`) and removes re-triangulated cavity
//! edges (`E₂`) — the full incremental model of the paper.
//!
//! ```
//! use igp_mesh::{MeshBuilder, Disc, Point};
//! use igp_mesh::domain::Rect;
//!
//! let domain = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
//! let mut mb = MeshBuilder::generate(domain, 200, 42);
//! assert_eq!(mb.num_points(), 200);
//!
//! // Localized refinement: exactly 15 new mesh nodes inside a disc.
//! mb.refine_region(&Disc::new(Point::new(1.5, 0.5), 0.2), 15);
//! let g = mb.graph();
//! assert_eq!(g.num_vertices(), 215);
//! assert!(igp_graph::traversal::is_connected(&g));
//! ```

pub mod delaunay;
pub mod domain;
pub mod geometry;
pub mod mesh;
pub mod refine;
pub mod sequence;

pub use delaunay::Delaunay;
pub use domain::{Disc, Domain, HalfPlane, Polygon, Rect};
pub use geometry::Point;
pub use mesh::TriMesh;
pub use refine::MeshBuilder;
pub use sequence::{MeshSequence, MeshStep};
