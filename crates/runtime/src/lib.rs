//! # igp-runtime — SPMD runtimes behind one [`Executor`] abstraction
//!
//! The partitioning drivers in `igp-core` are SPMD programs written
//! against the [`Executor`] trait (rank/size, charge, broadcast,
//! allgather, arg-min reduce, exchange, barrier). Two substrates
//! implement it, selectable through [`Backend`] (DESIGN.md §6):
//!
//! * **[`Backend::SimCm5`]** — [`Machine`]/[`Ctx`]. The paper reports
//!   parallel timings on a **32-node CM-5**; that machine (and working
//!   MPI bindings) are unavailable, so this backend provides the
//!   substitution documented in `DESIGN.md` §4: the *same SPMD
//!   algorithm* runs on OS threads with explicit message passing, while
//!   every rank accrues **simulated time** through a calibrated cost
//!   model ([`CostModel`]): `t_work` per charged work unit, `α + β·words`
//!   per message, tree collectives in `⌈log₂ p⌉` rounds. The reported
//!   parallel time is the makespan over ranks — the same quantity a wall
//!   clock on the CM-5 would have measured — so scaling *shape* (which
//!   phases parallelize, where the dense simplex serializes) is
//!   preserved even on a 2-core CI host.
//! * **[`Backend::SharedMem`]** — [`SharedMachine`]/[`SharedCtx`]. No
//!   simulation: collectives are direct slot reductions on shared
//!   memory and the report carries measured wall-clock seconds. Same
//!   deterministic collective results, so drivers produce bit-identical
//!   partitions on either backend.
//!
//! ```
//! use igp_runtime::{Machine, CostModel, SharedMachine};
//!
//! let machine = Machine::new(4, CostModel::cm5());
//! let (results, report) = machine.run(|ctx| {
//!     ctx.charge(1_000); // 1000 work units of local compute
//!     let sum: u64 = ctx.allreduce_sum(ctx.rank() as u64);
//!     sum
//! });
//! assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! assert!(report.makespan > 0.0);
//!
//! // The same program, executed for real on shared memory:
//! use igp_runtime::Executor;
//! let (results, _) = SharedMachine::new(4).run(|ctx| {
//!     ctx.charge(1_000);
//!     ctx.allreduce_sum(ctx.rank() as u64)
//! });
//! assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! ```

pub mod collectives;
pub mod cost;
pub mod ctx;
pub mod exec;
pub mod machine;
pub mod obs;
pub mod shared;

pub use cost::{CostModel, SimReport};
pub use ctx::Ctx;
pub use exec::{Backend, Executor, SpmdJob};
pub use machine::Machine;
pub use shared::{SharedCtx, SharedMachine};
