//! # igp-runtime — SPMD message-passing runtime with a CM-5-style cost model
//!
//! The paper reports parallel timings on a **32-node CM-5**. That machine
//! (and working MPI bindings) are unavailable, so this crate provides the
//! substitution documented in `DESIGN.md` §4: the *same SPMD algorithm*
//! runs on OS threads with explicit message passing, while every rank
//! accrues **simulated time** through a calibrated cost model
//! ([`CostModel`]): `t_work` per charged work unit, `α + β·words` per
//! message, tree collectives in `⌈log₂ p⌉` rounds.
//!
//! The reported parallel time is the makespan over ranks — the same
//! quantity a wall clock on the CM-5 would have measured — so scaling
//! *shape* (which phases parallelize, where the dense simplex serializes)
//! is preserved even on a 2-core CI host. Real wall time is also captured.
//!
//! ```
//! use igp_runtime::{Machine, CostModel};
//!
//! let machine = Machine::new(4, CostModel::cm5());
//! let (results, report) = machine.run(|ctx| {
//!     ctx.charge(1_000); // 1000 work units of local compute
//!     let sum: u64 = ctx.allreduce_sum(ctx.rank() as u64);
//!     sum
//! });
//! assert!(results.iter().all(|&s| s == 0 + 1 + 2 + 3));
//! assert!(report.makespan > 0.0);
//! ```

pub mod collectives;
pub mod cost;
pub mod ctx;
pub mod machine;

pub use cost::{CostModel, SimReport};
pub use ctx::Ctx;
pub use machine::Machine;
