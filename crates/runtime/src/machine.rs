//! The SPMD machine: spawn `p` ranks, run a closure on each, collect
//! results and the simulated-time report.

use crate::cost::{CostModel, SimReport};
use crate::ctx::{Ctx, Envelope};
use crossbeam::channel::unbounded;

/// A virtual `p`-rank message-passing machine.
#[derive(Clone, Copy, Debug)]
pub struct Machine {
    p: usize,
    cost: CostModel,
}

impl Machine {
    /// A machine with `p ≥ 1` ranks and the given cost model.
    pub fn new(p: usize, cost: CostModel) -> Self {
        assert!(p >= 1, "need at least one rank");
        Machine { p, cost }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Run `f` on every rank (as OS threads), returning per-rank results
    /// (index = rank) and the aggregated [`SimReport`].
    ///
    /// Panics in any rank propagate after all threads are joined.
    pub fn run<T, F>(&self, f: F) -> (Vec<T>, SimReport)
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        let start = std::time::Instant::now();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..self.p).map(|_| unbounded::<Envelope>()).unzip();
        let mut ctxs: Vec<Ctx> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| Ctx::new(rank, self.p, rx, txs.clone(), self.cost))
            .collect();
        drop(txs);

        let results: Vec<(T, f64, u64, u64, u64)> = if self.p == 1 {
            // Single rank: run inline (no thread overhead; used by benches
            // to measure the sequential baseline with identical charging).
            let ctx = &mut ctxs[0];
            let out = f(ctx);
            vec![(
                out,
                ctx.now(),
                ctx.sent_messages,
                ctx.sent_words,
                ctx.charged_work,
            )]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = ctxs
                    .iter_mut()
                    .map(|ctx| {
                        let f = &f;
                        scope.spawn(move |_| {
                            let out = f(ctx);
                            (
                                out,
                                ctx.now(),
                                ctx.sent_messages,
                                ctx.sent_words,
                                ctx.charged_work,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(v) => v,
                        // Re-raise the original payload so callers (and
                        // #[should_panic] tests) see the real message.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
            .expect("SPMD scope failed")
        };

        let mut report = SimReport {
            per_rank: results.iter().map(|r| r.1).collect(),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        report.makespan = report.per_rank.iter().copied().fold(0.0, f64::max);
        for r in &results {
            report.total_messages += r.2;
            report.total_words += r.3;
            report.total_work += r.4;
        }
        (results.into_iter().map(|r| r.0).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_ordered_by_rank() {
        let m = Machine::new(5, CostModel::cm5());
        let (out, _) = m.run(|ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_inline() {
        let m = Machine::new(1, CostModel::cm5());
        let (out, report) = m.run(|ctx| {
            ctx.charge(100);
            7u8
        });
        assert_eq!(out, vec![7]);
        assert_eq!(report.total_work, 100);
        assert_eq!(report.total_messages, 0);
    }

    #[test]
    fn makespan_is_max_rank_clock() {
        let m = Machine::new(
            3,
            CostModel {
                t_work: 1.0,
                alpha: 0.0,
                beta: 0.0,
            },
        );
        let (_, report) = m.run(|ctx| ctx.charge(ctx.rank() as u64 * 3));
        assert_eq!(report.per_rank, vec![0.0, 3.0, 6.0]);
        assert_eq!(report.makespan, 6.0);
        assert_eq!(report.total_work, 9);
    }

    #[test]
    fn wall_time_recorded() {
        let m = Machine::new(2, CostModel::cm5());
        let (_, report) = m.run(|_| ());
        assert!(report.wall_seconds >= 0.0);
    }
}
