//! Tree-based collective operations.
//!
//! All collectives use binomial trees (`⌈log₂ p⌉` message rounds), the
//! same asymptotics as the CM-5's control/data networks. Word counts are
//! supplied by the caller so the cost model can price each payload.

use crate::ctx::Ctx;

fn ceil_log2(p: usize) -> u32 {
    usize::BITS - (p - 1).leading_zeros()
}

impl Ctx {
    /// Barrier: everyone waits for everyone (zero-payload allreduce).
    pub fn barrier(&mut self) {
        self.allreduce(0u8, 1, |a, b| a | b);
    }

    /// Binomial-tree reduction to `root`. Returns `Some(total)` on the
    /// root, `None` elsewhere. `op` must be associative and commutative.
    pub fn reduce<M, F>(&mut self, root: usize, mut val: M, words: u64, op: F) -> Option<M>
    where
        M: Send + 'static,
        F: Fn(M, M) -> M,
    {
        let p = self.size();
        let rr = (self.rank() + p - root) % p;
        let mut step = 1usize;
        while step < p {
            if rr & step != 0 {
                let dst = (rr - step + root) % p;
                self.send(dst, val, words);
                return None;
            }
            let src_rr = rr + step;
            if src_rr < p {
                let other: M = self.recv((src_rr + root) % p);
                val = op(val, other);
            }
            step <<= 1;
        }
        Some(val)
    }

    /// Binomial-tree broadcast from `root`. Non-roots pass `None`.
    pub fn broadcast<M>(&mut self, root: usize, val: Option<M>) -> M
    where
        M: Clone + Send + 'static,
    {
        self.broadcast_w(root, val, 1)
    }

    /// [`Ctx::broadcast`] with an explicit per-message word count.
    pub fn broadcast_w<M>(&mut self, root: usize, val: Option<M>, words: u64) -> M
    where
        M: Clone + Send + 'static,
    {
        let p = self.size();
        if p == 1 {
            return val.expect("root must supply the broadcast value");
        }
        let rr = (self.rank() + p - root) % p;
        let levels = ceil_log2(p);
        let mut have: Option<M> = if rr == 0 {
            Some(val.expect("root must supply the broadcast value"))
        } else {
            None
        };
        // At step `bit` (descending), ranks whose low bits (< 2·bit) are all
        // zero hold the value and forward it to `rr + bit`; ranks whose low
        // bits equal exactly `bit` receive from `rr − bit`.
        for k in (0..levels).rev() {
            let bit = 1usize << k;
            let low = rr & (2 * bit - 1);
            if low == 0 {
                if rr + bit < p {
                    let v = have.as_ref().expect("broadcast sender lacks value").clone();
                    let dst = (rr + bit + root) % p;
                    self.send(dst, v, words);
                }
            } else if low == bit {
                debug_assert!(have.is_none());
                have = Some(self.recv((rr - bit + root) % p));
            }
        }
        have.expect("broadcast tree did not deliver")
    }

    /// Allreduce (`reduce` to rank 0 + `broadcast`).
    pub fn allreduce<M, F>(&mut self, val: M, words: u64, op: F) -> M
    where
        M: Clone + Send + 'static,
        F: Fn(M, M) -> M,
    {
        let total = self.reduce(0, val, words, op);
        self.broadcast_w(0, total, words)
    }

    /// Sum-allreduce of a `u64`.
    pub fn allreduce_sum(&mut self, val: u64) -> u64 {
        self.allreduce(val, 2, |a, b| a + b)
    }

    /// Sum-allreduce of an `f64`.
    pub fn allreduce_sum_f64(&mut self, val: f64) -> f64 {
        self.allreduce(val, 2, |a, b| a + b)
    }

    /// Global argmin: every rank contributes `(key, payload)`; all ranks
    /// receive the pair with the smallest key (ties → smallest rank wins
    /// because reduction order is deterministic).
    pub fn allreduce_min_by_key<M>(&mut self, key: f64, payload: M, words: u64) -> (f64, M)
    where
        M: Clone + Send + 'static,
    {
        self.allreduce(
            (key, payload),
            words + 2,
            |a, b| if b.0 < a.0 { b } else { a },
        )
    }

    /// Gather per-rank values to `root` in rank order (`None` elsewhere).
    pub fn gather<M>(&mut self, root: usize, val: M, words: u64) -> Option<Vec<M>>
    where
        M: Send + 'static,
    {
        let p = self.size();
        if self.rank() == root {
            let mut out: Vec<Option<M>> = (0..p).map(|_| None).collect();
            out[root] = Some(val);
            for r in 0..p {
                if r != root {
                    out[r] = Some(self.recv(r));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send(root, val, words);
            None
        }
    }

    /// Allgather: every rank receives the rank-ordered vector of all
    /// contributions.
    pub fn allgather<M>(&mut self, val: M, words: u64) -> Vec<M>
    where
        M: Clone + Send + 'static,
    {
        let p = self.size();
        let gathered = self.gather(0, val, words);
        self.broadcast_w(0, gathered, words * p as u64)
    }

    /// Personalized all-to-all: `outboxes[r]` is sent to rank `r`
    /// (`outboxes[self]` is returned locally). Returns `inboxes` indexed
    /// by source rank. Word cost: `words_per_item · len` per message.
    pub fn exchange<M>(&mut self, mut outboxes: Vec<Vec<M>>, words_per_item: u64) -> Vec<Vec<M>>
    where
        M: Send + 'static,
    {
        let p = self.size();
        let me = self.rank();
        assert_eq!(outboxes.len(), p, "need one outbox per rank");
        let mine = std::mem::take(&mut outboxes[me]);
        for off in 1..p {
            let to = (me + off) % p;
            let box_ = std::mem::take(&mut outboxes[to]);
            let words = 1 + words_per_item * box_.len() as u64;
            self.send(to, box_, words);
        }
        let mut inboxes: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
        inboxes[me] = mine;
        for off in 1..p {
            let from = (me + p - off) % p;
            inboxes[from] = self.recv(from);
        }
        inboxes
    }
}

#[cfg(test)]
mod tests {
    use crate::{CostModel, Machine};

    fn machine(p: usize) -> Machine {
        Machine::new(p, CostModel::cm5())
    }

    #[test]
    fn reduce_sum_all_sizes() {
        for p in 1..=9 {
            let (out, _) = machine(p).run(|ctx| ctx.reduce(0, ctx.rank() as u64, 1, |a, b| a + b));
            let expect: u64 = (0..p as u64).sum();
            assert_eq!(out[0], Some(expect), "p={p}");
            for r in 1..p {
                assert_eq!(out[r], None);
            }
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let (out, _) = machine(6).run(|ctx| ctx.reduce(4, 1u64, 1, |a, b| a + b));
        assert_eq!(out[4], Some(6));
        assert!(out.iter().enumerate().all(|(r, v)| (r == 4) == v.is_some()));
    }

    #[test]
    fn broadcast_all_sizes_and_roots() {
        for p in 1..=8 {
            for root in 0..p {
                let (out, _) = machine(p).run(|ctx| {
                    let v = if ctx.rank() == root {
                        Some(99u32 + root as u32)
                    } else {
                        None
                    };
                    ctx.broadcast(root, v)
                });
                assert!(
                    out.iter().all(|&v| v == 99 + root as u32),
                    "p={p} root={root}"
                );
            }
        }
    }

    #[test]
    fn allreduce_min_by_key_ties_deterministic() {
        let (out, _) = machine(5).run(|ctx| {
            let key = if ctx.rank() >= 2 { 1.0 } else { 5.0 };
            ctx.allreduce_min_by_key(key, ctx.rank(), 1)
        });
        // Ranks 2, 3, 4 tie at key 1.0; deterministic winner must be
        // identical everywhere.
        let winner = out[0].1;
        assert!(winner >= 2);
        assert!(out.iter().all(|&(k, w)| k == 1.0 && w == winner));
    }

    #[test]
    fn allreduce_sum_f64() {
        let (out, _) = machine(7).run(|ctx| ctx.allreduce_sum_f64(0.5));
        assert!(out.iter().all(|&v| (v - 3.5).abs() < 1e-12));
    }

    #[test]
    fn gather_in_rank_order() {
        let (out, _) = machine(4).run(|ctx| ctx.gather(2, (ctx.rank() * 11) as u32, 1));
        assert_eq!(out[2], Some(vec![0, 11, 22, 33]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let (out, _) = machine(5).run(|ctx| ctx.allgather(ctx.rank() as u8, 1));
        for v in out {
            assert_eq!(v, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn exchange_transposes() {
        // outboxes[r] = vec![me * 10 + r]; inbox from s must be s*10 + me.
        let (out, _) = machine(4).run(|ctx| {
            let me = ctx.rank();
            let boxes: Vec<Vec<usize>> = (0..4).map(|r| vec![me * 10 + r]).collect();
            ctx.exchange(boxes, 1)
        });
        for (me, inboxes) in out.iter().enumerate() {
            for (s, b) in inboxes.iter().enumerate() {
                assert_eq!(b, &vec![s * 10 + me], "me={me} s={s}");
            }
        }
    }

    #[test]
    fn barrier_completes() {
        let (_, report) = machine(8).run(|ctx| {
            for _ in 0..3 {
                ctx.barrier();
            }
        });
        assert!(report.total_messages > 0);
    }

    #[test]
    fn collective_cost_grows_logarithmically() {
        // Makespan of one barrier should scale ~log p, not ~p.
        let cost = CostModel {
            t_work: 0.0,
            alpha: 1.0,
            beta: 0.0,
        };
        let t4 = Machine::new(4, cost).run(|ctx| ctx.barrier()).1.makespan;
        let t16 = Machine::new(16, cost).run(|ctx| ctx.barrier()).1.makespan;
        assert!(t16 <= t4 * 3.0, "t4={t4} t16={t16}");
    }
}
