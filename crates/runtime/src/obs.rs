//! Runtime-layer metrics: launch wall time, per-backend collective and
//! barrier timings, and the simulator's charged totals — registered
//! into the global igp-obs registry so modeled (CM-5) and observed
//! (wall-clock) cost can be compared side by side from one `METRICS`
//! scrape (DESIGN.md §10.4).

use std::sync::{Arc, OnceLock};

use igp_obs::{registry, Counter, Histogram};

use crate::exec::Backend;

impl Backend {
    /// Index into per-backend metric arrays.
    pub(crate) fn obs_idx(self) -> usize {
        match self {
            Backend::SimCm5 => 0,
            Backend::SharedMem => 1,
        }
    }
}

/// Per-backend series (label `backend="sim-cm5" | "shared-mem"`).
pub struct BackendMetrics {
    /// `igp_runtime_launches_total` — SPMD jobs launched.
    pub launches_total: Arc<Counter>,
    /// `igp_runtime_launch_us` — wall time of [`Backend::launch`].
    pub launch_us: Arc<Histogram>,
    /// `igp_runtime_barrier_wait_us` — wall time blocked in `barrier()`.
    pub barrier_wait_us: Arc<Histogram>,
    /// `igp_runtime_collective_us{op=…}` — wall time per collective.
    pub broadcast_us: Arc<Histogram>,
    /// See [`Self::broadcast_us`].
    pub allgather_us: Arc<Histogram>,
    /// See [`Self::broadcast_us`].
    pub allreduce_us: Arc<Histogram>,
    /// See [`Self::broadcast_us`].
    pub exchange_us: Arc<Histogram>,
}

/// All runtime-layer metrics; one instance per process.
pub struct RuntimeMetrics {
    /// Indexed by the backend's declaration order in [`Backend`]
    /// (`SimCm5` = 0, `SharedMem` = 1; see `Backend::obs_idx`).
    pub backend: [BackendMetrics; 2],
    /// `igp_runtime_sim_makespan_us` — modeled CM-5 makespan per launch.
    pub sim_makespan_us: Arc<Histogram>,
    /// `igp_runtime_sim_messages_total` — simulated messages charged.
    pub sim_messages_total: Arc<Counter>,
    /// `igp_runtime_sim_words_total` — simulated 4-byte words charged.
    pub sim_words_total: Arc<Counter>,
    /// `igp_runtime_sim_work_total` — charged local work units (both
    /// backends count this; only SimCm5 prices it).
    pub sim_work_total: Arc<Counter>,
}

fn backend_metrics(name: &'static str) -> BackendMetrics {
    let r = registry();
    let lbl = |extra: Option<(&'static str, &str)>| {
        let mut v: igp_obs::Labels = vec![("backend", name.to_string())];
        if let Some((k, val)) = extra {
            v.push((k, val.to_string()));
        }
        v
    };
    BackendMetrics {
        launches_total: r.counter(
            "igp_runtime_launches_total",
            "SPMD jobs launched via Backend::launch",
            lbl(None),
        ),
        launch_us: r.histogram(
            "igp_runtime_launch_us",
            "Wall time of Backend::launch (microseconds)",
            lbl(None),
        ),
        barrier_wait_us: r.histogram(
            "igp_runtime_barrier_wait_us",
            "Wall time blocked at the SPMD barrier (microseconds)",
            lbl(None),
        ),
        broadcast_us: r.histogram(
            "igp_runtime_collective_us",
            "Wall time per collective call (microseconds)",
            lbl(Some(("op", "broadcast"))),
        ),
        allgather_us: r.histogram(
            "igp_runtime_collective_us",
            "Wall time per collective call (microseconds)",
            lbl(Some(("op", "allgather"))),
        ),
        allreduce_us: r.histogram(
            "igp_runtime_collective_us",
            "Wall time per collective call (microseconds)",
            lbl(Some(("op", "allreduce"))),
        ),
        exchange_us: r.histogram(
            "igp_runtime_collective_us",
            "Wall time per collective call (microseconds)",
            lbl(Some(("op", "exchange"))),
        ),
    }
}

/// The runtime layer's registered metric handles (cold-path
/// registration happens once; the returned refs are the hot path).
pub fn metrics() -> &'static RuntimeMetrics {
    static M: OnceLock<RuntimeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        RuntimeMetrics {
            backend: [backend_metrics("sim-cm5"), backend_metrics("shared-mem")],
            sim_makespan_us: r.histogram(
                "igp_runtime_sim_makespan_us",
                "Modeled CM-5 makespan per launch (microseconds of simulated time)",
                vec![],
            ),
            sim_messages_total: r.counter(
                "igp_runtime_sim_messages_total",
                "Simulated point-to-point messages charged by the CM-5 model",
                vec![],
            ),
            sim_words_total: r.counter(
                "igp_runtime_sim_words_total",
                "Simulated 4-byte payload words charged by the CM-5 model",
                vec![],
            ),
            sim_work_total: r.counter(
                "igp_runtime_sim_work_total",
                "Local compute units charged via Executor::charge",
                vec![],
            ),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::exec::SpmdJob;

    struct Chatty;

    impl SpmdJob for Chatty {
        type Out = u64;

        fn run<E: crate::exec::Executor>(&self, e: &mut E) -> u64 {
            e.charge(3);
            e.barrier();
            let s = e.allreduce_sum(1);
            let _: Vec<u64> = e.allgather(s, 1);
            let _ = e.broadcast(0, (e.rank() == 0).then_some(s), 1);
            let _ = e.exchange((0..e.size()).map(|_| vec![1u8]).collect(), 1);
            s
        }
    }

    #[test]
    fn launch_populates_backend_and_sim_families() {
        igp_obs::set_enabled(true);
        let m = metrics();
        let before: Vec<u64> = Backend::ALL
            .iter()
            .map(|b| m.backend[b.obs_idx()].launches_total.get())
            .collect();
        let sim_msgs = m.sim_messages_total.get();
        for b in Backend::ALL {
            let _ = b.launch(2, CostModel::cm5(), &Chatty);
            let bm = &m.backend[b.obs_idx()];
            assert!(bm.launches_total.get() > before[b.obs_idx()], "{b}");
            assert!(bm.launch_us.count() > 0, "{b}");
            assert!(bm.barrier_wait_us.count() > 0, "{b}");
            assert!(bm.allreduce_us.count() > 0, "{b}");
            assert!(bm.exchange_us.count() > 0, "{b}");
        }
        assert!(m.sim_makespan_us.count() > 0);
        assert!(m.sim_messages_total.get() > sim_msgs);
        assert!(m.sim_work_total.get() > 0);
    }
}
