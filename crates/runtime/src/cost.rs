//! The simulated-time cost model.
//!
//! Each rank owns a virtual clock advanced by two kinds of events:
//!
//! * **compute** — `charge(u)` adds `u · t_work` seconds;
//! * **communication** — a message of `w` words departs at the sender's
//!   clock and arrives `α + β·w` later; the receiver's clock becomes
//!   `max(receiver clock, arrival)` (classic LogP-style latency model).
//!
//! The constants default to CM-5-era magnitudes (33 MHz SPARC nodes, fat
//! tree network): they matter only for the *ratio* of compute to
//! communication; the benches additionally rescale by measured sequential
//! time so absolute values are anchored to this host (DESIGN.md §4).

/// Per-operation cost constants (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Seconds per charged work unit (≈ a handful of flops + loads).
    pub t_work: f64,
    /// Message latency (seconds).
    pub alpha: f64,
    /// Per-word transfer cost (seconds/word).
    pub beta: f64,
}

impl CostModel {
    /// CM-5-flavoured constants: ~0.3 µs per work unit (a few operations
    /// on a 33 MHz SPARC), 6 µs message latency, 0.1 µs per 4-byte word
    /// (~40 MB/s per-node fat-tree bandwidth).
    pub fn cm5() -> Self {
        CostModel {
            t_work: 3.0e-7,
            alpha: 6.0e-6,
            beta: 1.0e-7,
        }
    }

    /// A communication-free model (for isolating compute scaling).
    pub fn compute_only() -> Self {
        CostModel {
            t_work: 3.0e-7,
            alpha: 0.0,
            beta: 0.0,
        }
    }

    /// Cost of one message of `words` 4-byte words.
    #[inline]
    pub fn msg_cost(&self, words: u64) -> f64 {
        self.alpha + self.beta * words as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::cm5()
    }
}

/// Aggregate statistics from one [`crate::Machine::run`].
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Final simulated clock per rank.
    pub per_rank: Vec<f64>,
    /// Simulated parallel time = max over ranks.
    pub makespan: f64,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total words sent.
    pub total_words: u64,
    /// Total work units charged across ranks.
    pub total_work: u64,
    /// Real wall-clock duration of the run (seconds).
    pub wall_seconds: f64,
}

impl SimReport {
    /// Simulated speedup relative to all charged work running on one rank
    /// with no communication.
    pub fn speedup_vs_serial(&self, cost: &CostModel) -> f64 {
        let serial = self.total_work as f64 * cost.t_work;
        if self.makespan > 0.0 {
            serial / self.makespan
        } else {
            1.0
        }
    }

    /// Fraction of simulated rank-time spent idle/waiting relative to the
    /// makespan (load-imbalance indicator).
    pub fn imbalance(&self) -> f64 {
        if self.per_rank.is_empty() || self.makespan == 0.0 {
            return 0.0;
        }
        let avg: f64 = self.per_rank.iter().sum::<f64>() / self.per_rank.len() as f64;
        self.makespan / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_cost_formula() {
        let c = CostModel {
            t_work: 1.0,
            alpha: 10.0,
            beta: 2.0,
        };
        assert_eq!(c.msg_cost(0), 10.0);
        assert_eq!(c.msg_cost(5), 20.0);
    }

    #[test]
    fn cm5_magnitudes_sane() {
        let c = CostModel::cm5();
        // A message should cost like tens of work units, not millions.
        let ratio = c.msg_cost(1) / c.t_work;
        assert!(ratio > 5.0 && ratio < 1000.0, "{ratio}");
    }

    #[test]
    fn report_speedup() {
        let r = SimReport {
            per_rank: vec![1.0, 2.0],
            makespan: 2.0,
            total_work: 10_000_000,
            ..Default::default()
        };
        let c = CostModel {
            t_work: 1e-6,
            alpha: 0.0,
            beta: 0.0,
        };
        assert!((r.speedup_vs_serial(&c) - 5.0).abs() < 1e-9);
        assert!((r.imbalance() - 2.0 / 1.5).abs() < 1e-9);
    }
}
