//! Per-rank execution context: typed sends/receives and the virtual clock.

use crate::cost::CostModel;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::time::Duration;

/// Watchdog for blocking receives — a deadlocked SPMD program fails fast
/// instead of hanging the test suite.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

pub(crate) struct Envelope {
    pub from: usize,
    /// Simulated arrival time at the receiver.
    pub arrive: f64,
    pub words: u64,
    pub payload: Box<dyn Any + Send>,
}

/// The SPMD context handed to each rank's closure.
pub struct Ctx {
    rank: usize,
    size: usize,
    rx: Receiver<Envelope>,
    txs: Vec<Sender<Envelope>>,
    cost: CostModel,
    clock: f64,
    pending: Vec<Envelope>,
    pub(crate) sent_messages: u64,
    pub(crate) sent_words: u64,
    pub(crate) charged_work: u64,
}

impl Ctx {
    pub(crate) fn new(
        rank: usize,
        size: usize,
        rx: Receiver<Envelope>,
        txs: Vec<Sender<Envelope>>,
        cost: CostModel,
    ) -> Self {
        Ctx {
            rank,
            size,
            rx,
            txs,
            cost,
            clock: 0.0,
            pending: Vec::new(),
            sent_messages: 0,
            sent_words: 0,
            charged_work: 0,
        }
    }

    /// This rank's id, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cost model in effect.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Current simulated time on this rank.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Charge `units` of local compute to the virtual clock.
    #[inline]
    pub fn charge(&mut self, units: u64) {
        self.clock += units as f64 * self.cost.t_work;
        self.charged_work += units;
    }

    /// Send `msg` (accounted as `words` 4-byte words) to rank `to`.
    ///
    /// The simulated send is non-blocking: the sender pays latency `α`
    /// overlap-free (a LogP "o" simplification folded into α).
    pub fn send<M: Send + 'static>(&mut self, to: usize, msg: M, words: u64) {
        assert!(to < self.size && to != self.rank, "bad destination {to}");
        let arrive = self.clock + self.cost.msg_cost(words);
        self.sent_messages += 1;
        self.sent_words += words;
        self.txs[to]
            .send(Envelope {
                from: self.rank,
                arrive,
                words,
                payload: Box::new(msg),
            })
            .expect("receiver hung up");
    }

    /// Blocking receive of a message of type `M` from rank `from`.
    /// Messages from other ranks arriving in the meantime are buffered.
    ///
    /// Panics on type mismatch (protocol error) or 60 s of silence
    /// (deadlock watchdog).
    pub fn recv<M: Send + 'static>(&mut self, from: usize) -> M {
        let env = self.take_envelope(from);
        self.clock = self.clock.max(env.arrive);
        let _ = env.words;
        *env.payload.downcast::<M>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from {} (expected {})",
                self.rank,
                from,
                std::any::type_name::<M>()
            )
        })
    }

    fn take_envelope(&mut self, from: usize) -> Envelope {
        if let Some(pos) = self.pending.iter().position(|e| e.from == from) {
            return self.pending.remove(pos);
        }
        loop {
            let env = self
                .rx
                .recv_timeout(RECV_TIMEOUT)
                .unwrap_or_else(|_| panic!("rank {} deadlocked waiting for {from}", self.rank));
            if env.from == from {
                return env;
            }
            self.pending.push(env);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{CostModel, Machine};

    #[test]
    fn rank_and_size_visible() {
        let m = Machine::new(3, CostModel::cm5());
        let (ranks, _) = m.run(|ctx| (ctx.rank(), ctx.size()));
        assert_eq!(ranks, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn charge_advances_clock() {
        let m = Machine::new(
            1,
            CostModel {
                t_work: 2.0,
                alpha: 0.0,
                beta: 0.0,
            },
        );
        let (t, report) = m.run(|ctx| {
            ctx.charge(5);
            ctx.now()
        });
        assert_eq!(t[0], 10.0);
        assert_eq!(report.makespan, 10.0);
        assert_eq!(report.total_work, 5);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let m = Machine::new(2, CostModel::cm5());
        let (vals, report) = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 41u32, 1);
                ctx.recv::<u32>(1)
            } else {
                let v = ctx.recv::<u32>(0);
                ctx.send(0, v + 1, 1);
                v
            }
        });
        assert_eq!(vals, vec![42, 41]);
        assert_eq!(report.total_messages, 2);
    }

    #[test]
    fn message_latency_applied() {
        let cost = CostModel {
            t_work: 0.0,
            alpha: 5.0,
            beta: 1.0,
        };
        let m = Machine::new(2, cost);
        let (t, _) = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, (), 3);
                ctx.now()
            } else {
                ctx.recv::<()>(0);
                ctx.now()
            }
        });
        assert_eq!(t[0], 0.0); // non-blocking send
        assert_eq!(t[1], 8.0); // α + 3β
    }

    #[test]
    fn out_of_order_senders_buffered() {
        let m = Machine::new(3, CostModel::cm5());
        let (vals, _) = m.run(|ctx| match ctx.rank() {
            0 => {
                // Receive from 2 first even if 1's message arrives earlier.
                let a = ctx.recv::<u8>(2);
                let b = ctx.recv::<u8>(1);
                (a, b)
            }
            r => {
                ctx.send(0, r as u8, 1);
                (0, 0)
            }
        });
        assert_eq!(vals[0], (2, 1));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let m = Machine::new(2, CostModel::cm5());
        let _ = m.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1u32, 1);
            } else {
                let _: u64 = ctx.recv(0);
            }
        });
    }
}
