//! The shared-memory SPMD machine: real data parallelism on this host.
//!
//! Where [`crate::Machine`] *simulates* a CM-5 (typed messages, charged
//! α/β costs, virtual clocks), [`SharedMachine`] exists to actually run
//! fast: `p` worker threads share one collective **board** — a slot per
//! rank — and every collective is post → barrier → direct slot reduction
//! → barrier. No envelopes, no channels, no per-hop boxing: a broadcast
//! writes one slot and everyone reads it; an allreduce folds the slot
//! slice left-to-right in rank order.
//!
//! That rank-ordered fold is what makes the backend a drop-in substrate
//! for the drivers: it resolves ties exactly like the simulator's
//! binomial reduction trees (lower rank wins), so replicated state —
//! partitions, simplex pivot choices — is bit-identical across backends
//! (DESIGN.md §6).
//!
//! Timing semantics differ by design: [`crate::Executor::charge`] only
//! increments a work counter here, and `now` reads the wall clock, so
//! the resulting [`SimReport`] carries *measured* per-rank seconds
//! (`makespan` = slowest rank) rather than modeled CM-5 time.

use crate::cost::SimReport;
use crate::exec::Executor;
use std::any::Any;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Watchdog for barrier waits — a rank that stops participating in the
/// collective schedule fails fast instead of hanging the test suite
/// (mirrors `Ctx`'s receive watchdog).
const GATE_TIMEOUT: Duration = Duration::from_secs(60);

/// Reusable p-party barrier with poisoning: a panicking rank marks the
/// gate so the surviving ranks panic at their next wait instead of
/// blocking forever on a peer that will never arrive.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    parties: usize,
}

struct GateState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl Gate {
    fn new(parties: usize) -> Self {
        Gate {
            state: Mutex::new(GateState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            parties,
        }
    }

    fn wait(&self) {
        if self.parties == 1 {
            return;
        }
        // `into_inner` everywhere: a peer that panicked while holding the
        // lock must not turn our own panic path into an abort-in-drop.
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.poisoned {
            drop(s);
            panic!("SPMD peer rank panicked; gate poisoned");
        }
        s.waiting += 1;
        if s.waiting == self.parties {
            s.waiting = 0;
            s.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = s.generation;
        loop {
            let (guard, timeout) = self
                .cv
                .wait_timeout(s, GATE_TIMEOUT)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if s.poisoned {
                drop(s);
                panic!("SPMD peer rank panicked; gate poisoned");
            }
            if s.generation != gen {
                return;
            }
            if timeout.timed_out() {
                drop(s);
                panic!("SPMD rank deadlocked at shared-memory barrier");
            }
        }
    }

    fn poison(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.poisoned = true;
        self.cv.notify_all();
    }
}

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

/// The shared collective board: one contribution slot per rank plus the
/// synchronization gate.
struct Board {
    slots: Vec<Slot>,
    gate: Gate,
}

impl Board {
    fn new(p: usize) -> Self {
        Board {
            slots: (0..p).map(|_| Mutex::new(None)).collect(),
            gate: Gate::new(p),
        }
    }
}

/// Poisons the gate if the rank body unwinds, releasing peers blocked at
/// a barrier.
struct PoisonOnPanic<'a>(&'a Gate);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// The per-rank executor handed to each worker thread.
pub struct SharedCtx<'a> {
    rank: usize,
    size: usize,
    board: &'a Board,
    start: Instant,
    charged_work: u64,
}

impl<'a> SharedCtx<'a> {
    fn new(rank: usize, size: usize, board: &'a Board) -> Self {
        SharedCtx {
            rank,
            size,
            board,
            start: Instant::now(),
            charged_work: 0,
        }
    }

    /// Post this rank's erased contribution, synchronize, read the full
    /// slot slice, and synchronize again so nobody overwrites a slot a
    /// peer is still reading.
    fn collective<R>(
        &mut self,
        post: Option<Box<dyn Any + Send>>,
        read: impl FnOnce(usize, &[Slot]) -> R,
    ) -> R {
        if let Some(val) = post {
            *self.board.slots[self.rank].lock().unwrap() = Some(val);
        }
        self.board.gate.wait();
        let out = read(self.rank, &self.board.slots);
        self.board.gate.wait();
        out
    }
}

/// Lock slot `r` and clone out its typed contents.
fn read_slot<M: Clone + 'static>(slots: &[Slot], r: usize) -> M {
    slots[r]
        .lock()
        .unwrap()
        .as_ref()
        .expect("collective slot empty: SPMD schedule diverged across ranks")
        .downcast_ref::<M>()
        .expect("collective slot type mismatch: SPMD schedule diverged across ranks")
        .clone()
}

impl Executor for SharedCtx<'_> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    #[inline]
    fn charge(&mut self, units: u64) {
        self.charged_work += units;
    }

    #[inline]
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn barrier(&mut self) {
        let m = &crate::obs::metrics().backend[crate::Backend::SharedMem.obs_idx()];
        m.barrier_wait_us.time(|| self.board.gate.wait());
    }

    fn broadcast<M>(&mut self, root: usize, val: Option<M>, _words: u64) -> M
    where
        M: Clone + Send + 'static,
    {
        let m = &crate::obs::metrics().backend[crate::Backend::SharedMem.obs_idx()];
        m.broadcast_us.time(|| {
            let me = self.rank;
            let post = if me == root {
                let v = val.expect("root must supply the broadcast value");
                Some(Box::new(v) as Box<dyn Any + Send>)
            } else {
                None
            };
            self.collective(post, |_, slots| read_slot::<M>(slots, root))
        })
    }

    fn allgather<M>(&mut self, val: M, _words: u64) -> Vec<M>
    where
        M: Clone + Send + 'static,
    {
        let m = &crate::obs::metrics().backend[crate::Backend::SharedMem.obs_idx()];
        m.allgather_us.time(|| {
            self.collective(Some(Box::new(val)), |_, slots| {
                (0..slots.len()).map(|r| read_slot::<M>(slots, r)).collect()
            })
        })
    }

    fn allreduce<M, F>(&mut self, val: M, _words: u64, op: F) -> M
    where
        M: Clone + Send + 'static,
        F: Fn(M, M) -> M,
    {
        // Every rank folds the slot slice in rank order. The fold keeps
        // the left operand on ties (op contract), so ties resolve to the
        // lowest rank — the same winner the simulator's binomial tree
        // produces.
        let m = &crate::obs::metrics().backend[crate::Backend::SharedMem.obs_idx()];
        m.allreduce_us.time(|| {
            self.collective(Some(Box::new(val)), |_, slots| {
                let mut acc = read_slot::<M>(slots, 0);
                for r in 1..slots.len() {
                    acc = op(acc, read_slot::<M>(slots, r));
                }
                acc
            })
        })
    }

    fn exchange<M>(&mut self, mut outboxes: Vec<Vec<M>>, _words_per_item: u64) -> Vec<Vec<M>>
    where
        M: Send + 'static,
    {
        let p = self.size;
        let me = self.rank;
        assert_eq!(outboxes.len(), p, "need one outbox per rank");
        let mine = std::mem::take(&mut outboxes[me]);
        let m = &crate::obs::metrics().backend[crate::Backend::SharedMem.obs_idx()];
        m.exchange_us.time(|| {
            self.collective(Some(Box::new(outboxes)), |me, slots| {
                let mut inboxes: Vec<Vec<M>> = (0..p).map(|_| Vec::new()).collect();
                inboxes[me] = mine;
                for (s, slot) in slots.iter().enumerate() {
                    if s == me {
                        continue;
                    }
                    let mut guard = slot.lock().unwrap();
                    let posted = guard
                        .as_mut()
                        .expect("collective slot empty: SPMD schedule diverged across ranks")
                        .downcast_mut::<Vec<Vec<M>>>()
                        .expect(
                            "collective slot type mismatch: SPMD schedule diverged across ranks",
                        );
                    inboxes[s] = std::mem::take(&mut posted[me]);
                }
                inboxes
            })
        })
    }
}

/// A `p`-worker shared-memory machine.
#[derive(Clone, Copy, Debug)]
pub struct SharedMachine {
    p: usize,
}

impl SharedMachine {
    /// A machine with `p ≥ 1` workers.
    pub fn new(p: usize) -> Self {
        assert!(p >= 1, "need at least one rank");
        SharedMachine { p }
    }

    /// Number of workers.
    pub fn num_ranks(&self) -> usize {
        self.p
    }

    /// Run `f` on every rank (as OS threads over one shared board),
    /// returning per-rank results (index = rank) and a wall-clock
    /// [`SimReport`]: `per_rank`/`makespan` are measured seconds,
    /// `total_work` sums the charged units, and the message counters
    /// stay zero (nothing is serialized).
    ///
    /// Panics in any rank propagate after the scope joins; peers blocked
    /// at a collective are released by gate poisoning.
    pub fn run<T, F>(&self, f: F) -> (Vec<T>, SimReport)
    where
        T: Send,
        F: for<'e> Fn(&mut SharedCtx<'e>) -> T + Sync,
    {
        let start = Instant::now();
        let board = Board::new(self.p);
        let results: Vec<(T, f64, u64)> = if self.p == 1 {
            // Single rank: run inline (no thread overhead), as Machine does.
            let mut ctx = SharedCtx::new(0, 1, &board);
            let out = f(&mut ctx);
            vec![(out, ctx.now(), ctx.charged_work)]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.p)
                    .map(|rank| {
                        let board = &board;
                        let f = &f;
                        scope.spawn(move || {
                            let _guard = PoisonOnPanic(&board.gate);
                            let mut ctx = SharedCtx::new(rank, board.slots.len(), board);
                            let out = f(&mut ctx);
                            (out, ctx.now(), ctx.charged_work)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(v) => v,
                        // Re-raise the original payload so callers (and
                        // #[should_panic] tests) see the real message.
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            })
        };

        let mut report = SimReport {
            per_rank: results.iter().map(|r| r.1).collect(),
            wall_seconds: start.elapsed().as_secs_f64(),
            ..Default::default()
        };
        report.makespan = report.per_rank.iter().copied().fold(0.0, f64::max);
        for r in &results {
            report.total_work += r.2;
        }
        (results.into_iter().map(|r| r.0).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_ordered_by_rank() {
        let m = SharedMachine::new(5);
        let (out, _) = m.run(|ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn single_rank_inline() {
        let (out, report) = SharedMachine::new(1).run(|ctx| {
            ctx.charge(100);
            let s = ctx.allreduce_sum(7);
            let g: Vec<usize> = ctx.allgather(ctx.rank(), 1);
            (s, g)
        });
        assert_eq!(out, vec![(7, vec![0])]);
        assert_eq!(report.total_work, 100);
        assert_eq!(report.total_messages, 0);
    }

    #[test]
    fn allreduce_folds_in_rank_order() {
        // Non-commutative op exposes the fold order: string concatenation
        // must come out strictly rank-ordered on every rank.
        let (out, _) = SharedMachine::new(4)
            .run(|ctx| ctx.allreduce(ctx.rank().to_string(), 1, |a, b| format!("{a}{b}")));
        assert!(out.iter().all(|s| s == "0123"));
    }

    #[test]
    fn min_by_key_tie_goes_to_lowest_rank() {
        let (out, _) = SharedMachine::new(5).run(|ctx| {
            let key = if ctx.rank() >= 2 { 1.0 } else { 5.0 };
            ctx.allreduce_min_by_key(key, ctx.rank(), 1)
        });
        assert!(out.iter().all(|&(k, w)| k == 1.0 && w == 2));
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..4 {
            let (out, _) = SharedMachine::new(4).run(|ctx| {
                let v = (ctx.rank() == root).then(|| vec![root as u32; 3]);
                ctx.broadcast(root, v, 3)
            });
            assert!(out.iter().all(|v| *v == vec![root as u32; 3]));
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_cross_talk() {
        // Same payload type in consecutive collectives: the double gate
        // must keep round k+1's posts from racing round k's reads.
        let (out, _) = SharedMachine::new(4).run(|ctx| {
            let mut acc = Vec::new();
            for round in 0..50u64 {
                let v: Vec<u64> = ctx.allgather(round * 10 + ctx.rank() as u64, 1);
                acc.push(v);
            }
            acc
        });
        for rounds in out {
            for (round, v) in rounds.iter().enumerate() {
                let want: Vec<u64> = (0..4).map(|r| round as u64 * 10 + r).collect();
                assert_eq!(v, &want);
            }
        }
    }

    #[test]
    fn wall_clock_report() {
        let (_, report) = SharedMachine::new(3).run(|ctx| {
            ctx.charge(5);
            ctx.barrier();
        });
        assert_eq!(report.per_rank.len(), 3);
        assert!(report.makespan >= 0.0);
        assert!(report.wall_seconds >= report.makespan);
        assert_eq!(report.total_work, 15);
        assert_eq!(report.total_messages, 0);
        assert_eq!(report.total_words, 0);
    }

    #[test]
    #[should_panic(expected = "gate poisoned")]
    fn panic_propagates_and_releases_peers() {
        let _ = SharedMachine::new(3).run(|ctx| {
            if ctx.rank() == 2 {
                panic!("boom on rank 2");
            }
            // Peers head into a barrier the panicking rank never reaches;
            // poisoning must release them.
            ctx.barrier();
        });
    }
}
