//! The [`Executor`] abstraction: the SPMD primitives the partitioning
//! drivers are written against, decoupled from the execution substrate.
//!
//! The drivers in `igp-core` (`parallel`, `psimplex`) are generic over
//! this trait, so the *algorithm* — ownership split, collective schedule,
//! deterministic tie-breaks — is written once and runs on any backend:
//!
//! * [`Backend::SimCm5`] — the message-passing [`crate::Machine`]: OS
//!   threads exchanging typed messages, every operation charged to the
//!   CM-5 cost model. Produces the paper's simulated `Time-p` numbers
//!   (DESIGN.md §4).
//! * [`Backend::SharedMem`] — the [`crate::SharedMachine`]: collectives
//!   are direct slot reductions on shared memory, `charge` is a plain
//!   counter, and `now` reads the wall clock. This is the "run fast on
//!   this host" substrate (DESIGN.md §6).
//!
//! Determinism contract: every collective returns a value that is a pure,
//! rank-order-deterministic function of the per-rank contributions — e.g.
//! `allreduce` folds as `op(..op(op(v₀, v₁), v₂).., vₚ₋₁)` with ties kept
//! on the left — so a driver that only communicates through collectives
//! computes **bit-identical** replicated state on every backend. The
//! cross-backend equivalence suite (`tests/backend_equiv.rs`) pins that
//! guarantee.

use crate::cost::{CostModel, SimReport};
use crate::machine::Machine;
use crate::shared::SharedMachine;

/// SPMD execution primitives, one instance per rank.
///
/// Word counts (`words`, 4-byte words) are accounting hints: the CM-5
/// backend prices every payload through `α + β·words`; the shared-memory
/// backend ignores them.
pub trait Executor {
    /// This rank's id, `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks.
    fn size(&self) -> usize;

    /// Account `units` of local compute (advances the virtual clock on
    /// the simulator; increments a work counter on real backends).
    fn charge(&mut self, units: u64);

    /// Current time on this rank in seconds — simulated CM-5 time on
    /// [`Backend::SimCm5`], elapsed wall time on [`Backend::SharedMem`].
    fn now(&self) -> f64;

    /// Wait for every rank.
    fn barrier(&mut self);

    /// Broadcast from `root`; non-roots pass `None`.
    fn broadcast<M>(&mut self, root: usize, val: Option<M>, words: u64) -> M
    where
        M: Clone + Send + 'static;

    /// Rank-ordered vector of every rank's contribution, on every rank.
    fn allgather<M>(&mut self, val: M, words: u64) -> Vec<M>
    where
        M: Clone + Send + 'static;

    /// Reduce with `op` (associative; ties must be resolved keeping the
    /// lower-rank operand) and replicate the result.
    fn allreduce<M, F>(&mut self, val: M, words: u64, op: F) -> M
    where
        M: Clone + Send + 'static,
        F: Fn(M, M) -> M;

    /// Personalized all-to-all: `outboxes[r]` is delivered to rank `r`;
    /// returns inboxes indexed by source rank.
    fn exchange<M>(&mut self, outboxes: Vec<Vec<M>>, words_per_item: u64) -> Vec<Vec<M>>
    where
        M: Send + 'static;

    /// Sum-allreduce of a `u64`.
    fn allreduce_sum(&mut self, val: u64) -> u64 {
        self.allreduce(val, 2, |a, b| a + b)
    }

    /// Global arg-min: every rank contributes `(key, payload)`; all ranks
    /// receive the pair with the smallest key (ties → smallest rank).
    fn allreduce_min_by_key<M>(&mut self, key: f64, payload: M, words: u64) -> (f64, M)
    where
        M: Clone + Send + 'static,
    {
        self.allreduce(
            (key, payload),
            words + 2,
            |a, b| if b.0 < a.0 { b } else { a },
        )
    }
}

/// An SPMD program written against [`Executor`], launchable on any
/// [`Backend`]. (A trait rather than a closure because `run` is generic
/// over the executor type.)
pub trait SpmdJob: Sync {
    /// Per-rank result type.
    type Out: Send;

    /// The rank body; executed once per rank.
    fn run<E: Executor>(&self, exec: &mut E) -> Self::Out;
}

/// Which substrate executes an SPMD job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Simulated CM-5: message passing + charged α/β/t_work costs.
    #[default]
    SimCm5,
    /// Shared memory: slot collectives + wall-clock timing.
    SharedMem,
}

impl Backend {
    /// All backends, for sweeps and test matrices.
    pub const ALL: [Backend; 2] = [Backend::SimCm5, Backend::SharedMem];

    /// Run `job` on `workers` ranks. `cost` is only consulted by
    /// [`Backend::SimCm5`]; per-rank results are indexed by rank.
    pub fn launch<J: SpmdJob>(
        self,
        workers: usize,
        cost: CostModel,
        job: &J,
    ) -> (Vec<J::Out>, SimReport) {
        let m = crate::obs::metrics();
        let bm = &m.backend[self.obs_idx()];
        bm.launches_total.inc();
        let (outs, report) = bm.launch_us.time(|| match self {
            Backend::SimCm5 => Machine::new(workers, cost).run(|ctx| job.run(ctx)),
            Backend::SharedMem => SharedMachine::new(workers).run(|ctx| job.run(ctx)),
        });
        // Simulated charges sit next to the wall timings so modeled vs.
        // observed cost can be compared from one scrape.
        if self == Backend::SimCm5 {
            m.sim_makespan_us
                .observe((report.makespan * 1e6).round() as u64);
            m.sim_messages_total.add(report.total_messages);
            m.sim_words_total.add(report.total_words);
        }
        m.sim_work_total.add(report.total_work);
        (outs, report)
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::SimCm5 => "sim-cm5",
            Backend::SharedMem => "shared-mem",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sim-cm5" | "sim" | "cm5" | "simcm5" => Ok(Backend::SimCm5),
            "shared-mem" | "shared" | "shm" | "sharedmem" => Ok(Backend::SharedMem),
            other => Err(format!(
                "unknown backend '{other}' (expected 'sim-cm5' or 'shared-mem')"
            )),
        }
    }
}

/// [`crate::Ctx`] is the [`Backend::SimCm5`] executor: every method
/// delegates to the existing message-passing implementation, so charged
/// costs, message counts and `SimReport`s are unchanged from the
/// pre-trait runtime.
impl Executor for crate::Ctx {
    #[inline]
    fn rank(&self) -> usize {
        crate::Ctx::rank(self)
    }

    #[inline]
    fn size(&self) -> usize {
        crate::Ctx::size(self)
    }

    #[inline]
    fn charge(&mut self, units: u64) {
        crate::Ctx::charge(self, units)
    }

    #[inline]
    fn now(&self) -> f64 {
        crate::Ctx::now(self)
    }

    fn barrier(&mut self) {
        let m = &crate::obs::metrics().backend[Backend::SimCm5.obs_idx()];
        m.barrier_wait_us.time(|| crate::Ctx::barrier(self))
    }

    fn broadcast<M>(&mut self, root: usize, val: Option<M>, words: u64) -> M
    where
        M: Clone + Send + 'static,
    {
        let m = &crate::obs::metrics().backend[Backend::SimCm5.obs_idx()];
        m.broadcast_us.time(|| self.broadcast_w(root, val, words))
    }

    fn allgather<M>(&mut self, val: M, words: u64) -> Vec<M>
    where
        M: Clone + Send + 'static,
    {
        let m = &crate::obs::metrics().backend[Backend::SimCm5.obs_idx()];
        m.allgather_us
            .time(|| crate::Ctx::allgather(self, val, words))
    }

    fn allreduce<M, F>(&mut self, val: M, words: u64, op: F) -> M
    where
        M: Clone + Send + 'static,
        F: Fn(M, M) -> M,
    {
        let m = &crate::obs::metrics().backend[Backend::SimCm5.obs_idx()];
        m.allreduce_us
            .time(|| crate::Ctx::allreduce(self, val, words, op))
    }

    fn exchange<M>(&mut self, outboxes: Vec<Vec<M>>, words_per_item: u64) -> Vec<Vec<M>>
    where
        M: Send + 'static,
    {
        let m = &crate::obs::metrics().backend[Backend::SimCm5.obs_idx()];
        m.exchange_us
            .time(|| crate::Ctx::exchange(self, outboxes, words_per_item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One job, every backend: the generic collectives must agree.
    struct Pipeline;

    impl SpmdJob for Pipeline {
        type Out = (usize, u64, Vec<u32>, (f64, usize));

        fn run<E: Executor>(&self, e: &mut E) -> Self::Out {
            e.charge(10);
            let sum = e.allreduce_sum(e.rank() as u64 + 1);
            let gathered: Vec<u32> = e.allgather(e.rank() as u32 * 3, 1);
            let key = if e.rank() == e.size() - 1 { -1.0 } else { 1.0 };
            let min = e.allreduce_min_by_key(key, e.rank(), 1);
            e.barrier();
            let from_root = e.broadcast(0, if e.rank() == 0 { Some(sum) } else { None }, 2);
            assert_eq!(from_root, sum);
            (e.rank(), sum, gathered, min)
        }
    }

    #[test]
    fn backends_agree_on_collectives() {
        for p in [1usize, 2, 3, 5] {
            let mut per_backend = Vec::new();
            for b in Backend::ALL {
                let (outs, _) = b.launch(p, CostModel::cm5(), &Pipeline);
                let expect_sum: u64 = (1..=p as u64).sum();
                for (r, out) in outs.iter().enumerate() {
                    assert_eq!(out.0, r, "{b} p={p}");
                    assert_eq!(out.1, expect_sum, "{b} p={p}");
                    assert_eq!(
                        out.2,
                        (0..p as u32).map(|x| x * 3).collect::<Vec<_>>(),
                        "{b} p={p}"
                    );
                    assert_eq!(out.3, (-1.0, p - 1), "{b} p={p}");
                }
                per_backend.push(outs);
            }
            assert_eq!(per_backend[0], per_backend[1], "p={p}");
        }
    }

    struct Exchanger;

    impl SpmdJob for Exchanger {
        type Out = Vec<Vec<usize>>;

        fn run<E: Executor>(&self, e: &mut E) -> Self::Out {
            let me = e.rank();
            let boxes: Vec<Vec<usize>> = (0..e.size()).map(|r| vec![me * 10 + r]).collect();
            e.exchange(boxes, 1)
        }
    }

    #[test]
    fn exchange_transposes_on_every_backend() {
        for b in Backend::ALL {
            let (outs, _) = b.launch(4, CostModel::cm5(), &Exchanger);
            for (me, inboxes) in outs.iter().enumerate() {
                for (s, inbox) in inboxes.iter().enumerate() {
                    assert_eq!(inbox, &vec![s * 10 + me], "{b} me={me} s={s}");
                }
            }
        }
    }

    #[test]
    fn backend_parse_and_display() {
        assert_eq!("sim-cm5".parse::<Backend>().unwrap(), Backend::SimCm5);
        assert_eq!("SHARED".parse::<Backend>().unwrap(), Backend::SharedMem);
        assert_eq!("shm".parse::<Backend>().unwrap(), Backend::SharedMem);
        assert!("mpi".parse::<Backend>().is_err());
        assert_eq!(Backend::SimCm5.to_string(), "sim-cm5");
        assert_eq!(Backend::SharedMem.to_string(), "shared-mem");
        assert_eq!(Backend::default(), Backend::SimCm5);
    }

    #[test]
    fn simcm5_charges_are_preserved_through_the_trait() {
        // The Executor impl must delegate, not reimplement: a charged job
        // must produce the exact same SimReport as the inherent Ctx path.
        let (_, via_trait) = Backend::SimCm5.launch(3, CostModel::cm5(), &Pipeline);
        let (_, direct) = Machine::new(3, CostModel::cm5()).run(|ctx| {
            ctx.charge(10);
            let sum = ctx.allreduce_sum(ctx.rank() as u64 + 1);
            let _: Vec<u32> = ctx.allgather(ctx.rank() as u32 * 3, 1);
            let key = if ctx.rank() == ctx.size() - 1 {
                -1.0
            } else {
                1.0
            };
            let _ = ctx.allreduce_min_by_key(key, ctx.rank(), 1);
            ctx.barrier();
            let _ = ctx.broadcast_w(0, if ctx.rank() == 0 { Some(sum) } else { None }, 2);
        });
        assert_eq!(via_trait.makespan, direct.makespan);
        assert_eq!(via_trait.per_rank, direct.per_rank);
        assert_eq!(via_trait.total_messages, direct.total_messages);
        assert_eq!(via_trait.total_words, direct.total_words);
        assert_eq!(via_trait.total_work, direct.total_work);
    }
}
