//! [`Poller`]: the platform-selected readiness selector behind one API.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

use crate::event::{Events, Interest, Token};

#[cfg(target_os = "linux")]
use crate::epoll::Selector;
#[cfg(not(target_os = "linux"))]
use crate::pollset::Selector;

/// Level-triggered readiness poller — epoll on Linux, `poll(2)` elsewhere.
///
/// Registrations borrow the fd, they do not own it: callers must
/// [`Poller::deregister`] before (or at) close. All methods are intended for
/// a single event-loop thread; cross-thread signalling goes through
/// [`crate::Waker`], which is the one piece built to be called from anywhere.
pub struct Poller {
    sel: Selector,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            sel: Selector::new()?,
        })
    }

    /// Start watching `fd` for `interest`; `token` is echoed on every event.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.sel.register(fd, token.0, interest)
    }

    /// Replace the token/interest of an existing registration.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.sel.reregister(fd, token.0, interest)
    }

    /// Stop watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.sel.deregister(fd)
    }

    /// Block until readiness, `timeout` elapses (`None` = forever), or a
    /// signal interrupts the wait (returned as an empty `events` batch —
    /// callers re-derive their timers every iteration anyway).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let cap = events.capacity;
        self.sel.poll(&mut events.list, cap, timeout)
    }
}
