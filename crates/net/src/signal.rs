//! Signal → self-pipe bridge for the crash-time diagnostic dump.
//!
//! `std` exposes no way to catch SIGTERM/SIGINT, so this module binds
//! `signal(2)` directly against the platform C library (the same
//! offline stand-in discipline as `crate::sys`, which would
//! otherwise come from the `libc` crate). The handler itself does the
//! only async-signal-safe thing possible — `write(2)` of one byte (the
//! signal number) into a pipe — and a watcher thread blocked on the
//! read end does all real work (writing the dump, triggering graceful
//! shutdown) in ordinary thread context.
//!
//! Glibc's `signal()` gives BSD semantics (handler stays installed, no
//! `SA_RESETHAND`), so repeated signals keep reporting; the selectors
//! already treat `EINTR` as an empty readiness batch, so an interrupted
//! `epoll_wait`/`poll` in the event loop is harmless.

#![allow(non_camel_case_types)]

use std::io::{self, Read};
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};
use std::sync::atomic::{AtomicI32, Ordering};

/// Interactive interrupt (Ctrl-C).
pub const SIGINT: i32 = 2;
/// Polite termination request (the default `kill` signal).
pub const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: c_int, handler: usize) -> usize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

const SIG_ERR: usize = usize::MAX;

/// Write end of the pipe, published for the handler. `-1` = not
/// installed. Never reset: signal handlers are process-global, so the
/// pipe must outlive every consumer.
static WRITE_FD: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_signal(sig: c_int) {
    let fd = WRITE_FD.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = [sig as u8];
        // Async-signal-safe; a full pipe (impossible short of thousands
        // of undrained signals) or a vanished reader just drops the
        // notification.
        unsafe { write(fd, byte.as_ptr().cast(), 1) };
    }
}

/// The read end of the signal pipe; see [`pipe_on_signals`].
pub struct SignalPipe {
    reader: std::io::PipeReader,
}

impl SignalPipe {
    /// Block until a handled signal arrives; returns its number.
    pub fn wait(&mut self) -> io::Result<i32> {
        let mut buf = [0u8; 1];
        loop {
            match self.reader.read(&mut buf) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "signal pipe closed",
                    ))
                }
                Ok(_) => return Ok(i32::from(buf[0])),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Install a one-byte-per-signal self-pipe handler for each signal in
/// `signals` and return the read end. Callable once per process
/// (handlers and the pipe are global state); a second call fails with
/// `AlreadyExists`.
pub fn pipe_on_signals(signals: &[i32]) -> io::Result<SignalPipe> {
    let (reader, writer) = std::io::pipe()?;
    let fd = writer.as_raw_fd();
    if WRITE_FD
        .compare_exchange(-1, fd, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "signal pipe already installed",
        ));
    }
    // The handler owns the write fd for the life of the process.
    std::mem::forget(writer);
    for &sig in signals {
        let prev = unsafe { signal(sig, on_signal as *const () as usize) };
        if prev == SIG_ERR {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(SignalPipe { reader })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One process-wide test (the pipe is global): installing, raising
    /// via `kill(2)` on ourselves, and waiting observes the signal —
    /// and a second install is refused.
    #[test]
    fn self_signal_roundtrip_and_single_install() {
        extern "C" {
            fn kill(pid: i32, sig: c_int) -> c_int;
        }
        let mut pipe = pipe_on_signals(&[SIGTERM]).expect("install");
        assert!(pipe_on_signals(&[SIGTERM]).is_err(), "second install");
        let rc = unsafe { kill(std::process::id() as i32, SIGTERM) };
        assert_eq!(rc, 0, "kill(self, SIGTERM)");
        assert_eq!(pipe.wait().expect("wait"), SIGTERM);
    }
}
