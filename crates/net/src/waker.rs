//! [`Waker`]: cross-thread event-loop wakeup over a self-pipe.

use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::event::{Interest, Token};
use crate::poller::Poller;

/// Wakes a [`Poller::poll`] call from any thread.
///
/// A byte written to a pipe makes the read end poll-readable; an
/// [`AtomicBool`] dedups so a burst of `wake()` calls costs one syscall and
/// one loop wakeup, not N. The pipe can never fill: at most one byte is in
/// flight per pending-flag cycle, and the loop drains on every fire.
///
/// Lost-wakeup safety: the loop MUST clear the pending flag (inside
/// [`Waker::drain`], before the pipe read) *before* it consumes whatever
/// queue the waker guards. A producer that enqueues after the queue was
/// drained then observes `pending == false` and writes a fresh byte, so the
/// next `poll` fires immediately. Producers must enqueue *before* calling
/// `wake()`; the queue's own lock provides the happens-before edge.
pub struct Waker {
    reader: std::io::PipeReader,
    writer: std::io::PipeWriter,
    pending: AtomicBool,
}

impl Waker {
    /// Create a waker and register its read end with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let (reader, writer) = std::io::pipe()?;
        poller.register(reader.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker {
            reader,
            writer,
            pending: AtomicBool::new(false),
        })
    }

    /// Make the next (or current) `poll` call return. Callable from any
    /// thread; deduped, so hot paths may call it unconditionally.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // Blocking write is fine: ≤1 byte outstanding per cycle, and a
            // pipe holds kilobytes. Error (loop gone) is unrecoverable and
            // harmless — the process is shutting down.
            let _ = (&self.writer).write(&[1]);
        }
    }

    /// Consume the wakeup. Call from the loop thread when the waker's token
    /// fires, *before* draining the guarded queue (see type docs for why the
    /// flag clears first).
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        let mut buf = [0u8; 16];
        // The fd is poll-readable, so one read returns without blocking; a
        // cycle leaves at most ~2 bytes here, well under the buffer.
        let _ = (&self.reader).read(&mut buf);
    }
}
