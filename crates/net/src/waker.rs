//! [`Waker`]: cross-thread event-loop wakeup over a self-pipe.

use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::event::{Interest, Token};
use crate::poller::Poller;

/// Wakes a [`Poller::poll`] call from any thread.
///
/// A byte written to a pipe makes the read end poll-readable; an
/// [`AtomicBool`] dedups so a burst of `wake()` calls costs one syscall and
/// one loop wakeup, not N. The pipe can never fill: a new byte requires a
/// `false → true` flag transition, which requires an intervening drain, and
/// each drain consumes a byte.
///
/// Lost-wakeup safety: the loop MUST clear the pending flag (inside
/// [`Waker::drain`], before the pipe read) *before* it consumes whatever
/// queue the waker guards. A producer that enqueues after the queue was
/// drained then observes `pending == false` and writes a fresh byte, so the
/// next `poll` fires immediately. Producers must enqueue *before* calling
/// `wake()`; the queue's own lock provides the happens-before edge.
///
/// [`Waker::drain`] reads exactly ONE byte, never more. Every `false → true`
/// transition writes exactly one byte, so bytes-in-pipe always covers
/// undrained transitions; the pipe is FIFO, so a drain racing a concurrent
/// `wake()` can consume the new wake's byte only if every earlier byte is
/// already consumed — in which case the racing `wake()`'s flag swap happened
/// after this drain's flag clear, the flag settles `false`, and the next
/// `wake()` writes again. A greedy multi-byte read breaks exactly this: it
/// can consume the byte of a wake that re-raised the flag mid-drain, leaving
/// `pending == true` over an empty pipe — a permanently dead waker.
pub struct Waker {
    reader: std::io::PipeReader,
    writer: std::io::PipeWriter,
    pending: AtomicBool,
}

impl Waker {
    /// Create a waker and register its read end with `poller` under `token`.
    pub fn new(poller: &Poller, token: Token) -> io::Result<Waker> {
        let (reader, writer) = std::io::pipe()?;
        poller.register(reader.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker {
            reader,
            writer,
            pending: AtomicBool::new(false),
        })
    }

    /// Make the next (or current) `poll` call return. Callable from any
    /// thread; deduped, so hot paths may call it unconditionally.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // Blocking write is fine: at most a couple of bytes are ever
            // outstanding (see type docs), and a pipe holds kilobytes.
            // Error (loop gone) is unrecoverable and harmless — the
            // process is shutting down.
            let _ = (&self.writer).write(&[1]);
        }
    }

    /// Consume the wakeup. Call from the loop thread ONLY when the waker's
    /// token fires (the fd is then poll-readable, so the one-byte read
    /// cannot block), *before* draining the guarded queue (see type docs
    /// for why the flag clears first — and why exactly one byte is read).
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        let mut buf = [0u8; 1];
        loop {
            match (&self.reader).read(&mut buf) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                _ => break,
            }
        }
    }
}
