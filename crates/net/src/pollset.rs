//! Portable selector: `poll(2)` over an explicit registration table.
//!
//! This is the non-Linux backend, but it compiles (and is unit-tested)
//! everywhere so a Linux-only CI run still proves both code paths. O(n) per
//! wait — fine for the fallback, which is why Linux gets epoll.

use std::collections::BTreeMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::Mutex;
use std::time::Duration;

use crate::event::{Event, Interest};
use crate::sys;

pub(crate) struct Selector {
    /// fd → (token, interest). BTreeMap keeps poll-array order deterministic.
    regs: Mutex<BTreeMap<RawFd, (usize, Interest)>>,
}

fn events_bits(interest: Interest) -> i16 {
    let mut ev = 0i16;
    if interest.is_readable() {
        ev |= sys::POLLIN;
    }
    if interest.is_writable() {
        ev |= sys::POLLOUT;
    }
    ev
}

impl Selector {
    pub(crate) fn new() -> io::Result<Selector> {
        Ok(Selector {
            regs: Mutex::new(BTreeMap::new()),
        })
    }

    fn regs(&self) -> std::sync::MutexGuard<'_, BTreeMap<RawFd, (usize, Interest)>> {
        self.regs.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self.regs().entry(fd) {
            std::collections::btree_map::Entry::Occupied(_) => Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            )),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert((token, interest));
                Ok(())
            }
        }
    }

    pub(crate) fn reregister(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match self.regs().get_mut(&fd) {
            Some(slot) => {
                *slot = (token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match self.regs().remove(&fd) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    pub(crate) fn poll(
        &mut self,
        out: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        out.clear();
        let (mut fds, tokens): (Vec<sys::pollfd>, Vec<usize>) = {
            let regs = self.regs();
            regs.iter()
                .map(|(&fd, &(token, interest))| {
                    (
                        sys::pollfd {
                            fd,
                            events: events_bits(interest),
                            revents: 0,
                        },
                        token,
                    )
                })
                .unzip()
        };
        let n = unsafe {
            sys::poll(
                fds.as_mut_ptr(),
                fds.len() as sys::nfds_t,
                sys::timeout_ms(timeout),
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        for (slot, &token) in fds.iter().zip(tokens.iter()) {
            if slot.revents == 0 {
                continue;
            }
            out.push(Event {
                token,
                readable: slot.revents & sys::POLLIN != 0,
                writable: slot.revents & sys::POLLOUT != 0,
                error: slot.revents & sys::POLLERR != 0,
                hup: slot.revents & sys::POLLHUP != 0,
            });
            if out.len() == capacity {
                break;
            }
        }
        Ok(())
    }
}
