//! Readiness vocabulary shared by both selector backends: [`Token`],
//! [`Interest`], [`Event`], and the reusable [`Events`] buffer.

/// Opaque per-registration identifier, echoed back on every [`Event`].
///
/// The event loop owns the meaning: igp-serve uses `0` for the listener,
/// `1` for the waker, and `slot + FIRST_CONN` for connections.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Token(pub usize);

/// Which readiness classes a registration wants to be told about.
///
/// Combine with [`Interest::add`] (or `|`): `Interest::READABLE.add(Interest::WRITABLE)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest(u8);

impl Interest {
    /// No readiness classes: the fd stays registered (keeping its token)
    /// but produces no events until re-armed. Event loops use this to
    /// park a connection whose input must not be consumed right now —
    /// under level-triggered polling, leaving readable interest on an
    /// unread socket would refire every wait.
    pub const NONE: Interest = Interest(0);
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Union of two interest sets.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Interest set with `other`'s bits removed; may become empty.
    #[must_use]
    pub const fn remove(self, other: Interest) -> Interest {
        Interest(self.0 & !other.0)
    }

    pub const fn is_readable(self) -> bool {
        self.0 & Interest::READABLE.0 != 0
    }

    pub const fn is_writable(self) -> bool {
        self.0 & Interest::WRITABLE.0 != 0
    }

    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
///
/// `is_readable()` deliberately folds error/hang-up conditions in (mio does
/// the same): a peer reset must wake a reader so the subsequent `read()`
/// observes EOF/ECONNRESET instead of the connection idling forever. The
/// precise bits stay observable via [`Event::is_error`] / [`Event::is_hup`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub(crate) token: usize,
    pub(crate) readable: bool,
    pub(crate) writable: bool,
    pub(crate) error: bool,
    pub(crate) hup: bool,
}

impl Event {
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    pub fn is_readable(&self) -> bool {
        self.readable || self.error || self.hup
    }

    pub fn is_writable(&self) -> bool {
        self.writable
    }

    pub fn is_error(&self) -> bool {
        self.error
    }

    pub fn is_hup(&self) -> bool {
        self.hup
    }
}

/// Reusable buffer of [`Event`]s filled by [`crate::Poller::poll`].
///
/// `capacity` bounds how many events one poll call may return; leftover
/// readiness is level-triggered, so anything truncated simply re-fires on
/// the next call.
pub struct Events {
    pub(crate) list: Vec<Event>,
    pub(crate) capacity: usize,
}

impl Events {
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            list: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.list.iter()
    }

    pub fn len(&self) -> usize {
        self.list.len()
    }

    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.list.iter()
    }
}
